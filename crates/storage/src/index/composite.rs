//! Composite (multi-attribute) hash index over two columns of a chunk.
//!
//! The paper's enumerator explicitly supports multi-attribute indexes
//! ("candidates would be a set of lists (to support multi-attribute
//! indexes) of attributes", Section II-D(a)). A composite index answers
//! conjunctive equality predicates on both columns with one probe whose
//! match count reflects the *combined* selectivity.

use std::collections::HashMap;

use crate::encoding::Segment;
use crate::value::Value;

/// A hash index over the value pairs of two segments.
#[derive(Debug, Clone)]
pub struct CompositeHashIndex {
    map: HashMap<(Value, Value), Vec<u32>>,
    entry_bytes: usize,
}

impl CompositeHashIndex {
    /// Builds the index by a single zipped pass over both segments (the
    /// caller guarantees equal lengths — both are segments of one chunk).
    pub fn build(first: &Segment, second: &Segment) -> CompositeHashIndex {
        debug_assert_eq!(first.len(), second.len());
        let mut map: HashMap<(Value, Value), Vec<u32>> = HashMap::new();
        let mut entry_bytes = 0usize;
        for row in 0..first.len() {
            let key = (first.value_at(row), second.value_at(row));
            let posting = map.entry(key).or_insert_with(|| {
                entry_bytes += 72; // bucket + two keys overhead estimate
                Vec::new()
            });
            posting.push(row as u32);
            entry_bytes += 4;
        }
        CompositeHashIndex { map, entry_bytes }
    }

    /// Number of distinct value pairs.
    pub fn distinct_pairs(&self) -> usize {
        self.map.len()
    }

    /// Approximate memory footprint.
    pub fn memory_bytes(&self) -> usize {
        self.entry_bytes
    }

    /// Appends all positions matching `(first, second)` to `out`.
    pub fn probe_eq(&self, first: &Value, second: &Value, out: &mut Vec<u32>) {
        // Avoid cloning both values on the miss path by probing with a
        // borrowed tuple is not possible with std HashMap keys; accept
        // the pair construction (cheap for ints, one alloc for text).
        if let Some(postings) = self.map.get(&(first.clone(), second.clone())) {
            out.extend_from_slice(postings);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::EncodingKind;
    use crate::value::ColumnValues;

    fn segments() -> (Segment, Segment) {
        (
            Segment::encode(
                &ColumnValues::Int(vec![1, 1, 2, 2, 1]),
                EncodingKind::Unencoded,
            ),
            Segment::encode(
                &ColumnValues::Int(vec![7, 8, 7, 8, 7]),
                EncodingKind::Dictionary,
            ),
        )
    }

    #[test]
    fn probe_matches_pairs_only() {
        let (a, b) = segments();
        let idx = CompositeHashIndex::build(&a, &b);
        assert_eq!(idx.distinct_pairs(), 4);
        let mut out = Vec::new();
        idx.probe_eq(&Value::Int(1), &Value::Int(7), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 4]);
        out.clear();
        idx.probe_eq(&Value::Int(2), &Value::Int(7), &mut out);
        assert_eq!(out, vec![2]);
        out.clear();
        idx.probe_eq(&Value::Int(9), &Value::Int(7), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn combined_selectivity_beats_single_column() {
        let (a, b) = segments();
        let idx = CompositeHashIndex::build(&a, &b);
        let mut pair = Vec::new();
        idx.probe_eq(&Value::Int(1), &Value::Int(8), &mut pair);
        // Column a alone matches 3 rows for value 1; the pair only 1.
        assert_eq!(pair, vec![1]);
    }

    #[test]
    fn memory_scales_with_pairs() {
        let (a, b) = segments();
        let idx = CompositeHashIndex::build(&a, &b);
        assert!(idx.memory_bytes() >= 4 * 72);
    }
}
