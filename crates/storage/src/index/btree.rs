//! Ordered (B-tree) index: value → posting list, supporting point and
//! range probes over the total value order.

use std::collections::BTreeMap;
use std::ops::Bound;

use crate::encoding::Segment;
use crate::scan::{PredicateOp, ScanPredicate};
use crate::value::Value;

/// A B-tree index over one segment.
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    map: BTreeMap<Value, Vec<u32>>,
    entry_bytes: usize,
}

impl BTreeIndex {
    /// Builds the index by a single pass over the segment.
    pub fn build(segment: &Segment) -> BTreeIndex {
        let mut map: BTreeMap<Value, Vec<u32>> = BTreeMap::new();
        let mut entry_bytes = 0usize;
        for row in 0..segment.len() {
            let v = segment.value_at(row);
            let posting = map.entry(v).or_insert_with(|| {
                entry_bytes += 64; // node + key overhead estimate
                Vec::new()
            });
            posting.push(row as u32);
            entry_bytes += 4;
        }
        BTreeIndex { map, entry_bytes }
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Approximate memory footprint.
    pub fn memory_bytes(&self) -> usize {
        self.entry_bytes
    }

    /// Appends all positions matching `pred` to `out`.
    pub fn probe(&self, pred: &ScanPredicate, out: &mut Vec<u32>) {
        let (lo, hi): (Bound<&Value>, Bound<&Value>) = match pred.op {
            PredicateOp::Eq => (Bound::Included(&pred.value), Bound::Included(&pred.value)),
            PredicateOp::Lt => (Bound::Unbounded, Bound::Excluded(&pred.value)),
            PredicateOp::Le => (Bound::Unbounded, Bound::Included(&pred.value)),
            PredicateOp::Gt => (Bound::Excluded(&pred.value), Bound::Unbounded),
            PredicateOp::Ge => (Bound::Included(&pred.value), Bound::Unbounded),
            // A Between with no upper bound degrades to equality — the
            // same fallback `ScanPredicate::matches` uses.
            PredicateOp::Between => (
                Bound::Included(&pred.value),
                Bound::Included(pred.upper.as_ref().unwrap_or(&pred.value)),
            ),
        };
        for (_, postings) in self.map.range::<Value, _>((lo, hi)) {
            out.extend_from_slice(postings);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::EncodingKind;
    use crate::value::ColumnValues;
    use smdb_common::ColumnId;

    fn index() -> BTreeIndex {
        BTreeIndex::build(&Segment::encode(
            &ColumnValues::Int(vec![10, 30, 20, 10, 40]),
            EncodingKind::Unencoded,
        ))
    }

    #[test]
    fn point_probe() {
        let idx = index();
        let mut out = Vec::new();
        idx.probe(&ScanPredicate::eq(ColumnId(0), 10i64), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 3]);
    }

    #[test]
    fn range_probes_respect_bounds() {
        let idx = index();
        let mut out = Vec::new();
        idx.probe(
            &ScanPredicate::cmp(ColumnId(0), PredicateOp::Lt, 30i64),
            &mut out,
        );
        out.sort_unstable();
        assert_eq!(out, vec![0, 2, 3]);
        out.clear();
        idx.probe(
            &ScanPredicate::cmp(ColumnId(0), PredicateOp::Ge, 30i64),
            &mut out,
        );
        out.sort_unstable();
        assert_eq!(out, vec![1, 4]);
        out.clear();
        idx.probe(&ScanPredicate::between(ColumnId(0), 20i64, 30i64), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn distinct_key_count() {
        assert_eq!(index().distinct_keys(), 4);
    }

    #[test]
    fn empty_probe() {
        let idx = index();
        let mut out = Vec::new();
        idx.probe(&ScanPredicate::eq(ColumnId(0), 99i64), &mut out);
        assert!(out.is_empty());
    }
}
