//! Hash index: value → posting list of row positions. Point lookups only.

use std::collections::HashMap;

use crate::encoding::Segment;
use crate::value::Value;

/// A hash index over one segment.
#[derive(Debug, Clone)]
pub struct HashIndex {
    map: HashMap<Value, Vec<u32>>,
    entry_bytes: usize,
}

impl HashIndex {
    /// Builds the index by a single pass over the segment.
    pub fn build(segment: &Segment) -> HashIndex {
        let mut map: HashMap<Value, Vec<u32>> = HashMap::new();
        let mut entry_bytes = 0usize;
        for row in 0..segment.len() {
            let v = segment.value_at(row);
            let posting = map.entry(v).or_insert_with(|| {
                entry_bytes += 48; // bucket + key overhead estimate
                Vec::new()
            });
            posting.push(row as u32);
            entry_bytes += 4;
        }
        HashIndex { map, entry_bytes }
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Approximate memory footprint.
    pub fn memory_bytes(&self) -> usize {
        self.entry_bytes
    }

    /// Appends all positions holding `value` to `out`.
    pub fn probe_eq(&self, value: &Value, out: &mut Vec<u32>) {
        if let Some(postings) = self.map.get(value) {
            out.extend_from_slice(postings);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::EncodingKind;
    use crate::value::ColumnValues;

    #[test]
    fn probe_returns_all_positions() {
        let seg = Segment::encode(
            &ColumnValues::Int(vec![4, 2, 4, 4, 7]),
            EncodingKind::Unencoded,
        );
        let idx = HashIndex::build(&seg);
        assert_eq!(idx.distinct_keys(), 3);
        let mut out = Vec::new();
        idx.probe_eq(&Value::Int(4), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 2, 3]);
        out.clear();
        idx.probe_eq(&Value::Int(99), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn builds_over_encoded_segments() {
        let seg = Segment::encode(
            &ColumnValues::Int(vec![4, 2, 4, 4, 7]),
            EncodingKind::Dictionary,
        );
        let idx = HashIndex::build(&seg);
        let mut out = Vec::new();
        idx.probe_eq(&Value::Int(2), &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn memory_grows_with_keys_and_rows() {
        let small = HashIndex::build(&Segment::encode(
            &ColumnValues::Int(vec![1; 100]),
            EncodingKind::Unencoded,
        ));
        let large = HashIndex::build(&Segment::encode(
            &ColumnValues::Int((0..100).collect()),
            EncodingKind::Unencoded,
        ));
        assert!(large.memory_bytes() > small.memory_bytes());
    }
}
