//! Per-chunk secondary indexes.
//!
//! Indexes attach to a single segment (one column of one chunk), matching
//! Hyrise's chunk-granular physical design: the tuner can index only the
//! hot chunks of a skewed attribute (Section II-B of the paper).
//!
//! Two kinds exist:
//! * [`IndexKind::Hash`] — point (`Eq`) lookups only, O(1) probes.
//! * [`IndexKind::BTree`] — point and range lookups over the total value
//!   order.

pub mod btree;
pub mod composite;
pub mod hash;

use smdb_common::ColumnId;

use crate::encoding::Segment;
use crate::scan::{PredicateOp, ScanPredicate};

use btree::BTreeIndex;
use composite::CompositeHashIndex;
use hash::HashIndex;

/// The kind of a per-chunk index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IndexKind {
    Hash,
    BTree,
    /// Multi-attribute hash index over the target column and `second`
    /// (the paper's "set of lists of attributes" candidates); answers
    /// conjunctive equality on both columns with one probe.
    CompositeHash {
        second: ColumnId,
    },
}

impl IndexKind {
    /// The single-attribute index kinds, for candidate enumeration
    /// (composite candidates are enumerated from predicate pairs).
    pub const ALL: [IndexKind; 2] = [IndexKind::Hash, IndexKind::BTree];

    /// Whether the kind can answer `op` on its *leading* column. For a
    /// composite index the engine additionally requires an equality
    /// predicate on the second column.
    pub fn supports(self, op: PredicateOp) -> bool {
        match self {
            IndexKind::Hash | IndexKind::CompositeHash { .. } => matches!(op, PredicateOp::Eq),
            IndexKind::BTree => true,
        }
    }

    /// Short label for tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            IndexKind::Hash => "hash",
            IndexKind::BTree => "btree",
            IndexKind::CompositeHash { .. } => "hash2",
        }
    }
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexKind::CompositeHash { second } => write!(f, "hash2(+{second})"),
            _ => f.write_str(self.label()),
        }
    }
}

/// A built per-chunk index.
#[derive(Debug, Clone)]
pub enum ChunkIndex {
    Hash(HashIndex),
    BTree(BTreeIndex),
    Composite {
        second: ColumnId,
        index: CompositeHashIndex,
    },
}

impl ChunkIndex {
    /// Builds a single-attribute index of the given kind over a segment.
    /// Composite indexes are built with [`ChunkIndex::build_composite`].
    pub fn build(kind: IndexKind, segment: &Segment) -> ChunkIndex {
        match kind {
            IndexKind::Hash => ChunkIndex::Hash(HashIndex::build(segment)),
            IndexKind::BTree => ChunkIndex::BTree(BTreeIndex::build(segment)),
            // Composite kinds need the second segment; every real caller
            // routes them through `build_composite`. Degrade to a hash
            // index on the leading column rather than panicking.
            IndexKind::CompositeHash { .. } => ChunkIndex::Hash(HashIndex::build(segment)),
        }
    }

    /// Builds a composite index over the leading and second segments.
    pub fn build_composite(
        second: ColumnId,
        first_segment: &Segment,
        second_segment: &Segment,
    ) -> ChunkIndex {
        ChunkIndex::Composite {
            second,
            index: CompositeHashIndex::build(first_segment, second_segment),
        }
    }

    /// The kind of this index.
    pub fn kind(&self) -> IndexKind {
        match self {
            ChunkIndex::Hash(_) => IndexKind::Hash,
            ChunkIndex::BTree(_) => IndexKind::BTree,
            ChunkIndex::Composite { second, .. } => IndexKind::CompositeHash { second: *second },
        }
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        match self {
            ChunkIndex::Hash(i) => i.memory_bytes(),
            ChunkIndex::BTree(i) => i.memory_bytes(),
            ChunkIndex::Composite { index, .. } => index.memory_bytes(),
        }
    }

    /// Probes a single-attribute index with `pred`, appending matching
    /// positions to `out`. Returns `false` (leaving `out` untouched) when
    /// the index cannot answer the predicate alone — composite indexes
    /// always return `false` here; the engine probes them with
    /// [`ChunkIndex::probe_composite`] when both predicates are present.
    pub fn probe(&self, pred: &ScanPredicate, out: &mut Vec<u32>) -> bool {
        match self {
            ChunkIndex::Hash(i) => {
                if !matches!(pred.op, PredicateOp::Eq) {
                    return false;
                }
                i.probe_eq(&pred.value, out);
                true
            }
            ChunkIndex::BTree(i) => {
                i.probe(pred, out);
                true
            }
            ChunkIndex::Composite { .. } => false,
        }
    }

    /// Probes a composite index with equality values for both columns.
    /// Returns `false` for non-composite indexes.
    pub fn probe_composite(
        &self,
        first: &crate::value::Value,
        second_value: &crate::value::Value,
        out: &mut Vec<u32>,
    ) -> bool {
        match self {
            ChunkIndex::Composite { index, .. } => {
                index.probe_eq(first, second_value, out);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::EncodingKind;
    use crate::value::ColumnValues;
    use smdb_common::ColumnId;

    fn segment() -> Segment {
        Segment::encode(
            &ColumnValues::Int(vec![5, 3, 5, 8, 1, 3]),
            EncodingKind::Unencoded,
        )
    }

    #[test]
    fn hash_answers_eq_only() {
        let idx = ChunkIndex::build(IndexKind::Hash, &segment());
        let mut out = Vec::new();
        assert!(idx.probe(&ScanPredicate::eq(ColumnId(0), 5i64), &mut out));
        out.sort_unstable();
        assert_eq!(out, vec![0, 2]);
        let mut out2 = Vec::new();
        assert!(!idx.probe(
            &ScanPredicate::cmp(ColumnId(0), PredicateOp::Lt, 5i64),
            &mut out2
        ));
        assert!(out2.is_empty());
    }

    #[test]
    fn btree_answers_ranges() {
        let idx = ChunkIndex::build(IndexKind::BTree, &segment());
        let mut out = Vec::new();
        assert!(idx.probe(&ScanPredicate::between(ColumnId(0), 3i64, 5i64), &mut out));
        out.sort_unstable();
        assert_eq!(out, vec![0, 1, 2, 5]);
    }

    #[test]
    fn both_kinds_agree_with_scan() {
        let seg = segment();
        let pred = ScanPredicate::eq(ColumnId(0), 3i64);
        let mut scan = Vec::new();
        seg.filter(&pred, &mut scan);
        for kind in IndexKind::ALL {
            let idx = ChunkIndex::build(kind, &seg);
            let mut got = Vec::new();
            assert!(idx.probe(&pred, &mut got));
            got.sort_unstable();
            assert_eq!(got, scan, "probe mismatch for {kind}");
        }
    }

    #[test]
    fn kind_support_matrix() {
        assert!(IndexKind::Hash.supports(PredicateOp::Eq));
        assert!(!IndexKind::Hash.supports(PredicateOp::Between));
        assert!(IndexKind::BTree.supports(PredicateOp::Between));
        assert!(IndexKind::BTree.supports(PredicateOp::Eq));
    }
}
