//! # smdb-storage — a Hyrise-like in-memory chunked column store
//!
//! This crate is the *tunable substrate* of the reproduction: an
//! in-memory, column-major storage engine in the style of Hyrise
//! (Section II-B of the paper). Its defining properties, which the
//! self-management framework leans on, are:
//!
//! * **Chunked tables.** Every table is horizontally partitioned into
//!   chunks of a fixed target size; all physical-design decisions —
//!   encoding, indexing, placement — are taken *per chunk* of a column
//!   ([`smdb_common::ChunkColumnRef`]), so the tuner can
//!   act on fractions of an attribute (important for skewed data).
//! * **Exchangeable encodings.** Each segment (one column of one chunk)
//!   can be stored [unencoded](encoding::EncodingKind::Unencoded),
//!   [dictionary](encoding::EncodingKind::Dictionary)-,
//!   [run-length](encoding::EncodingKind::RunLength)- or
//!   [frame-of-reference](encoding::EncodingKind::FrameOfReference)-encoded,
//!   with encoding-specific scan paths and memory footprints.
//! * **Per-chunk secondary indexes.** Hash (point), B-tree (point +
//!   range) and composite multi-attribute indexes attach to individual
//!   segments.
//! * **Placement tiers.** Chunks live on a [`placement::Tier`]
//!   (hot / warm / cold) with tier-dependent access penalties that a
//!   buffer-pool knob partially hides — this is what makes the
//!   buffer-pool knob and the placement feature *dependent* in the sense
//!   of Section III.
//! * **Deterministic ground-truth costing.** Execution reports a
//!   simulated [`smdb_common::Cost`] derived from the work actually
//!   performed (rows scanned per encoding, index probes, tier penalties).
//!   The framework's cost *estimators* (crate `smdb-cost`) must
//!   approximate this ground truth from observations — they never see the
//!   formula.
//! * **Morsel-driven parallel scans.** A scan's chunk list can be split
//!   into [morsels](parallel::morsel_ranges) and executed on a shared
//!   [`parallel::ScanPool`]; per-chunk partials merge in chunk-index
//!   order, so results (and total simulated work) are bit-identical for
//!   every thread count and morsel size, while a deterministic lane
//!   model ([`parallel::simulated_latency`]) reports the scan's
//!   simulated parallel *latency*.
//!
//! The engine applies [`config::ConfigAction`]s (create /
//! drop index, re-encode, move tier, set knob) and reports their one-time
//! reconfiguration cost, which the framework's executor and the
//! reconfiguration-cost experiments build on.

pub mod chunk;
pub mod config;
pub mod encoding;
pub mod engine;
pub mod index;
pub mod kernels;
pub mod memory;
pub mod parallel;
pub mod persist;
pub mod placement;
pub mod scan;
pub mod schema;
pub mod simcost;
pub mod stats;
pub mod table;
pub mod value;

pub use config::{ConfigAction, ConfigInstance, ConfigSnapshot, KnobKind, Knobs};
pub use encoding::EncodingKind;
pub use engine::{ChunkPartial, PredictedPaths, ScanOutput, StorageEngine};
pub use index::IndexKind;
pub use parallel::ScanPool;
pub use placement::Tier;
pub use scan::{Aggregate, AggregateOp, PredicateOp, ScanPredicate};
pub use schema::{ColumnDef, Schema};
pub use table::Table;
pub use value::{DataType, Value};
