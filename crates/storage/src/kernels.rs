//! Vectorized predicate kernels over encoded segments.
//!
//! Every kernel is a *batch* mirror of one stage of the scalar scan
//! path: predicate filters producing selection vectors, residual
//! refinement of a selection vector, and (grouped) aggregation over the
//! selected positions. The contract is bitwise identity — a kernel
//! either produces exactly the bytes the scalar path would (same
//! positions in the same order, same float accumulation sequence, same
//! group keys) or it refuses the batch (`false`) and the caller runs
//! the scalar path. Coverage is a pure function of encoding, data type
//! and predicate shape, so the cost layer can mirror the engine's
//! kernel-vs-scalar decision exactly (see [`covers_filter`]).
//!
//! The speed comes from never materializing [`Value`]s in inner loops:
//! dictionary predicates are translated once into the code domain and
//! scanned as `u32` compares, frame-of-reference predicates are rebased
//! into offset space, float comparisons run in `total_cmp`'s monotone
//! `i64` key space, and selection vectors are emitted block-at-a-time:
//! each block of rows is compared into a bitmask (AVX2 lanes where the
//! host supports them, a scalar mask loop otherwise) and only the set
//! bits are expanded into positions, so sparse matches cost almost no
//! stores.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use crate::encoding::{int_bounds, Segment};
use crate::scan::{PredicateOp, ScanPredicate};
use crate::value::{ColumnValues, DataType, Value};

/// Marker for batches the kernel layer refuses. Every call site must
/// carry a `// kernel-fallback: <reason>` justification (enforced by
/// smdb-lint), so new encoding/op combinations cannot silently skip the
/// vectorized path without a budgeted note.
#[inline]
fn uncovered() -> bool {
    false
}

// ---------------------------------------------------------------------------
// Block-mask selection-vector emit
// ---------------------------------------------------------------------------
//
// All three filter shapes reduce to "position matches iff
// `(key(i) - lo) as unsigned <= span`" after predicate lowering. The
// emitters below evaluate that interval test a block at a time into a
// bitmask and expand only the set bits into positions — at the low
// selectivities driving scans run at, almost every block costs a handful
// of compares and zero stores. On x86-64 hosts with AVX2 the compare
// runs 4 (`i64`) or 8 (`u32`) lanes wide; every host gets the scalar
// mask loop as the bit-identical fallback, so output never depends on
// the host ISA.

/// Expands the set bits of `mask` (bit `j` ⇒ position `base + j`) into
/// `out`, in ascending order.
#[inline(always)]
fn push_mask_bits(mask: u64, base: usize, out: &mut Vec<u32>) {
    let mut m = mask;
    while m != 0 {
        let j = m.trailing_zeros() as usize;
        out.push((base + j) as u32);
        m &= m - 1;
    }
}

/// Appends every `i` with `v[i] ∈ [lo, lo + span]` (unsigned distance
/// test, i.e. `lo..=hi` with `span = hi - lo` in wrapping arithmetic).
fn filter_i64_interval(v: &[i64], lo: i64, span: u64, out: &mut Vec<u32>) {
    out.reserve(v.len());
    let mut base = 0usize;
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        base = unsafe { x86::filter_i64_avx2(v, lo, span, out) };
    }
    scalar_i64_interval(v, base, lo, span, out);
}

/// Scalar tail/fallback of [`filter_i64_interval`] from `base` on.
fn scalar_i64_interval(v: &[i64], base: usize, lo: i64, span: u64, out: &mut Vec<u32>) {
    let mut i = base;
    while i < v.len() {
        let n = (v.len() - i).min(64);
        let mut mask = 0u64;
        for j in 0..n {
            mask |= ((v[i + j].wrapping_sub(lo) as u64 <= span) as u64) << j;
        }
        push_mask_bits(mask, i, out);
        i += n;
    }
}

/// Appends every `i` with `v[i] ∈ [lo, lo + span]` over `u32` keys
/// (dictionary codes, frame-of-reference offsets).
fn filter_u32_interval(v: &[u32], lo: u32, span: u32, out: &mut Vec<u32>) {
    out.reserve(v.len());
    let mut base = 0usize;
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        base = unsafe { x86::filter_u32_avx2(v, lo, span, out) };
    }
    let mut i = base;
    while i < v.len() {
        let n = (v.len() - i).min(64);
        let mut mask = 0u64;
        for j in 0..n {
            mask |= ((v[i + j].wrapping_sub(lo) <= span) as u64) << j;
        }
        push_mask_bits(mask, i, out);
        i += n;
    }
}

/// Appends every `i` with `f64_key(v[i]) ∈ [lo, lo + span]` — float
/// interval filtering in `total_cmp` key space.
fn filter_f64_keys(v: &[f64], lo: i64, span: u64, out: &mut Vec<u32>) {
    out.reserve(v.len());
    let mut base = 0usize;
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        base = unsafe { x86::filter_f64_keys_avx2(v, lo, span, out) };
    }
    let mut i = base;
    while i < v.len() {
        let n = (v.len() - i).min(64);
        let mut mask = 0u64;
        for j in 0..n {
            mask |= ((f64_key(v[i + j]).wrapping_sub(lo) as u64 <= span) as u64) << j;
        }
        push_mask_bits(mask, i, out);
        i += n;
    }
}

/// AVX2 lanes for the interval filters. Each function processes the
/// longest vector-aligned prefix and returns how many elements it
/// consumed; the caller finishes the tail with the scalar mask loop.
/// Unsigned interval tests are lowered to signed `cmpgt` by flipping the
/// sign bit of both sides (`x <=u s  ⟺  (x ^ MIN) <=s (s ^ MIN)`).
#[cfg(target_arch = "x86_64")]
mod x86 {
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure the host supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn filter_i64_avx2(v: &[i64], lo: i64, span: u64, out: &mut Vec<u32>) -> usize {
        let sign = _mm256_set1_epi64x(i64::MIN);
        let lo_v = _mm256_set1_epi64x(lo);
        // Signed-comparable image of `span`.
        let span_s = _mm256_set1_epi64x((span as i64) ^ i64::MIN);
        let lanes = v.len() / 4 * 4;
        let mut i = 0usize;
        while i < lanes {
            // SAFETY: `i + 4 <= lanes <= v.len()`.
            let x = _mm256_loadu_si256(v.as_ptr().add(i).cast());
            let d = _mm256_xor_si256(_mm256_sub_epi64(x, lo_v), sign);
            // keep ⟺ !(d >s span_s); movemask over the 4 lane sign bits.
            let gt = _mm256_cmpgt_epi64(d, span_s);
            let mask = (!_mm256_movemask_pd(_mm256_castsi256_pd(gt)) & 0xF) as u64;
            super::push_mask_bits(mask, i, out);
            i += 4;
        }
        lanes
    }

    /// # Safety
    /// Caller must ensure the host supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn filter_u32_avx2(v: &[u32], lo: u32, span: u32, out: &mut Vec<u32>) -> usize {
        let sign = _mm256_set1_epi32(i32::MIN);
        let lo_v = _mm256_set1_epi32(lo as i32);
        let span_s = _mm256_set1_epi32((span as i32) ^ i32::MIN);
        let lanes = v.len() / 8 * 8;
        let mut i = 0usize;
        while i < lanes {
            // SAFETY: `i + 8 <= lanes <= v.len()`.
            let x = _mm256_loadu_si256(v.as_ptr().add(i).cast());
            let d = _mm256_xor_si256(_mm256_sub_epi32(x, lo_v), sign);
            let gt = _mm256_cmpgt_epi32(d, span_s);
            let mask = (!_mm256_movemask_ps(_mm256_castsi256_ps(gt)) & 0xFF) as u64;
            super::push_mask_bits(mask, i, out);
            i += 8;
        }
        lanes
    }

    /// # Safety
    /// Caller must ensure the host supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn filter_f64_keys_avx2(v: &[f64], lo: i64, span: u64, out: &mut Vec<u32>) -> usize {
        let zero = _mm256_setzero_si256();
        let sign = _mm256_set1_epi64x(i64::MIN);
        let lo_v = _mm256_set1_epi64x(lo);
        let span_s = _mm256_set1_epi64x((span as i64) ^ i64::MIN);
        let lanes = v.len() / 4 * 4;
        let mut i = 0usize;
        while i < lanes {
            // SAFETY: `i + 4 <= lanes <= v.len()`.
            let b = _mm256_loadu_si256(v.as_ptr().add(i).cast());
            // f64_key: negative lanes xor 0x7FFF… (all-ones sign mask
            // shifted right once) — AVX2 has no 64-bit arithmetic shift,
            // but `cmpgt(0, b)` *is* the broadcast sign bit.
            let neg = _mm256_cmpgt_epi64(zero, b);
            let key = _mm256_xor_si256(b, _mm256_srli_epi64(neg, 1));
            let d = _mm256_xor_si256(_mm256_sub_epi64(key, lo_v), sign);
            let gt = _mm256_cmpgt_epi64(d, span_s);
            let mask = (!_mm256_movemask_pd(_mm256_castsi256_pd(gt)) & 0xF) as u64;
            super::push_mask_bits(mask, i, out);
            i += 4;
        }
        lanes
    }
}

// ---------------------------------------------------------------------------
// Predicate lowering
// ---------------------------------------------------------------------------

/// Maps a float to the `i64` key space in which `f64::total_cmp` is the
/// natural integer order (the sign-magnitude-to-two's-complement fold
/// `total_cmp` itself performs), so float range checks become integer
/// interval checks with identical semantics, NaNs included.
#[inline(always)]
fn f64_key(x: f64) -> i64 {
    let b = x.to_bits() as i64;
    b ^ ((((b >> 63) as u64) >> 1) as i64)
}

/// Interval that never matches (used where the scalar path would reject
/// every row, e.g. `Lt` the smallest value in total order).
const EMPTY_KEYS: (i64, i64) = (i64::MAX, i64::MIN);

/// Lowers a predicate over a float column to an inclusive interval in
/// `total_cmp` key space. `None` means the predicate shape has no such
/// lowering (non-numeric comparison value) and the batch is uncovered.
fn float_key_bounds(pred: &ScanPredicate) -> Option<(i64, i64)> {
    // `as_f64` reads Int comparison values through the same `as f64`
    // conversion `Value::cmp` applies, so the key is exact by mirror.
    let k = f64_key(pred.value.as_f64()?);
    Some(match pred.op {
        PredicateOp::Eq => (k, k),
        PredicateOp::Lt => match k.checked_sub(1) {
            Some(hi) => (i64::MIN, hi),
            None => EMPTY_KEYS,
        },
        PredicateOp::Le => (i64::MIN, k),
        PredicateOp::Gt => match k.checked_add(1) {
            Some(lo) => (lo, i64::MAX),
            None => EMPTY_KEYS,
        },
        PredicateOp::Ge => (k, i64::MAX),
        PredicateOp::Between => {
            // No upper bound degrades to equality, mirroring
            // `ScanPredicate::matches`.
            let hi = match pred.upper.as_ref() {
                None => k,
                Some(u) => f64_key(u.as_f64()?),
            };
            (k, hi)
        }
    })
}

// ---------------------------------------------------------------------------
// Filter kernels
// ---------------------------------------------------------------------------

/// Whether [`filter`] covers this segment/predicate combination. Pure in
/// (encoding, data type, predicate shape): the cost layer calls this to
/// predict the engine's kernel-vs-scalar decision per chunk.
pub fn covers_filter(seg: &Segment, pred: &ScanPredicate) -> bool {
    match seg {
        // Encoded segments lower every predicate shape: either into the
        // code/offset/run domain, or to a provably empty selection.
        Segment::Dictionary(_) | Segment::RunLength(_) | Segment::FrameOfReference(_) => true,
        Segment::Unencoded(ColumnValues::Int(_)) => int_bounds(pred).is_some(),
        Segment::Unencoded(ColumnValues::Float(_)) => float_key_bounds(pred).is_some(),
        Segment::Unencoded(ColumnValues::Text(_)) => false,
    }
}

/// Batch filter: appends the positions matching `pred` to `out`, exactly
/// as [`Segment::filter`] would. Returns `false` (appending nothing)
/// when the combination is uncovered; the caller must then run the
/// scalar filter.
pub fn filter(seg: &Segment, pred: &ScanPredicate, out: &mut Vec<u32>) -> bool {
    match seg {
        Segment::Unencoded(ColumnValues::Int(v)) => {
            let Some((lo, hi)) = int_bounds(pred) else {
                // kernel-fallback: non-integer comparison values have no
                // i64 interval lowering; the scalar per-value loop keeps
                // the mixed-type `Value::cmp` semantics.
                return uncovered();
            };
            if lo > hi {
                return true;
            }
            filter_i64_interval(v, lo, hi.wrapping_sub(lo) as u64, out);
            true
        }
        Segment::Unencoded(ColumnValues::Float(v)) => {
            let Some((lo, hi)) = float_key_bounds(pred) else {
                // kernel-fallback: text comparison values against float
                // columns resolve through cross-type `Value::cmp`; no
                // key-space interval exists.
                return uncovered();
            };
            if lo > hi {
                return true;
            }
            filter_f64_keys(v, lo, hi.wrapping_sub(lo) as u64, out);
            true
        }
        Segment::Unencoded(ColumnValues::Text(_)) => {
            // kernel-fallback: the scalar text path already compares
            // `&str` without materializing Values; there is no batch
            // lowering to add on top.
            uncovered()
        }
        Segment::Dictionary(s) => {
            // Type guard mirrored from the scalar dictionary filter:
            // mismatched predicate types match nothing (except float
            // predicates on int dictionaries, which compare numerically).
            if pred.value.data_type() != s.data_type()
                && !(pred.value.data_type() == DataType::Float && s.data_type() == DataType::Int)
            {
                return true;
            }
            // Code-domain translation: one dictionary binary search, then
            // a tight u32 interval scan over the codes.
            let Some((lo, hi)) = s.code_interval(pred) else {
                return true;
            };
            filter_u32_interval(s.codes(), lo, hi - lo, out);
            true
        }
        Segment::RunLength(s) => {
            // The run-domain path already *is* the batch kernel: one
            // predicate evaluation per run, whole runs emitted.
            s.filter(pred, out);
            true
        }
        Segment::FrameOfReference(s) => {
            // Rebase the predicate interval into offset space once
            // (mirroring the scalar FoR filter, including its "no i64
            // interval ⇒ nothing matches" rule), then scan u32 offsets.
            let Some((lo, hi)) = int_bounds(pred) else {
                return true;
            };
            let base = s.base();
            let lo_off = lo.saturating_sub(base);
            let hi_off = hi.saturating_sub(base);
            if hi_off < 0 || lo_off > u32::MAX as i64 {
                return true;
            }
            let lo_off = lo_off.clamp(0, u32::MAX as i64) as u32;
            let hi_off = hi_off.clamp(0, u32::MAX as i64) as u32;
            filter_u32_interval(s.offsets(), lo_off, hi_off - lo_off, out);
            true
        }
    }
}

// ---------------------------------------------------------------------------
// Refine kernels
// ---------------------------------------------------------------------------

/// `lhs.cmp(rhs)` for an integer row value, without boxing the row into
/// a [`Value`] — the arms replicate `Value::cmp` exactly.
#[inline(always)]
fn cmp_int(x: i64, rhs: &Value) -> Ordering {
    match rhs {
        Value::Int(b) => x.cmp(b),
        Value::Float(b) => (x as f64).total_cmp(b),
        Value::Text(_) => Ordering::Less,
    }
}

/// `lhs.cmp(rhs)` for a float row value (mirror of `Value::cmp`).
#[inline(always)]
fn cmp_float(x: f64, rhs: &Value) -> Ordering {
    match rhs {
        Value::Int(b) => x.total_cmp(&(*b as f64)),
        Value::Float(b) => x.total_cmp(b),
        Value::Text(_) => Ordering::Less,
    }
}

/// `lhs.cmp(rhs)` for a text row value (mirror of `Value::cmp`).
#[inline(always)]
fn cmp_text(x: &str, rhs: &Value) -> Ordering {
    match rhs {
        Value::Text(t) => x.cmp(t.as_str()),
        _ => Ordering::Greater,
    }
}

/// Evaluates `pred` given an ordering oracle for the row value, exactly
/// as `ScanPredicate::matches` does through `Value`'s total order.
#[inline(always)]
fn op_matches(pred: &ScanPredicate, ord: impl Fn(&Value) -> Ordering) -> bool {
    match pred.op {
        PredicateOp::Eq => ord(&pred.value) == Ordering::Equal,
        PredicateOp::Lt => ord(&pred.value) == Ordering::Less,
        PredicateOp::Le => ord(&pred.value) != Ordering::Greater,
        PredicateOp::Gt => ord(&pred.value) == Ordering::Greater,
        PredicateOp::Ge => ord(&pred.value) != Ordering::Less,
        PredicateOp::Between => {
            // No upper bound degrades to equality, mirroring `matches`.
            let hi = pred.upper.as_ref().unwrap_or(&pred.value);
            ord(&pred.value) != Ordering::Less && ord(hi) != Ordering::Greater
        }
    }
}

/// Batch refinement: retains in `positions` exactly the positions
/// [`Segment::refine`] would, without the per-position `Value`
/// materialization (notably the per-row `String` clone on text
/// dictionaries). Returns `false` (touching nothing) when uncovered.
pub fn refine(seg: &Segment, pred: &ScanPredicate, positions: &mut Vec<u32>) -> bool {
    match seg {
        Segment::Unencoded(ColumnValues::Int(v)) => {
            positions.retain(|&p| op_matches(pred, |rhs| cmp_int(v[p as usize], rhs)));
            true
        }
        Segment::Unencoded(ColumnValues::Float(v)) => {
            positions.retain(|&p| op_matches(pred, |rhs| cmp_float(v[p as usize], rhs)));
            true
        }
        Segment::Unencoded(ColumnValues::Text(v)) => {
            positions.retain(|&p| op_matches(pred, |rhs| cmp_text(&v[p as usize], rhs)));
            true
        }
        Segment::Dictionary(s) => {
            let codes = s.codes();
            if let Some(d) = s.int_dict() {
                positions.retain(|&p| {
                    op_matches(pred, |rhs| cmp_int(d[codes[p as usize] as usize], rhs))
                });
            } else if let Some(d) = s.text_dict() {
                positions.retain(|&p| {
                    op_matches(pred, |rhs| cmp_text(&d[codes[p as usize] as usize], rhs))
                });
            }
            true
        }
        Segment::FrameOfReference(s) => {
            let base = s.base();
            let offsets = s.offsets();
            positions.retain(|&p| {
                op_matches(pred, |rhs| cmp_int(base + offsets[p as usize] as i64, rhs))
            });
            true
        }
        Segment::RunLength(_) => {
            // kernel-fallback: RLE refinement needs a per-position binary
            // search over run starts either way; the scalar retain is the
            // reference path and a batch mirror would duplicate it.
            uncovered()
        }
    }
}

// ---------------------------------------------------------------------------
// Aggregation kernels
// ---------------------------------------------------------------------------

/// Per-position numeric reader for an aggregation input segment:
/// `None` when every selected row reads as non-numeric (text columns —
/// the scalar path skips those rows too).
enum NumSrc<'a> {
    Skip,
    Ints(&'a [i64]),
    Floats(&'a [f64]),
    /// Dictionary codes plus the integer dictionary.
    Codes(&'a [u32], &'a [i64]),
    /// Frame-of-reference base plus offsets.
    Rebased(i64, &'a [u32]),
}

impl<'a> NumSrc<'a> {
    /// Classifies a segment; `None` means the encoding has no positional
    /// batch reader (RLE).
    fn classify(seg: &'a Segment) -> Option<NumSrc<'a>> {
        match seg {
            Segment::Unencoded(ColumnValues::Int(v)) => Some(NumSrc::Ints(v)),
            Segment::Unencoded(ColumnValues::Float(v)) => Some(NumSrc::Floats(v)),
            Segment::Unencoded(ColumnValues::Text(_)) => Some(NumSrc::Skip),
            Segment::Dictionary(s) => match s.int_dict() {
                Some(d) => Some(NumSrc::Codes(s.codes(), d)),
                None => Some(NumSrc::Skip),
            },
            Segment::FrameOfReference(s) => Some(NumSrc::Rebased(s.base(), s.offsets())),
            Segment::RunLength(_) => None,
        }
    }

    /// The numeric reading of position `p`, mirroring
    /// `Value::as_f64(&seg.value_at(p))`.
    #[inline(always)]
    fn num_at(&self, p: u32) -> Option<f64> {
        match self {
            NumSrc::Skip => None,
            NumSrc::Ints(v) => Some(v[p as usize] as f64),
            NumSrc::Floats(v) => Some(v[p as usize]),
            NumSrc::Codes(codes, d) => Some(d[codes[p as usize] as usize] as f64),
            NumSrc::Rebased(base, offsets) => Some((base + offsets[p as usize] as i64) as f64),
        }
    }
}

/// Whether [`accumulate`] covers this aggregation input segment.
pub fn covers_accumulate(seg: &Segment) -> bool {
    !matches!(seg, Segment::RunLength(_))
}

/// Batched ungrouped aggregation over the selected positions: folds
/// sum/min/max exactly in the scalar consume order (same float
/// statement sequence per position, non-numeric rows skipped). Count
/// maintenance stays with the caller. Returns `false` (touching
/// nothing) when uncovered.
pub fn accumulate(
    seg: &Segment,
    positions: &[u32],
    sum: &mut f64,
    min: &mut Option<f64>,
    max: &mut Option<f64>,
) -> bool {
    let Some(src) = NumSrc::classify(seg) else {
        // kernel-fallback: RLE value access is a per-position binary
        // search; the scalar consume loop is the reference path.
        return uncovered();
    };
    for &p in positions {
        let Some(x) = src.num_at(p) else {
            continue;
        };
        *sum += x;
        *min = Some(min.map_or(x, |m| m.min(x)));
        *max = Some(max.map_or(x, |m| m.max(x)));
    }
    true
}

/// Per-group accumulator produced by [`aggregate_grouped`]; field
/// semantics match the engine's scalar aggregation state exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupAcc {
    pub count: u64,
    pub sum: f64,
    pub min: Option<f64>,
    pub max: Option<f64>,
}

impl GroupAcc {
    /// Folds one numeric value, in the scalar statement order.
    #[inline(always)]
    fn step(&mut self, x: f64) {
        self.sum += x;
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }
}

/// Whether [`aggregate_grouped`] covers this group-key/aggregation-input
/// combination (`agg_seg` is `None` for `COUNT(*)`).
pub fn covers_grouped(group_seg: &Segment, agg_seg: Option<&Segment>) -> bool {
    let group_ok = matches!(
        group_seg,
        Segment::Dictionary(_)
            | Segment::FrameOfReference(_)
            | Segment::Unencoded(ColumnValues::Int(_))
    );
    let agg_ok = agg_seg.map_or(true, covers_accumulate);
    group_ok && agg_ok
}

/// Batched grouped aggregation: groups the selected positions by the
/// group segment's value and folds the aggregation input per group,
/// producing exactly the (key, accumulator) pairs the scalar per-row
/// loop would — one `Value` per *group* instead of one per row, and a
/// dense code-indexed accumulator table under dictionary group keys.
/// Returns `false` (touching nothing) when uncovered.
pub fn aggregate_grouped(
    group_seg: &Segment,
    agg_seg: Option<&Segment>,
    positions: &[u32],
    out: &mut Vec<(Value, GroupAcc)>,
) -> bool {
    if !covers_grouped(group_seg, agg_seg) {
        // kernel-fallback: float/text unencoded and RLE group keys (and
        // RLE aggregation inputs) have no batch key reader; the scalar
        // per-row loop is the reference path.
        return uncovered();
    }
    let src = match agg_seg {
        None => NumSrc::Skip,
        Some(seg) => match NumSrc::classify(seg) {
            Some(src) => src,
            None => return false, // unreachable: covers_grouped checked
        },
    };
    match group_seg {
        Segment::Dictionary(s) => {
            // Dense accumulation indexed by dictionary code; emission in
            // code order is emission in key order (the dictionary is
            // sorted), matching the scalar BTreeMap contents.
            let codes = s.codes();
            let mut slots: Vec<Option<GroupAcc>> = vec![None; s.dictionary_size()];
            for &p in positions {
                let acc = slots[codes[p as usize] as usize].get_or_insert_with(GroupAcc::default);
                acc.count += 1;
                if let Some(x) = src.num_at(p) {
                    acc.step(x);
                }
            }
            for (code, slot) in slots.into_iter().enumerate() {
                if let Some(acc) = slot {
                    out.push((s.value_of_code(code as u32), acc));
                }
            }
        }
        Segment::Unencoded(ColumnValues::Int(v)) => {
            let mut groups: BTreeMap<i64, GroupAcc> = BTreeMap::new();
            for &p in positions {
                let acc = groups.entry(v[p as usize]).or_default();
                acc.count += 1;
                if let Some(x) = src.num_at(p) {
                    acc.step(x);
                }
            }
            out.extend(groups.into_iter().map(|(k, acc)| (Value::Int(k), acc)));
        }
        Segment::FrameOfReference(s) => {
            let base = s.base();
            let offsets = s.offsets();
            let mut groups: BTreeMap<i64, GroupAcc> = BTreeMap::new();
            for &p in positions {
                let acc = groups.entry(base + offsets[p as usize] as i64).or_default();
                acc.count += 1;
                if let Some(x) = src.num_at(p) {
                    acc.step(x);
                }
            }
            out.extend(groups.into_iter().map(|(k, acc)| (Value::Int(k), acc)));
        }
        // covers_grouped admitted the key above; other segments never
        // reach here.
        _ => return false,
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::EncodingKind;
    use smdb_common::ColumnId;

    fn all_preds() -> Vec<ScanPredicate> {
        let c = ColumnId(0);
        let mut preds = vec![
            ScanPredicate::eq(c, 3i64),
            ScanPredicate::eq(c, -40i64),
            ScanPredicate::cmp(c, PredicateOp::Lt, 4i64),
            ScanPredicate::cmp(c, PredicateOp::Le, 4i64),
            ScanPredicate::cmp(c, PredicateOp::Gt, 4i64),
            ScanPredicate::cmp(c, PredicateOp::Ge, 4i64),
            ScanPredicate::between(c, 2i64, 6i64),
            ScanPredicate::between(c, 6i64, 2i64), // inverted: matches nothing
            ScanPredicate::eq(c, 3.0f64),
            ScanPredicate::cmp(c, PredicateOp::Lt, 3.5f64),
            ScanPredicate::cmp(c, PredicateOp::Ge, -0.0f64),
            ScanPredicate::between(c, 1.5f64, 5.5f64),
            ScanPredicate::eq(c, "pear"),
            ScanPredicate::cmp(c, PredicateOp::Le, "mango"),
            ScanPredicate::between(c, "apple", "pear"),
            ScanPredicate::cmp(c, PredicateOp::Lt, i64::MIN),
            ScanPredicate::cmp(c, PredicateOp::Gt, i64::MAX),
        ];
        // Between with no upper bound degrades to equality.
        preds.push(ScanPredicate {
            column: c,
            op: PredicateOp::Between,
            value: Value::Int(3),
            upper: None,
        });
        preds.push(ScanPredicate {
            column: c,
            op: PredicateOp::Between,
            value: Value::Float(2.0),
            upper: Some(Value::Text("zed".into())),
        });
        preds
    }

    fn columns() -> Vec<ColumnValues> {
        vec![
            ColumnValues::Int(vec![5, 3, -40, 9, 3, 0, 7, i64::MAX, i64::MIN, 4]),
            ColumnValues::Float(vec![3.0, -0.0, 0.0, f64::NAN, 5.5, -7.25, 3.5]),
            ColumnValues::Text(vec![
                "pear".into(),
                "apple".into(),
                "mango".into(),
                "apple".into(),
                "zz".into(),
            ]),
        ]
    }

    #[test]
    fn filter_matches_scalar_across_encodings_and_ops() {
        for data in columns() {
            for kind in EncodingKind::ALL {
                let seg = Segment::encode(&data, kind);
                for pred in all_preds() {
                    let mut scalar = vec![7u32]; // pre-existing content survives
                    let mut kernel = vec![7u32];
                    seg.filter(&pred, &mut scalar);
                    let covered = filter(&seg, &pred, &mut kernel);
                    assert_eq!(
                        covered,
                        covers_filter(&seg, &pred),
                        "coverage mismatch for {kind} / {pred:?}"
                    );
                    if covered {
                        assert_eq!(kernel, scalar, "filter mismatch for {kind} / {pred:?}");
                    } else {
                        assert_eq!(kernel, vec![7u32], "uncovered filter must append nothing");
                    }
                }
            }
        }
    }

    #[test]
    fn dict_between_at_dictionary_boundaries() {
        // Dictionary is {1, 3, 5, 7}: probe every boundary alignment of
        // the code-interval translation, including bounds outside the
        // dictionary and bounds falling between entries.
        let data = ColumnValues::Int(vec![5, 1, 7, 3, 5, 1]);
        let seg = Segment::encode(&data, EncodingKind::Dictionary);
        let raw = Segment::encode(&data, EncodingKind::Unencoded);
        for lo in -1..=8i64 {
            for hi in -1..=8i64 {
                let pred = ScanPredicate::between(ColumnId(0), lo, hi);
                let (mut scalar, mut kernel) = (Vec::new(), Vec::new());
                raw.filter(&pred, &mut scalar);
                assert!(filter(&seg, &pred, &mut kernel));
                assert_eq!(kernel, scalar, "between [{lo}, {hi}]");
            }
        }
        for v in -1..=8i64 {
            for op in [
                PredicateOp::Eq,
                PredicateOp::Lt,
                PredicateOp::Le,
                PredicateOp::Gt,
                PredicateOp::Ge,
            ] {
                let pred = if op == PredicateOp::Eq {
                    ScanPredicate::eq(ColumnId(0), v)
                } else {
                    ScanPredicate::cmp(ColumnId(0), op, v)
                };
                let (mut scalar, mut kernel) = (Vec::new(), Vec::new());
                raw.filter(&pred, &mut scalar);
                assert!(filter(&seg, &pred, &mut kernel));
                assert_eq!(kernel, scalar, "{op:?} {v}");
            }
        }
    }

    #[test]
    fn refine_matches_scalar_across_encodings() {
        for data in columns() {
            for kind in EncodingKind::ALL {
                let seg = Segment::encode(&data, kind);
                for pred in all_preds() {
                    let positions: Vec<u32> = (0..data.len() as u32).rev().collect();
                    let mut scalar = positions.clone();
                    let mut kernel = positions.clone();
                    seg.refine(&pred, &mut scalar);
                    if refine(&seg, &pred, &mut kernel) {
                        assert_eq!(kernel, scalar, "refine mismatch for {kind} / {pred:?}");
                    } else {
                        assert_eq!(kernel, positions, "uncovered refine must touch nothing");
                        assert!(matches!(seg, Segment::RunLength(_)));
                    }
                }
            }
        }
    }

    #[test]
    fn accumulate_matches_scalar_consume_order() {
        for data in columns() {
            for kind in EncodingKind::ALL {
                let seg = Segment::encode(&data, kind);
                let positions: Vec<u32> = (0..data.len() as u32).collect();
                let (mut sum, mut min, mut max) = (0.0f64, None, None);
                if !accumulate(&seg, &positions, &mut sum, &mut min, &mut max) {
                    assert!(matches!(seg, Segment::RunLength(_)));
                    continue;
                }
                // Scalar reference: the exact consume statement sequence.
                let (mut esum, mut emin, mut emax) = (0.0f64, None::<f64>, None::<f64>);
                for &p in &positions {
                    let Some(x) = seg.value_at(p as usize).as_f64() else {
                        continue;
                    };
                    esum += x;
                    emin = Some(emin.map_or(x, |m| m.min(x)));
                    emax = Some(emax.map_or(x, |m| m.max(x)));
                }
                assert_eq!(sum.to_bits(), esum.to_bits(), "{kind}");
                assert_eq!(min.map(f64::to_bits), emin.map(f64::to_bits));
                assert_eq!(max.map(f64::to_bits), emax.map(f64::to_bits));
            }
        }
    }

    #[test]
    fn grouped_matches_scalar_per_row_loop() {
        let group_data = ColumnValues::Int(vec![2, 1, 2, 3, 1, 2, 1, 3, 2, 1]);
        let agg_data =
            ColumnValues::Float(vec![0.5, 1.5, 2.5, 3.25, 4.0, 5.0, 6.5, 7.0, 8.5, 9.75]);
        let positions: Vec<u32> = vec![0, 2, 3, 5, 6, 7, 9];
        for gkind in EncodingKind::ALL {
            for akind in EncodingKind::ALL {
                let gseg = Segment::encode(&group_data, gkind);
                let aseg = Segment::encode(&agg_data, akind);
                let mut out = Vec::new();
                if !aggregate_grouped(&gseg, Some(&aseg), &positions, &mut out) {
                    assert!(
                        matches!(gseg, Segment::RunLength(_))
                            || matches!(aseg, Segment::RunLength(_)),
                        "{gkind}/{akind} unexpectedly uncovered"
                    );
                    continue;
                }
                // Scalar reference: per-row key + fold, in position order.
                let mut expect: BTreeMap<Value, GroupAcc> = BTreeMap::new();
                for &p in &positions {
                    let acc = expect.entry(gseg.value_at(p as usize)).or_default();
                    acc.count += 1;
                    if let Some(x) = aseg.value_at(p as usize).as_f64() {
                        acc.step(x);
                    }
                }
                let expect: Vec<(Value, GroupAcc)> = expect.into_iter().collect();
                assert_eq!(out.len(), expect.len(), "{gkind}/{akind}");
                for ((k, a), (ek, ea)) in out.iter().zip(&expect) {
                    assert_eq!(k, ek, "{gkind}/{akind}");
                    assert_eq!(a.count, ea.count);
                    assert_eq!(a.sum.to_bits(), ea.sum.to_bits(), "{gkind}/{akind}");
                    assert_eq!(a.min.map(f64::to_bits), ea.min.map(f64::to_bits));
                    assert_eq!(a.max.map(f64::to_bits), ea.max.map(f64::to_bits));
                }
            }
        }
    }

    #[test]
    fn grouped_count_star_has_no_aggregation_input() {
        let group_data = ColumnValues::Int(vec![4, 4, 2, 4, 2]);
        let gseg = Segment::encode(&group_data, EncodingKind::Dictionary);
        let mut out = Vec::new();
        assert!(aggregate_grouped(&gseg, None, &[0, 1, 2, 4], &mut out));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, Value::Int(2));
        assert_eq!(out[0].1.count, 2);
        assert_eq!(out[1].0, Value::Int(4));
        assert_eq!(out[1].1.count, 2);
        assert!(out.iter().all(|(_, a)| a.min.is_none()));
    }

    #[test]
    fn text_group_keys_fall_back() {
        let group_data = ColumnValues::Text(vec!["a".into(), "b".into()]);
        let gseg = Segment::encode(&group_data, EncodingKind::Unencoded);
        let mut out = Vec::new();
        assert!(!aggregate_grouped(&gseg, None, &[0, 1], &mut out));
        assert!(out.is_empty());
        // Text *dictionary* group keys are covered (dense code table).
        let dict = Segment::encode(&group_data, EncodingKind::Dictionary);
        assert!(aggregate_grouped(&dict, None, &[0, 1], &mut out));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn block_emitters_are_order_preserving_and_append_only() {
        let mut out = vec![9u32];
        filter_i64_interval(&[0, 2, 1, 4, 2], 2, 2, &mut out);
        assert_eq!(out, vec![9, 1, 3, 4]);
        filter_i64_interval(&[], 2, 2, &mut out);
        assert_eq!(out, vec![9, 1, 3, 4]);
        let mut out = Vec::new();
        filter_u32_interval(&[7, 0, 9, 8], 7, 1, &mut out);
        assert_eq!(out, vec![0, 3]);
        let mut out = Vec::new();
        filter_f64_keys(&[1.0, -2.0, 3.0], f64_key(-2.0), 0, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn vector_lanes_match_scalar_mask_loop() {
        // Odd lengths exercise the SIMD prefix plus the scalar tail; the
        // comparison is against a from-scratch scalar run (`base = 0`),
        // so on AVX2 hosts this pins lanes ≡ scalar bit-for-bit.
        let ints: Vec<i64> = (0..1003).map(|i| (i * 37 % 101) - 50).collect();
        let mut lanes = Vec::new();
        filter_i64_interval(&ints, -10, 30, &mut lanes);
        let mut scalar = Vec::new();
        scalar_i64_interval(&ints, 0, -10, 30, &mut scalar);
        assert_eq!(lanes, scalar);
        for (lo, span) in [(i64::MIN, u64::MAX), (50, 0), (-50, 100)] {
            let mut a = Vec::new();
            filter_i64_interval(&ints, lo, span, &mut a);
            let mut b = Vec::new();
            scalar_i64_interval(&ints, 0, lo, span, &mut b);
            assert_eq!(a, b, "lo {lo} span {span}");
        }
    }

    #[test]
    fn float_key_space_is_total_cmp() {
        let samples = [
            0.0,
            -0.0,
            1.5,
            -1.5,
            f64::NAN,
            -f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
        ];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(f64_key(a).cmp(&f64_key(b)), a.total_cmp(&b), "{a} vs {b}");
            }
        }
    }
}
