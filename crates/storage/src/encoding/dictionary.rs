//! Dictionary encoding: a sorted dictionary of distinct values plus
//! fixed-width (u32) codes per row.
//!
//! Because the dictionary is sorted, comparison predicates are resolved
//! *once* on the dictionary (binary search → code interval) and then the
//! scan is a tight loop of integer comparisons over the codes. Index
//! construction over a dictionary segment can likewise work on codes,
//! which is why the engine charges lower build cost there.

use std::cmp::Ordering;

use crate::scan::{PredicateOp, ScanPredicate};
use crate::value::{ColumnValues, DataType, Value};

/// Dictionary payload: either integer or text dictionaries are supported;
/// floats fall back to unencoded at the [`Segment::encode`] level.
#[derive(Debug, Clone)]
enum Dict {
    Int(Vec<i64>),
    Text(Vec<String>),
}

/// A dictionary-encoded segment.
#[derive(Debug, Clone)]
pub struct DictionarySegment {
    dict: Dict,
    codes: Vec<u32>,
}

impl DictionarySegment {
    /// Attempts to dictionary-encode; returns `None` for unsupported types
    /// (floats).
    pub fn try_encode(values: &ColumnValues) -> Option<Self> {
        match values {
            ColumnValues::Int(v) => {
                let mut dict: Vec<i64> = v.clone();
                dict.sort_unstable();
                dict.dedup();
                let codes = v
                    .iter()
                    // Every source value is in the dict by construction, so
                    // `Err` is unreachable; its insertion point is a benign
                    // fallback that keeps this path panic-free.
                    .map(|x| dict.binary_search(x).unwrap_or_else(|i| i) as u32)
                    .collect();
                Some(DictionarySegment {
                    dict: Dict::Int(dict),
                    codes,
                })
            }
            ColumnValues::Text(v) => {
                let mut dict: Vec<String> = v.clone();
                dict.sort_unstable();
                dict.dedup();
                let codes = v
                    .iter()
                    .map(|x| dict.binary_search(x).unwrap_or_else(|i| i) as u32)
                    .collect();
                Some(DictionarySegment {
                    dict: Dict::Text(dict),
                    codes,
                })
            }
            ColumnValues::Float(_) => None,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the segment holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of distinct values.
    pub fn dictionary_size(&self) -> usize {
        match &self.dict {
            Dict::Int(d) => d.len(),
            Dict::Text(d) => d.len(),
        }
    }

    /// Stored data type.
    pub fn data_type(&self) -> DataType {
        match &self.dict {
            Dict::Int(_) => DataType::Int,
            Dict::Text(_) => DataType::Text,
        }
    }

    /// Approximate memory footprint.
    pub fn memory_bytes(&self) -> usize {
        let dict_bytes = match &self.dict {
            Dict::Int(d) => d.len() * 8,
            Dict::Text(d) => d.iter().map(|s| 24 + s.len()).sum(),
        };
        dict_bytes + self.codes.len() * 4
    }

    /// Random access.
    pub fn value_at(&self, row: usize) -> Value {
        let code = self.codes[row] as usize;
        match &self.dict {
            Dict::Int(d) => Value::Int(d[code]),
            Dict::Text(d) => Value::Text(d[code].clone()),
        }
    }

    /// The code stored at `row`; used by index builders that operate on
    /// codes directly.
    pub fn code_at(&self, row: usize) -> u32 {
        self.codes[row]
    }

    /// The per-row code array; the kernel layer scans it directly.
    pub(crate) fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The sorted integer dictionary, when the payload is integers.
    pub(crate) fn int_dict(&self) -> Option<&[i64]> {
        match &self.dict {
            Dict::Int(d) => Some(d),
            Dict::Text(_) => None,
        }
    }

    /// The sorted text dictionary, when the payload is strings.
    pub(crate) fn text_dict(&self) -> Option<&[String]> {
        match &self.dict {
            Dict::Int(_) => None,
            Dict::Text(d) => Some(d),
        }
    }

    /// Decoded value of one dictionary code.
    pub(crate) fn value_of_code(&self, code: u32) -> Value {
        match &self.dict {
            Dict::Int(d) => Value::Int(d[code as usize]),
            Dict::Text(d) => Value::Text(d[code as usize].clone()),
        }
    }

    /// Decodes to raw values.
    pub fn decode(&self) -> ColumnValues {
        match &self.dict {
            Dict::Int(d) => ColumnValues::Int(self.codes.iter().map(|&c| d[c as usize]).collect()),
            Dict::Text(d) => {
                ColumnValues::Text(self.codes.iter().map(|&c| d[c as usize].clone()).collect())
            }
        }
    }

    /// Resolves `pred` to an inclusive code interval `[lo, hi]`, or `None`
    /// when no code can match. The kernel layer reuses this translation
    /// for its batched code scans.
    pub(crate) fn code_interval(&self, pred: &ScanPredicate) -> Option<(u32, u32)> {
        // Find, in the sorted dictionary, the interval of codes whose
        // values satisfy the predicate. All supported operators describe a
        // contiguous value interval, so the code interval is contiguous too.
        let (lo_v, hi_v): (Option<&Value>, Option<&Value>) = match pred.op {
            PredicateOp::Eq => (Some(&pred.value), Some(&pred.value)),
            PredicateOp::Lt | PredicateOp::Le => (None, Some(&pred.value)),
            PredicateOp::Gt | PredicateOp::Ge => (Some(&pred.value), None),
            PredicateOp::Between => (Some(&pred.value), pred.upper.as_ref()),
        };
        let lo_excl = false;
        let hi_excl = matches!(pred.op, PredicateOp::Lt);
        let lo_excl = lo_excl || matches!(pred.op, PredicateOp::Gt);

        let n = self.dictionary_size();
        let cmp_at = |i: usize, v: &Value| -> Ordering {
            match (&self.dict, v) {
                (Dict::Int(d), _) => Value::Int(d[i]).cmp(v),
                (Dict::Text(d), _) => Value::Text(d[i].clone()).cmp(v),
            }
        };
        // Lower bound: first code with value >= lo (or > lo when exclusive).
        let lo_code = match lo_v {
            None => 0,
            Some(v) => {
                let mut l = 0usize;
                let mut r = n;
                while l < r {
                    let m = (l + r) / 2;
                    let ord = cmp_at(m, v);
                    let keep_right = if lo_excl {
                        ord != Ordering::Greater
                    } else {
                        ord == Ordering::Less
                    };
                    if keep_right {
                        l = m + 1;
                    } else {
                        r = m;
                    }
                }
                l
            }
        };
        // Upper bound: last code with value <= hi (or < hi when exclusive).
        let hi_code = match hi_v {
            None => n,
            Some(v) => {
                let mut l = 0usize;
                let mut r = n;
                while l < r {
                    let m = (l + r) / 2;
                    let ord = cmp_at(m, v);
                    let keep_right = if hi_excl {
                        ord == Ordering::Less
                    } else {
                        ord != Ordering::Greater
                    };
                    if keep_right {
                        l = m + 1;
                    } else {
                        r = m;
                    }
                }
                l
            }
        };
        if lo_code >= hi_code {
            None
        } else {
            Some((lo_code as u32, (hi_code - 1) as u32))
        }
    }

    /// Encoding-specific filter: predicate → code interval → tight code scan.
    pub fn filter(&self, pred: &ScanPredicate, out: &mut Vec<u32>) {
        // Type mismatch (e.g. text predicate on int dict): nothing matches
        // except through the generic value order, which we honour by
        // falling back to per-value checks only when types align.
        if pred.value.data_type() != self.data_type()
            && !(pred.value.data_type() == DataType::Float && self.data_type() == DataType::Int)
        {
            return;
        }
        let Some((lo, hi)) = self.code_interval(pred) else {
            return;
        };
        if lo == hi {
            for (i, &c) in self.codes.iter().enumerate() {
                if c == lo {
                    out.push(i as u32);
                }
            }
        } else {
            for (i, &c) in self.codes.iter().enumerate() {
                if c >= lo && c <= hi {
                    out.push(i as u32);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::ColumnId;

    fn seg(v: Vec<i64>) -> DictionarySegment {
        DictionarySegment::try_encode(&ColumnValues::Int(v)).unwrap()
    }

    #[test]
    fn encode_builds_sorted_dedup_dict() {
        let s = seg(vec![30, 10, 20, 10, 30, 30]);
        assert_eq!(s.dictionary_size(), 3);
        assert_eq!(s.len(), 6);
        assert_eq!(s.decode(), ColumnValues::Int(vec![30, 10, 20, 10, 30, 30]));
    }

    #[test]
    fn eq_filter_hits_exact_code() {
        let s = seg(vec![30, 10, 20, 10, 30, 30]);
        let mut out = Vec::new();
        s.filter(&ScanPredicate::eq(ColumnId(0), 30i64), &mut out);
        assert_eq!(out, vec![0, 4, 5]);
    }

    #[test]
    fn range_filters_resolve_on_dict() {
        let s = seg(vec![5, 1, 9, 3, 7]);
        let mut out = Vec::new();
        s.filter(&ScanPredicate::between(ColumnId(0), 3i64, 7i64), &mut out);
        assert_eq!(out, vec![0, 3, 4]);
        out.clear();
        s.filter(
            &ScanPredicate::cmp(ColumnId(0), PredicateOp::Lt, 5i64),
            &mut out,
        );
        assert_eq!(out, vec![1, 3]);
        out.clear();
        s.filter(
            &ScanPredicate::cmp(ColumnId(0), PredicateOp::Gt, 7i64),
            &mut out,
        );
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn no_match_interval_is_empty() {
        let s = seg(vec![2, 4, 6]);
        let mut out = Vec::new();
        s.filter(&ScanPredicate::eq(ColumnId(0), 5i64), &mut out);
        assert!(out.is_empty());
        s.filter(
            &ScanPredicate::cmp(ColumnId(0), PredicateOp::Gt, 6i64),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn text_dictionary() {
        let s = DictionarySegment::try_encode(&ColumnValues::Text(vec![
            "pear".into(),
            "apple".into(),
            "mango".into(),
            "apple".into(),
        ]))
        .unwrap();
        assert_eq!(s.dictionary_size(), 3);
        let mut out = Vec::new();
        s.filter(&ScanPredicate::eq(ColumnId(0), "apple"), &mut out);
        assert_eq!(out, vec![1, 3]);
    }

    #[test]
    fn float_unsupported() {
        assert!(DictionarySegment::try_encode(&ColumnValues::Float(vec![1.0])).is_none());
    }

    #[test]
    fn mismatched_predicate_type_matches_nothing() {
        let s = seg(vec![1, 2, 3]);
        let mut out = Vec::new();
        s.filter(&ScanPredicate::eq(ColumnId(0), "one"), &mut out);
        assert!(out.is_empty());
    }
}
