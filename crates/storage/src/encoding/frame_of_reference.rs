//! Frame-of-reference encoding for integer segments: values are stored as
//! `base + u32 offset`, halving memory for narrow-range integers.

use crate::encoding::int_bounds;
use crate::scan::ScanPredicate;
use crate::value::ColumnValues;

/// A frame-of-reference-encoded integer segment.
#[derive(Debug, Clone)]
pub struct ForSegment {
    base: i64,
    offsets: Vec<u32>,
}

impl ForSegment {
    /// Attempts to encode; returns `None` for non-integer data or when the
    /// value range exceeds `u32::MAX`.
    pub fn try_encode(values: &ColumnValues) -> Option<Self> {
        let ColumnValues::Int(v) = values else {
            return None;
        };
        if v.is_empty() {
            return Some(ForSegment {
                base: 0,
                offsets: Vec::new(),
            });
        }
        let (base, max) = v
            .iter()
            .fold((i64::MAX, i64::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x)));
        let range = (max as i128) - (base as i128);
        if range > u32::MAX as i128 {
            return None;
        }
        let offsets = v.iter().map(|&x| (x - base) as u32).collect();
        Some(ForSegment { base, offsets })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the segment holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// The frame base (minimum value).
    pub fn base(&self) -> i64 {
        self.base
    }

    /// The per-row offset array; the kernel layer scans it directly.
    pub(crate) fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Approximate memory footprint.
    pub fn memory_bytes(&self) -> usize {
        8 + self.offsets.len() * 4
    }

    /// Random access.
    pub fn value_at(&self, row: usize) -> i64 {
        self.base + self.offsets[row] as i64
    }

    /// Decodes to raw integers.
    pub fn decode(&self) -> Vec<i64> {
        self.offsets.iter().map(|&o| self.base + o as i64).collect()
    }

    /// Encoding-specific filter: shift the predicate interval into offset
    /// space once, then scan u32s.
    pub fn filter(&self, pred: &ScanPredicate, out: &mut Vec<u32>) {
        let Some((lo, hi)) = int_bounds(pred) else {
            return;
        };
        // Translate [lo, hi] into offset space, clamping to the encodable
        // window. An empty window means no row can match.
        let lo_off = lo.saturating_sub(self.base);
        let hi_off = hi.saturating_sub(self.base);
        if hi_off < 0 || lo_off > u32::MAX as i64 {
            return;
        }
        let lo_off = lo_off.clamp(0, u32::MAX as i64) as u32;
        let hi_off = hi_off.clamp(0, u32::MAX as i64) as u32;
        for (i, &o) in self.offsets.iter().enumerate() {
            if o >= lo_off && o <= hi_off {
                out.push(i as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::PredicateOp;
    use smdb_common::ColumnId;

    #[test]
    fn roundtrip() {
        let s = ForSegment::try_encode(&ColumnValues::Int(vec![100, 105, 102, 100])).unwrap();
        assert_eq!(s.base(), 100);
        assert_eq!(s.decode(), vec![100, 105, 102, 100]);
        assert_eq!(s.value_at(1), 105);
    }

    #[test]
    fn wide_range_unsupported() {
        let s = ForSegment::try_encode(&ColumnValues::Int(vec![i64::MIN, i64::MAX]));
        assert!(s.is_none());
    }

    #[test]
    fn non_int_unsupported() {
        assert!(ForSegment::try_encode(&ColumnValues::Float(vec![1.0])).is_none());
        assert!(ForSegment::try_encode(&ColumnValues::Text(vec!["a".into()])).is_none());
    }

    #[test]
    fn filter_in_offset_space() {
        let s = ForSegment::try_encode(&ColumnValues::Int(vec![100, 105, 102, 100, 110])).unwrap();
        let mut out = Vec::new();
        s.filter(&ScanPredicate::eq(ColumnId(0), 100i64), &mut out);
        assert_eq!(out, vec![0, 3]);
        out.clear();
        s.filter(
            &ScanPredicate::between(ColumnId(0), 101i64, 106i64),
            &mut out,
        );
        assert_eq!(out, vec![1, 2]);
        out.clear();
        s.filter(
            &ScanPredicate::cmp(ColumnId(0), PredicateOp::Lt, 100i64),
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn out_of_window_predicates_match_nothing() {
        let s = ForSegment::try_encode(&ColumnValues::Int(vec![100, 105])).unwrap();
        let mut out = Vec::new();
        s.filter(&ScanPredicate::eq(ColumnId(0), 99i64), &mut out);
        assert!(out.is_empty());
        s.filter(&ScanPredicate::eq(ColumnId(0), 1000i64), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn memory_is_half_of_raw() {
        let data: Vec<i64> = (0..1024).collect();
        let s = ForSegment::try_encode(&ColumnValues::Int(data)).unwrap();
        assert_eq!(s.memory_bytes(), 8 + 1024 * 4);
    }

    #[test]
    fn empty_encodes() {
        let s = ForSegment::try_encode(&ColumnValues::Int(vec![])).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.decode(), Vec::<i64>::new());
    }
}
