//! Segment encodings.
//!
//! A *segment* is one column of one chunk. Every segment is stored in one
//! of four encodings, each with its own memory footprint and scan path:
//!
//! * [`Unencoded`](EncodingKind::Unencoded) — plain vectors; baseline.
//! * [`Dictionary`](EncodingKind::Dictionary) — sorted dictionary +
//!   fixed-width codes; predicates are resolved on the dictionary once and
//!   then evaluated as integer comparisons over the codes, which makes
//!   scans *faster* than unencoded and makes index construction cheaper
//!   (the dependency between the compression and indexing features that
//!   Section III of the paper uses as its running example).
//! * [`RunLength`](EncodingKind::RunLength) — (value, run-length) pairs;
//!   excellent for sorted or low-cardinality data.
//! * [`FrameOfReference`](EncodingKind::FrameOfReference) — integers as
//!   `base + u32 offset`; halves memory for narrow-range integers.
//!
//! Encoding a segment is *fallible in kind but not in effect*: requesting
//! an encoding a segment does not support (e.g. frame-of-reference for
//! text) falls back to the unencoded representation, mirroring how real
//! column stores pick a legal encoding. The actually applied kind is
//! reported by [`Segment::encoding`].

pub mod dictionary;
pub mod frame_of_reference;
pub mod run_length;

use crate::scan::ScanPredicate;
use crate::value::{ColumnValues, DataType, Value};

use dictionary::DictionarySegment;
use frame_of_reference::ForSegment;
use run_length::RunLengthSegment;

/// The encoding applied to a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EncodingKind {
    Unencoded,
    Dictionary,
    RunLength,
    FrameOfReference,
}

impl EncodingKind {
    /// All encodings, for candidate enumeration.
    pub const ALL: [EncodingKind; 4] = [
        EncodingKind::Unencoded,
        EncodingKind::Dictionary,
        EncodingKind::RunLength,
        EncodingKind::FrameOfReference,
    ];

    /// Short label for tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            EncodingKind::Unencoded => "raw",
            EncodingKind::Dictionary => "dict",
            EncodingKind::RunLength => "rle",
            EncodingKind::FrameOfReference => "for",
        }
    }
}

impl std::fmt::Display for EncodingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// An encoded segment: one column of one chunk.
#[derive(Debug, Clone)]
pub enum Segment {
    Unencoded(ColumnValues),
    Dictionary(DictionarySegment),
    RunLength(RunLengthSegment),
    FrameOfReference(ForSegment),
}

impl Segment {
    /// Encodes `values` with the requested kind, falling back to
    /// `Unencoded` when the kind does not support the data (type or value
    /// range).
    pub fn encode(values: &ColumnValues, kind: EncodingKind) -> Segment {
        match kind {
            EncodingKind::Unencoded => Segment::Unencoded(values.clone()),
            EncodingKind::Dictionary => match DictionarySegment::try_encode(values) {
                Some(seg) => Segment::Dictionary(seg),
                None => Segment::Unencoded(values.clone()),
            },
            EncodingKind::RunLength => Segment::RunLength(RunLengthSegment::encode(values)),
            EncodingKind::FrameOfReference => match ForSegment::try_encode(values) {
                Some(seg) => Segment::FrameOfReference(seg),
                None => Segment::Unencoded(values.clone()),
            },
        }
    }

    /// The encoding actually in effect (after any fallback).
    pub fn encoding(&self) -> EncodingKind {
        match self {
            Segment::Unencoded(_) => EncodingKind::Unencoded,
            Segment::Dictionary(_) => EncodingKind::Dictionary,
            Segment::RunLength(_) => EncodingKind::RunLength,
            Segment::FrameOfReference(_) => EncodingKind::FrameOfReference,
        }
    }

    /// Number of rows in the segment.
    pub fn len(&self) -> usize {
        match self {
            Segment::Unencoded(v) => v.len(),
            Segment::Dictionary(s) => s.len(),
            Segment::RunLength(s) => s.len(),
            Segment::FrameOfReference(s) => s.len(),
        }
    }

    /// Whether the segment holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The data type stored in the segment.
    pub fn data_type(&self) -> DataType {
        match self {
            Segment::Unencoded(v) => v.data_type(),
            Segment::Dictionary(s) => s.data_type(),
            Segment::RunLength(s) => s.data_type(),
            Segment::FrameOfReference(_) => DataType::Int,
        }
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        match self {
            Segment::Unencoded(v) => v.raw_bytes(),
            Segment::Dictionary(s) => s.memory_bytes(),
            Segment::RunLength(s) => s.memory_bytes(),
            Segment::FrameOfReference(s) => s.memory_bytes(),
        }
    }

    /// Random access to row `row`.
    pub fn value_at(&self, row: usize) -> Value {
        match self {
            Segment::Unencoded(v) => v.value_at(row),
            Segment::Dictionary(s) => s.value_at(row),
            Segment::RunLength(s) => s.value_at(row),
            Segment::FrameOfReference(s) => Value::Int(s.value_at(row)),
        }
    }

    /// Decodes back to raw column values (round-trip used in tests and
    /// re-encoding).
    pub fn decode(&self) -> ColumnValues {
        match self {
            Segment::Unencoded(v) => v.clone(),
            Segment::Dictionary(s) => s.decode(),
            Segment::RunLength(s) => s.decode(),
            Segment::FrameOfReference(s) => ColumnValues::Int(s.decode()),
        }
    }

    /// Appends to `out` the positions (row offsets within the chunk) whose
    /// value satisfies `pred`, using the encoding-specific fast path.
    pub fn filter(&self, pred: &ScanPredicate, out: &mut Vec<u32>) {
        match self {
            Segment::Unencoded(v) => filter_unencoded(v, pred, out),
            Segment::Dictionary(s) => s.filter(pred, out),
            Segment::RunLength(s) => s.filter(pred, out),
            Segment::FrameOfReference(s) => s.filter(pred, out),
        }
    }

    /// The number of scan work units a full filter pass touches: rows
    /// for positional encodings, *runs* for run-length (RLE evaluates the
    /// predicate once per run, so its cost tracks the run count).
    pub fn scan_units(&self) -> usize {
        match self {
            Segment::RunLength(s) => s.run_count(),
            other => other.len(),
        }
    }

    /// Retains in `positions` only those that satisfy `pred` (refinement
    /// of an earlier filter by another predicate).
    pub fn refine(&self, pred: &ScanPredicate, positions: &mut Vec<u32>) {
        positions.retain(|&p| pred.matches(&self.value_at(p as usize)));
    }
}

fn filter_unencoded(values: &ColumnValues, pred: &ScanPredicate, out: &mut Vec<u32>) {
    match values {
        ColumnValues::Int(v) => {
            // Fast numeric path: lower the predicate to i64 bounds once.
            if let Some((lo, hi)) = int_bounds(pred) {
                for (i, &x) in v.iter().enumerate() {
                    if x >= lo && x <= hi {
                        out.push(i as u32);
                    }
                }
                return;
            }
            for (i, &x) in v.iter().enumerate() {
                if pred.matches(&Value::Int(x)) {
                    out.push(i as u32);
                }
            }
        }
        ColumnValues::Float(v) => {
            for (i, &x) in v.iter().enumerate() {
                if pred.matches(&Value::Float(x)) {
                    out.push(i as u32);
                }
            }
        }
        ColumnValues::Text(v) => {
            for (i, s) in v.iter().enumerate() {
                // Avoid cloning each string into a Value.
                if matches_text(pred, s) {
                    out.push(i as u32);
                }
            }
        }
    }
}

fn matches_text(pred: &ScanPredicate, s: &str) -> bool {
    let as_str = |v: &Value| match v {
        Value::Text(t) => Some(t.clone()),
        _ => None,
    };
    let Some(rhs) = as_str(&pred.value) else {
        return false;
    };
    match pred.op {
        crate::scan::PredicateOp::Eq => s == rhs,
        crate::scan::PredicateOp::Lt => s < rhs.as_str(),
        crate::scan::PredicateOp::Le => s <= rhs.as_str(),
        crate::scan::PredicateOp::Gt => s > rhs.as_str(),
        crate::scan::PredicateOp::Ge => s >= rhs.as_str(),
        crate::scan::PredicateOp::Between => {
            let Some(hi) = pred.upper.as_ref().and_then(as_str) else {
                return false;
            };
            s >= rhs.as_str() && s <= hi.as_str()
        }
    }
}

/// Lowers a predicate over an integer column to an inclusive `[lo, hi]`
/// interval, when its comparison values are integers.
pub(crate) fn int_bounds(pred: &ScanPredicate) -> Option<(i64, i64)> {
    use crate::scan::PredicateOp::*;
    let v = pred.value.as_i64()?;
    Some(match pred.op {
        Eq => (v, v),
        Lt => (i64::MIN, v.checked_sub(1)?),
        Le => (i64::MIN, v),
        Gt => (v.checked_add(1)?, i64::MAX),
        Ge => (v, i64::MAX),
        Between => {
            let hi = pred.upper.as_ref()?.as_i64()?;
            (v, hi)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::PredicateOp;
    use smdb_common::ColumnId;

    fn ints(v: Vec<i64>) -> ColumnValues {
        ColumnValues::Int(v)
    }

    #[test]
    fn encode_fallbacks() {
        let floats = ColumnValues::Float(vec![1.0, 2.0]);
        let seg = Segment::encode(&floats, EncodingKind::FrameOfReference);
        assert_eq!(seg.encoding(), EncodingKind::Unencoded);
        let seg = Segment::encode(&floats, EncodingKind::Dictionary);
        assert_eq!(seg.encoding(), EncodingKind::Unencoded);
    }

    #[test]
    fn all_encodings_roundtrip_ints() {
        let data = ints(vec![5, 5, 5, 9, 1, 1, 3, 3, 3, 3]);
        for kind in EncodingKind::ALL {
            let seg = Segment::encode(&data, kind);
            assert_eq!(seg.decode(), data, "roundtrip failed for {kind}");
            assert_eq!(seg.len(), 10);
        }
    }

    #[test]
    fn all_encodings_filter_consistently() {
        let data = ints(vec![5, 5, 5, 9, 1, 1, 3, 3, 3, 3]);
        let preds = vec![
            ScanPredicate::eq(ColumnId(0), 3i64),
            ScanPredicate::cmp(ColumnId(0), PredicateOp::Lt, 5i64),
            ScanPredicate::between(ColumnId(0), 3i64, 5i64),
            ScanPredicate::cmp(ColumnId(0), PredicateOp::Ge, 9i64),
        ];
        let reference = Segment::encode(&data, EncodingKind::Unencoded);
        for pred in &preds {
            let mut expect = Vec::new();
            reference.filter(pred, &mut expect);
            for kind in EncodingKind::ALL {
                let seg = Segment::encode(&data, kind);
                let mut got = Vec::new();
                seg.filter(pred, &mut got);
                assert_eq!(got, expect, "filter mismatch for {kind} / {pred:?}");
            }
        }
    }

    #[test]
    fn refine_narrows_positions() {
        let data = ints(vec![1, 2, 3, 4, 5]);
        let seg = Segment::encode(&data, EncodingKind::Unencoded);
        let mut pos = vec![0u32, 2, 4];
        seg.refine(
            &ScanPredicate::cmp(ColumnId(0), PredicateOp::Ge, 3i64),
            &mut pos,
        );
        assert_eq!(pos, vec![2, 4]);
    }

    #[test]
    fn text_filtering() {
        let data = ColumnValues::Text(vec!["b".into(), "a".into(), "c".into(), "a".into()]);
        let seg = Segment::encode(&data, EncodingKind::Unencoded);
        let mut out = Vec::new();
        seg.filter(&ScanPredicate::eq(ColumnId(0), "a"), &mut out);
        assert_eq!(out, vec![1, 3]);
        out.clear();
        seg.filter(
            &ScanPredicate::cmp(ColumnId(0), PredicateOp::Le, "b"),
            &mut out,
        );
        assert_eq!(out, vec![0, 1, 3]);
    }

    #[test]
    fn int_bounds_lowering() {
        let p = ScanPredicate::cmp(ColumnId(0), PredicateOp::Lt, 10i64);
        assert_eq!(int_bounds(&p), Some((i64::MIN, 9)));
        let p = ScanPredicate::between(ColumnId(0), 2i64, 8i64);
        assert_eq!(int_bounds(&p), Some((2, 8)));
        let p = ScanPredicate::eq(ColumnId(0), "x");
        assert_eq!(int_bounds(&p), None);
    }

    #[test]
    fn dictionary_saves_memory_on_low_cardinality() {
        let data = ints((0..10_000).map(|i| i % 8).collect());
        let raw = Segment::encode(&data, EncodingKind::Unencoded);
        let dict = Segment::encode(&data, EncodingKind::Dictionary);
        assert_eq!(dict.encoding(), EncodingKind::Dictionary);
        // Codes are u32 instead of i64 values: just over half the footprint.
        assert!(dict.memory_bytes() < raw.memory_bytes() * 6 / 10);
    }
}
