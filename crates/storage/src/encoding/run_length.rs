//! Run-length encoding: consecutive equal values collapse into
//! `(value, start, length)` runs.
//!
//! Predicates are evaluated once per *run* instead of once per row, so
//! scans over sorted or low-cardinality segments touch far fewer values.

use crate::scan::ScanPredicate;
use crate::value::{ColumnValues, DataType, Value};

/// One run: a value repeated `len` times starting at row `start`.
#[derive(Debug, Clone)]
struct Run {
    value: Value,
    start: u32,
    len: u32,
}

/// A run-length-encoded segment.
#[derive(Debug, Clone)]
pub struct RunLengthSegment {
    runs: Vec<Run>,
    rows: u32,
    data_type: DataType,
}

impl RunLengthSegment {
    /// Encodes any column type (RLE is universally applicable; it is just
    /// not always *small*).
    pub fn encode(values: &ColumnValues) -> Self {
        let rows = values.len() as u32;
        let data_type = values.data_type();
        let mut runs: Vec<Run> = Vec::new();
        for row in 0..values.len() {
            let v = values.value_at(row);
            match runs.last_mut() {
                Some(last) if last.value == v => last.len += 1,
                _ => runs.push(Run {
                    value: v,
                    start: row as u32,
                    len: 1,
                }),
            }
        }
        RunLengthSegment {
            runs,
            rows,
            data_type,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows as usize
    }

    /// Whether the segment holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of runs (compression quality indicator).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Stored data type.
    pub fn data_type(&self) -> DataType {
        self.data_type
    }

    /// Approximate memory footprint.
    pub fn memory_bytes(&self) -> usize {
        self.runs
            .iter()
            .map(|r| r.value.size_bytes() + 8)
            .sum::<usize>()
    }

    /// Random access via binary search over run start positions.
    pub fn value_at(&self, row: usize) -> Value {
        let row = row as u32;
        debug_assert!(row < self.rows);
        let idx = match self.runs.binary_search_by(|r| r.start.cmp(&row)) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        self.runs[idx].value.clone()
    }

    /// Decodes to raw values.
    pub fn decode(&self) -> ColumnValues {
        let mut out = ColumnValues::empty(self.data_type);
        for r in &self.runs {
            for _ in 0..r.len {
                out.push(r.value.clone());
            }
        }
        out
    }

    /// Encoding-specific filter: evaluate once per run, emit whole runs.
    pub fn filter(&self, pred: &ScanPredicate, out: &mut Vec<u32>) {
        for r in &self.runs {
            if pred.matches(&r.value) {
                out.extend(r.start..r.start + r.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::PredicateOp;
    use smdb_common::ColumnId;

    #[test]
    fn encode_collapses_runs() {
        let s = RunLengthSegment::encode(&ColumnValues::Int(vec![7, 7, 7, 2, 2, 9]));
        assert_eq!(s.run_count(), 3);
        assert_eq!(s.len(), 6);
        assert_eq!(s.decode(), ColumnValues::Int(vec![7, 7, 7, 2, 2, 9]));
    }

    #[test]
    fn random_access_across_runs() {
        let s = RunLengthSegment::encode(&ColumnValues::Int(vec![7, 7, 7, 2, 2, 9]));
        assert_eq!(s.value_at(0), Value::Int(7));
        assert_eq!(s.value_at(2), Value::Int(7));
        assert_eq!(s.value_at(3), Value::Int(2));
        assert_eq!(s.value_at(5), Value::Int(9));
    }

    #[test]
    fn filter_emits_full_runs() {
        let s = RunLengthSegment::encode(&ColumnValues::Int(vec![7, 7, 7, 2, 2, 9]));
        let mut out = Vec::new();
        s.filter(&ScanPredicate::eq(ColumnId(0), 2i64), &mut out);
        assert_eq!(out, vec![3, 4]);
        out.clear();
        s.filter(
            &ScanPredicate::cmp(ColumnId(0), PredicateOp::Ge, 7i64),
            &mut out,
        );
        assert_eq!(out, vec![0, 1, 2, 5]);
    }

    #[test]
    fn rle_compresses_sorted_data() {
        let data: Vec<i64> = (0..1000).map(|i| i / 100).collect();
        let s = RunLengthSegment::encode(&ColumnValues::Int(data));
        assert_eq!(s.run_count(), 10);
        assert!(s.memory_bytes() < 1000 * 8 / 10);
    }

    #[test]
    fn works_for_text_and_float() {
        let t = RunLengthSegment::encode(&ColumnValues::Text(vec![
            "a".into(),
            "a".into(),
            "b".into(),
        ]));
        assert_eq!(t.run_count(), 2);
        let f = RunLengthSegment::encode(&ColumnValues::Float(vec![1.0, 1.0, 2.0]));
        assert_eq!(f.run_count(), 2);
        assert_eq!(f.decode(), ColumnValues::Float(vec![1.0, 1.0, 2.0]));
    }

    #[test]
    fn empty_segment() {
        let s = RunLengthSegment::encode(&ColumnValues::Int(vec![]));
        assert!(s.is_empty());
        assert_eq!(s.run_count(), 0);
        let mut out = Vec::new();
        s.filter(&ScanPredicate::eq(ColumnId(0), 1i64), &mut out);
        assert!(out.is_empty());
    }
}
