//! Ground-truth simulated cost parameters.
//!
//! The engine derives a deterministic [`smdb_common::Cost`] for
//! every operation from the *work it actually performs*: rows scanned per
//! encoding, index probes, tier-penalised accesses, rows re-encoded,
//! bytes moved. These parameters are the "hardware" of the simulation —
//! the framework's cost estimators never see them and must learn their
//! effect from observations (Section II-A(d): hardware-dependent cost
//! models are created "by learning from observed query execution costs").

use smdb_common::Cost;

use crate::encoding::EncodingKind;
use crate::placement::Tier;

/// Parameters of the simulated hardware.
#[derive(Debug, Clone)]
pub struct SimCostParams {
    /// Per-row full-scan cost of an unencoded segment, in ms.
    pub scan_ms_per_row: f64,
    /// One index probe's fixed cost, in ms.
    pub index_probe_ms: f64,
    /// Per produced match during an index probe, in ms.
    pub index_match_ms: f64,
    /// Per-position cost of refining by a residual predicate, in ms.
    pub refine_ms_per_row: f64,
    /// Per-row aggregation cost, in ms.
    pub agg_ms_per_row: f64,
    /// Additional per-row cost of hash-grouping during GROUP BY, in ms.
    pub group_ms_per_row: f64,
    /// Fixed cost of visiting (not pruning) a chunk, in ms.
    pub chunk_visit_ms: f64,
    /// Cost of consulting a chunk's min/max statistics when pruning it,
    /// in ms. Keeps every executed scan strictly positive-cost even when
    /// pruning eliminates all chunks — examining statistics is work too.
    pub prune_check_ms: f64,
    /// Per-row cost of building an index over an *unencoded* segment, ms.
    pub index_build_ms_per_row: f64,
    /// Per-row cost of re-encoding a segment, ms.
    pub reencode_ms_per_row: f64,
    /// Cost of migrating one megabyte between tiers, ms.
    pub move_ms_per_mb: f64,
    /// Fixed cost of resizing the buffer pool, ms.
    pub knob_change_ms: f64,
    /// Scheduling overhead charged per dispatched morsel in the
    /// simulated parallel-latency model (see
    /// [`crate::parallel::simulated_latency`]), ms. Total simulated
    /// *work* (`sim_cost`) never includes it — only the critical-path
    /// latency does, so tiny morsels model real dispatch overhead.
    pub morsel_dispatch_ms: f64,
}

impl Default for SimCostParams {
    fn default() -> Self {
        SimCostParams {
            scan_ms_per_row: 1e-4,
            index_probe_ms: 1e-2,
            index_match_ms: 2e-4,
            refine_ms_per_row: 1.2e-4,
            agg_ms_per_row: 5e-5,
            group_ms_per_row: 1.5e-4,
            chunk_visit_ms: 1e-3,
            prune_check_ms: 5e-5,
            index_build_ms_per_row: 8e-4,
            reencode_ms_per_row: 5e-4,
            move_ms_per_mb: 10.0,
            knob_change_ms: 1.0,
            morsel_dispatch_ms: 5e-4,
        }
    }
}

impl SimCostParams {
    /// Relative per-work-unit scan speed of each encoding. Dictionary
    /// scans faster than raw (predicate resolved on the dictionary once);
    /// frame-of-reference nets out a bit cheaper (half the bytes); RLE's
    /// unit is the *run*, not the row (see
    /// [`Segment::scan_units`](crate::encoding::Segment::scan_units)), so
    /// its per-unit factor is raw-like — the savings come from touching
    /// fewer units on clustered data.
    pub fn encoding_scan_factor(&self, enc: EncodingKind) -> f64 {
        match enc {
            EncodingKind::Unencoded => 1.0,
            EncodingKind::Dictionary => 0.45,
            EncodingKind::RunLength => 1.0,
            EncodingKind::FrameOfReference => 0.85,
        }
    }

    /// Relative index-build speed per encoding. Building over a
    /// dictionary segment works on codes and is markedly cheaper — the
    /// compression→index dependency of Section III.
    pub fn encoding_index_build_factor(&self, enc: EncodingKind) -> f64 {
        match enc {
            EncodingKind::Unencoded => 1.0,
            EncodingKind::Dictionary => 0.35,
            EncodingKind::RunLength => 0.6,
            EncodingKind::FrameOfReference => 0.9,
        }
    }

    /// The tier multiplier actually paid, after the buffer pool hides the
    /// hit fraction of non-hot accesses.
    ///
    /// `nonhot_bytes` is the total footprint currently placed on non-hot
    /// tiers; the buffer pool caches up to its capacity of that footprint,
    /// so the *miss* fraction pays the raw tier penalty. This coupling is
    /// what makes the buffer-pool knob and the placement feature mutually
    /// dependent.
    pub fn effective_tier_multiplier(
        &self,
        tier: Tier,
        buffer_pool_mb: f64,
        nonhot_bytes: usize,
    ) -> f64 {
        if tier == Tier::Hot {
            return 1.0;
        }
        let raw = tier.latency_multiplier();
        if nonhot_bytes == 0 {
            return 1.0;
        }
        let buffer_bytes = (buffer_pool_mb.max(0.0)) * 1024.0 * 1024.0;
        let hit = (buffer_bytes / nonhot_bytes as f64).clamp(0.0, 1.0);
        1.0 + (raw - 1.0) * (1.0 - hit)
    }

    /// One-time cost of building an index over `rows` rows stored with
    /// `enc` on `tier`.
    pub fn index_build_cost(&self, rows: usize, enc: EncodingKind, tier_mult: f64) -> Cost {
        Cost(rows as f64 * self.index_build_ms_per_row * self.encoding_index_build_factor(enc))
            * tier_mult
    }

    /// One-time cost of re-encoding `rows` rows on a tier.
    pub fn reencode_cost(&self, rows: usize, tier_mult: f64) -> Cost {
        Cost(rows as f64 * self.reencode_ms_per_row) * tier_mult
    }

    /// One-time cost of moving `bytes` between tiers.
    pub fn move_cost(&self, bytes: usize) -> Cost {
        Cost(bytes as f64 / (1024.0 * 1024.0) * self.move_ms_per_mb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_tier_never_penalised() {
        let p = SimCostParams::default();
        assert_eq!(p.effective_tier_multiplier(Tier::Hot, 0.0, 1 << 30), 1.0);
    }

    #[test]
    fn buffer_pool_hides_penalty() {
        let p = SimCostParams::default();
        let nonhot = 100 * 1024 * 1024; // 100 MB placed cold
        let none = p.effective_tier_multiplier(Tier::Cold, 0.0, nonhot);
        let half = p.effective_tier_multiplier(Tier::Cold, 50.0, nonhot);
        let full = p.effective_tier_multiplier(Tier::Cold, 100.0, nonhot);
        let over = p.effective_tier_multiplier(Tier::Cold, 1000.0, nonhot);
        assert_eq!(none, Tier::Cold.latency_multiplier());
        assert!(half < none && half > 1.0);
        assert_eq!(full, 1.0);
        assert_eq!(over, 1.0);
    }

    #[test]
    fn empty_nonhot_means_no_penalty() {
        let p = SimCostParams::default();
        assert_eq!(p.effective_tier_multiplier(Tier::Warm, 0.0, 0), 1.0);
    }

    #[test]
    fn dictionary_speeds_scans_and_builds() {
        let p = SimCostParams::default();
        assert!(
            p.encoding_scan_factor(EncodingKind::Dictionary)
                < p.encoding_scan_factor(EncodingKind::Unencoded)
        );
        assert!(
            p.encoding_index_build_factor(EncodingKind::Dictionary)
                < p.encoding_index_build_factor(EncodingKind::Unencoded)
        );
    }

    #[test]
    fn one_time_costs_scale() {
        let p = SimCostParams::default();
        let small = p.index_build_cost(100, EncodingKind::Unencoded, 1.0);
        let large = p.index_build_cost(1000, EncodingKind::Unencoded, 1.0);
        assert!(large.ms() > small.ms() * 9.0);
        assert_eq!(p.move_cost(1024 * 1024).ms(), p.move_ms_per_mb);
    }
}
