//! Chunks: horizontal partitions of a table.
//!
//! A chunk owns one [`Segment`] per column, per-segment statistics, an
//! optional per-column [`ChunkIndex`], and its placement [`Tier`]. All
//! tuning actions land here.

use smdb_common::{ColumnId, Error, Result};

use crate::encoding::{EncodingKind, Segment};
use crate::index::{ChunkIndex, IndexKind};
use crate::placement::Tier;
use crate::stats::SegmentStats;
use crate::value::ColumnValues;

/// One horizontal partition of a table.
#[derive(Debug, Clone)]
pub struct Chunk {
    segments: Vec<Segment>,
    stats: Vec<SegmentStats>,
    indexes: Vec<Option<ChunkIndex>>,
    tier: Tier,
    rows: usize,
}

impl Chunk {
    /// Builds a chunk from raw per-column data (all columns must have the
    /// same length). Segments start unencoded, unindexed, on the hot tier.
    pub fn from_columns(columns: Vec<ColumnValues>) -> Result<Chunk> {
        let rows = columns.first().map_or(0, |c| c.len());
        if columns.iter().any(|c| c.len() != rows) {
            return Err(Error::invalid("column lengths differ within chunk"));
        }
        let stats = columns.iter().map(SegmentStats::compute).collect();
        let segments = columns
            .iter()
            .map(|c| Segment::encode(c, EncodingKind::Unencoded))
            .collect();
        let indexes = columns.iter().map(|_| None).collect();
        Ok(Chunk {
            segments,
            stats,
            indexes,
            tier: Tier::Hot,
            rows,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.segments.len()
    }

    /// The segment of column `col`.
    pub fn segment(&self, col: ColumnId) -> Result<&Segment> {
        self.segments
            .get(col.0 as usize)
            .ok_or_else(|| Error::not_found("column", format!("{col}")))
    }

    /// Statistics of column `col`.
    pub fn stats(&self, col: ColumnId) -> Result<&SegmentStats> {
        self.stats
            .get(col.0 as usize)
            .ok_or_else(|| Error::not_found("column", format!("{col}")))
    }

    /// The index on column `col`, if any.
    pub fn index(&self, col: ColumnId) -> Option<&ChunkIndex> {
        self.indexes.get(col.0 as usize)?.as_ref()
    }

    /// Current placement tier.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Moves the chunk to `tier`.
    pub fn set_tier(&mut self, tier: Tier) {
        self.tier = tier;
    }

    /// Re-encodes column `col` with `kind` (with fallback semantics, see
    /// [`Segment::encode`]). Any existing index remains valid because
    /// values and positions are unchanged.
    pub fn set_encoding(&mut self, col: ColumnId, kind: EncodingKind) -> Result<EncodingKind> {
        let idx = col.0 as usize;
        let seg = self
            .segments
            .get(idx)
            .ok_or_else(|| Error::not_found("column", format!("{col}")))?;
        let raw = seg.decode();
        let new_seg = Segment::encode(&raw, kind);
        let applied = new_seg.encoding();
        self.segments[idx] = new_seg;
        Ok(applied)
    }

    /// Creates an index of `kind` on column `col`. Replaces an existing
    /// index of a different kind; creating the same kind twice is an
    /// error (the framework should know the current configuration).
    pub fn create_index(&mut self, col: ColumnId, kind: IndexKind) -> Result<()> {
        let idx = col.0 as usize;
        if idx >= self.segments.len() {
            return Err(Error::not_found("column", format!("{col}")));
        }
        if let Some(existing) = &self.indexes[idx] {
            if existing.kind() == kind {
                return Err(Error::Configuration(format!(
                    "index {kind} already exists on column {col}"
                )));
            }
        }
        self.indexes[idx] = Some(match kind {
            crate::index::IndexKind::CompositeHash { second } => {
                let second_idx = second.0 as usize;
                let second_segment = self
                    .segments
                    .get(second_idx)
                    .ok_or_else(|| Error::not_found("column", format!("{second}")))?;
                if second_idx == idx {
                    return Err(Error::Configuration(
                        "composite index requires two distinct columns".into(),
                    ));
                }
                ChunkIndex::build_composite(second, &self.segments[idx], second_segment)
            }
            _ => ChunkIndex::build(kind, &self.segments[idx]),
        });
        Ok(())
    }

    /// Drops the index on column `col`. Dropping a non-existent index is
    /// an error.
    pub fn drop_index(&mut self, col: ColumnId) -> Result<()> {
        let idx = col.0 as usize;
        if idx >= self.segments.len() {
            return Err(Error::not_found("column", format!("{col}")));
        }
        if self.indexes[idx].take().is_none() {
            return Err(Error::Configuration(format!(
                "no index to drop on column {col}"
            )));
        }
        Ok(())
    }

    /// Memory of all segments (table data) in bytes.
    pub fn data_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.memory_bytes()).sum()
    }

    /// Memory of all indexes in bytes.
    pub fn index_bytes(&self) -> usize {
        self.indexes
            .iter()
            .flatten()
            .map(|i| i.memory_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScanPredicate;

    fn chunk() -> Chunk {
        Chunk::from_columns(vec![
            ColumnValues::Int(vec![1, 2, 3, 2]),
            ColumnValues::Float(vec![0.5, 1.5, 2.5, 3.5]),
        ])
        .unwrap()
    }

    #[test]
    fn construction_checks_lengths() {
        let bad = Chunk::from_columns(vec![
            ColumnValues::Int(vec![1]),
            ColumnValues::Int(vec![1, 2]),
        ]);
        assert!(bad.is_err());
        let ok = chunk();
        assert_eq!(ok.rows(), 4);
        assert_eq!(ok.arity(), 2);
    }

    #[test]
    fn encoding_changes_apply_with_fallback() {
        let mut c = chunk();
        let applied = c
            .set_encoding(ColumnId(0), EncodingKind::Dictionary)
            .unwrap();
        assert_eq!(applied, EncodingKind::Dictionary);
        // Floats cannot be dictionary encoded: falls back.
        let applied = c
            .set_encoding(ColumnId(1), EncodingKind::Dictionary)
            .unwrap();
        assert_eq!(applied, EncodingKind::Unencoded);
    }

    #[test]
    fn index_lifecycle() {
        let mut c = chunk();
        assert!(c.index(ColumnId(0)).is_none());
        c.create_index(ColumnId(0), IndexKind::Hash).unwrap();
        assert!(c.index(ColumnId(0)).is_some());
        // Duplicate same-kind creation is rejected.
        assert!(c.create_index(ColumnId(0), IndexKind::Hash).is_err());
        // Replacing with another kind is allowed.
        c.create_index(ColumnId(0), IndexKind::BTree).unwrap();
        assert_eq!(c.index(ColumnId(0)).unwrap().kind(), IndexKind::BTree);
        c.drop_index(ColumnId(0)).unwrap();
        assert!(c.drop_index(ColumnId(0)).is_err());
    }

    #[test]
    fn index_survives_reencoding() {
        let mut c = chunk();
        c.create_index(ColumnId(0), IndexKind::Hash).unwrap();
        c.set_encoding(ColumnId(0), EncodingKind::RunLength)
            .unwrap();
        let mut out = Vec::new();
        assert!(c
            .index(ColumnId(0))
            .unwrap()
            .probe(&ScanPredicate::eq(ColumnId(0), 2i64), &mut out));
        out.sort_unstable();
        assert_eq!(out, vec![1, 3]);
    }

    #[test]
    fn memory_accounting_splits_data_and_indexes() {
        let mut c = chunk();
        let data_before = c.data_bytes();
        assert_eq!(c.index_bytes(), 0);
        c.create_index(ColumnId(0), IndexKind::BTree).unwrap();
        assert!(c.index_bytes() > 0);
        assert_eq!(c.data_bytes(), data_before);
    }

    #[test]
    fn tier_moves() {
        let mut c = chunk();
        assert_eq!(c.tier(), Tier::Hot);
        c.set_tier(Tier::Cold);
        assert_eq!(c.tier(), Tier::Cold);
    }
}
