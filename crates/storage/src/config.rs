//! Configuration instances and configuration actions.
//!
//! The paper (Section II-A(b)) defines the *configuration* of a DBMS as
//! the combination of all its configurable entities — physical design
//! (indexes, encodings, placement) and knobs — and calls one concrete
//! combination a *configuration instance*. [`ConfigInstance`] is exactly
//! that: a value the tuners manipulate hypothetically (what-if costing)
//! and the executor applies for real via [`ConfigAction`]s.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use smdb_common::{ChunkColumnRef, ChunkId, TableId};

use crate::encoding::EncodingKind;
use crate::index::IndexKind;
use crate::placement::Tier;

/// Tunable scalar knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct Knobs {
    /// Buffer pool capacity in megabytes. The buffer pool hides part of
    /// the latency penalty of warm/cold placements (see
    /// [`crate::simcost::SimCostParams::effective_tier_multiplier`]).
    pub buffer_pool_mb: f64,
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs {
            buffer_pool_mb: 64.0,
        }
    }
}

/// Identifies a knob in [`ConfigAction::SetKnob`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KnobKind {
    BufferPoolMb,
}

impl std::fmt::Display for KnobKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KnobKind::BufferPoolMb => write!(f, "buffer_pool_mb"),
        }
    }
}

/// One concrete configuration of the whole system.
///
/// Absent entries mean the default: no index, [`EncodingKind::Unencoded`],
/// [`Tier::Hot`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConfigInstance {
    pub indexes: BTreeMap<ChunkColumnRef, IndexKind>,
    pub encodings: BTreeMap<ChunkColumnRef, EncodingKind>,
    pub placements: BTreeMap<(TableId, ChunkId), Tier>,
    pub knobs: Knobs,
}

impl ConfigInstance {
    /// The encoding in effect for a segment.
    pub fn encoding_of(&self, target: ChunkColumnRef) -> EncodingKind {
        self.encodings
            .get(&target)
            .copied()
            .unwrap_or(EncodingKind::Unencoded)
    }

    /// The index in effect for a segment, if any.
    pub fn index_of(&self, target: ChunkColumnRef) -> Option<IndexKind> {
        self.indexes.get(&target).copied()
    }

    /// The tier a chunk is placed on.
    pub fn tier_of(&self, table: TableId, chunk: ChunkId) -> Tier {
        self.placements
            .get(&(table, chunk))
            .copied()
            .unwrap_or(Tier::Hot)
    }

    /// A stable fingerprint for change detection in the configuration
    /// instance storage.
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for (k, v) in &self.indexes {
            (k, *v).hash(&mut h);
        }
        for (k, v) in &self.encodings {
            (k, *v).hash(&mut h);
        }
        for (k, v) in &self.placements {
            (k, *v).hash(&mut h);
        }
        self.knobs.buffer_pool_mb.to_bits().hash(&mut h);
        h.finish()
    }

    /// The actions that transform `self` into `target`.
    ///
    /// The action list is minimal: unchanged entries produce nothing, so
    /// its length is the natural measure of how invasive a reconfiguration
    /// is (Section II-D(b): "minimally invasive changes").
    pub fn diff(&self, target: &ConfigInstance) -> Vec<ConfigAction> {
        let mut actions = Vec::new();
        // Indexes: drop what disappears, create what appears or changes kind.
        for (&r, &kind) in &self.indexes {
            match target.indexes.get(&r) {
                None => actions.push(ConfigAction::DropIndex { target: r }),
                Some(&new_kind) if new_kind != kind => {
                    actions.push(ConfigAction::CreateIndex {
                        target: r,
                        kind: new_kind,
                    });
                }
                _ => {}
            }
        }
        for (&r, &kind) in &target.indexes {
            if !self.indexes.contains_key(&r) {
                actions.push(ConfigAction::CreateIndex { target: r, kind });
            }
        }
        // Encodings: every differing effective encoding becomes a set.
        let enc_keys: std::collections::BTreeSet<_> = self
            .encodings
            .keys()
            .chain(target.encodings.keys())
            .copied()
            .collect();
        for r in enc_keys {
            let from = self.encoding_of(r);
            let to = target.encoding_of(r);
            if from != to {
                actions.push(ConfigAction::SetEncoding {
                    target: r,
                    kind: to,
                });
            }
        }
        // Placements.
        let place_keys: std::collections::BTreeSet<_> = self
            .placements
            .keys()
            .chain(target.placements.keys())
            .copied()
            .collect();
        for (t, c) in place_keys {
            let from = self.tier_of(t, c);
            let to = target.tier_of(t, c);
            if from != to {
                actions.push(ConfigAction::SetPlacement {
                    table: t,
                    chunk: c,
                    tier: to,
                });
            }
        }
        // Knobs.
        if self.knobs.buffer_pool_mb != target.knobs.buffer_pool_mb {
            actions.push(ConfigAction::SetKnob {
                knob: KnobKind::BufferPoolMb,
                value: target.knobs.buffer_pool_mb,
            });
        }
        actions
    }

    /// Applies an action to this instance (the hypothetical counterpart of
    /// the engine applying it for real).
    pub fn apply(&mut self, action: &ConfigAction) {
        match action {
            ConfigAction::CreateIndex { target, kind } => {
                self.indexes.insert(*target, *kind);
            }
            ConfigAction::DropIndex { target } => {
                self.indexes.remove(target);
            }
            ConfigAction::SetEncoding { target, kind } => {
                if *kind == EncodingKind::Unencoded {
                    self.encodings.remove(target);
                } else {
                    self.encodings.insert(*target, *kind);
                }
            }
            ConfigAction::SetPlacement { table, chunk, tier } => {
                if *tier == Tier::Hot {
                    self.placements.remove(&(*table, *chunk));
                } else {
                    self.placements.insert((*table, *chunk), *tier);
                }
            }
            ConfigAction::SetKnob { knob, value } => match knob {
                KnobKind::BufferPoolMb => self.knobs.buffer_pool_mb = *value,
            },
        }
    }
}

/// One atomic change to the configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigAction {
    CreateIndex {
        target: ChunkColumnRef,
        kind: IndexKind,
    },
    DropIndex {
        target: ChunkColumnRef,
    },
    SetEncoding {
        target: ChunkColumnRef,
        kind: EncodingKind,
    },
    SetPlacement {
        table: TableId,
        chunk: ChunkId,
        tier: Tier,
    },
    SetKnob {
        knob: KnobKind,
        value: f64,
    },
}

impl std::fmt::Display for ConfigAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigAction::CreateIndex { target, kind } => {
                write!(f, "CREATE INDEX {kind} ON {target}")
            }
            ConfigAction::DropIndex { target } => write!(f, "DROP INDEX ON {target}"),
            ConfigAction::SetEncoding { target, kind } => {
                write!(f, "SET ENCODING {kind} ON {target}")
            }
            ConfigAction::SetPlacement { table, chunk, tier } => {
                write!(f, "PLACE {table}.{chunk} ON {tier}")
            }
            ConfigAction::SetKnob { knob, value } => write!(f, "SET {knob} = {value}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(t: u32, c: u16, k: u32) -> ChunkColumnRef {
        ChunkColumnRef::new(t, c, k)
    }

    #[test]
    fn defaults_are_empty() {
        let c = ConfigInstance::default();
        assert_eq!(c.encoding_of(r(0, 0, 0)), EncodingKind::Unencoded);
        assert_eq!(c.index_of(r(0, 0, 0)), None);
        assert_eq!(c.tier_of(TableId(0), ChunkId(0)), Tier::Hot);
    }

    #[test]
    fn diff_is_minimal_and_applies() {
        let base = ConfigInstance::default();
        let mut target = ConfigInstance::default();
        target.indexes.insert(r(0, 1, 0), IndexKind::Hash);
        target
            .encodings
            .insert(r(0, 1, 0), EncodingKind::Dictionary);
        target
            .placements
            .insert((TableId(0), ChunkId(3)), Tier::Cold);
        target.knobs.buffer_pool_mb = 128.0;

        let actions = base.diff(&target);
        assert_eq!(actions.len(), 4);

        let mut replayed = base.clone();
        for a in &actions {
            replayed.apply(a);
        }
        assert_eq!(replayed, target);
        // Reaching the same config again produces no actions.
        assert!(replayed.diff(&target).is_empty());
    }

    #[test]
    fn diff_drops_removed_indexes() {
        let mut base = ConfigInstance::default();
        base.indexes.insert(r(0, 0, 0), IndexKind::Hash);
        let target = ConfigInstance::default();
        let actions = base.diff(&target);
        assert_eq!(
            actions,
            vec![ConfigAction::DropIndex { target: r(0, 0, 0) }]
        );
    }

    #[test]
    fn diff_replaces_index_kind() {
        let mut base = ConfigInstance::default();
        base.indexes.insert(r(0, 0, 0), IndexKind::Hash);
        let mut target = ConfigInstance::default();
        target.indexes.insert(r(0, 0, 0), IndexKind::BTree);
        let actions = base.diff(&target);
        assert_eq!(
            actions,
            vec![ConfigAction::CreateIndex {
                target: r(0, 0, 0),
                kind: IndexKind::BTree
            }]
        );
    }

    #[test]
    fn apply_normalizes_defaults() {
        let mut c = ConfigInstance::default();
        c.apply(&ConfigAction::SetEncoding {
            target: r(0, 0, 0),
            kind: EncodingKind::Dictionary,
        });
        assert_eq!(c.encodings.len(), 1);
        c.apply(&ConfigAction::SetEncoding {
            target: r(0, 0, 0),
            kind: EncodingKind::Unencoded,
        });
        assert!(c.encodings.is_empty());
        c.apply(&ConfigAction::SetPlacement {
            table: TableId(0),
            chunk: ChunkId(0),
            tier: Tier::Hot,
        });
        assert!(c.placements.is_empty());
    }

    #[test]
    fn fingerprint_changes_with_config() {
        let base = ConfigInstance::default();
        let mut other = base.clone();
        assert_eq!(base.fingerprint(), other.fingerprint());
        other.knobs.buffer_pool_mb = 1.0;
        assert_ne!(base.fingerprint(), other.fingerprint());
    }
}

/// A serialization-friendly snapshot of a [`ConfigInstance`].
///
/// `ConfigInstance` itself keys its maps by struct types, which JSON
/// cannot represent as object keys; the snapshot flattens them into
/// arrays. Round-trips losslessly via `From` in both directions.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigSnapshot {
    pub indexes: Vec<(ChunkColumnRef, IndexKind)>,
    pub encodings: Vec<(ChunkColumnRef, EncodingKind)>,
    pub placements: Vec<(TableId, ChunkId, Tier)>,
    pub buffer_pool_mb: f64,
}

impl From<&ConfigInstance> for ConfigSnapshot {
    fn from(c: &ConfigInstance) -> Self {
        ConfigSnapshot {
            indexes: c.indexes.iter().map(|(&k, &v)| (k, v)).collect(),
            encodings: c.encodings.iter().map(|(&k, &v)| (k, v)).collect(),
            placements: c
                .placements
                .iter()
                .map(|(&(t, k), &tier)| (t, k, tier))
                .collect(),
            buffer_pool_mb: c.knobs.buffer_pool_mb,
        }
    }
}

impl From<&ConfigSnapshot> for ConfigInstance {
    fn from(s: &ConfigSnapshot) -> Self {
        let mut c = ConfigInstance::default();
        for &(target, kind) in &s.indexes {
            c.indexes.insert(target, kind);
        }
        for &(target, kind) in &s.encodings {
            if kind != EncodingKind::Unencoded {
                c.encodings.insert(target, kind);
            }
        }
        for &(table, chunk, tier) in &s.placements {
            if tier != Tier::Hot {
                c.placements.insert((table, chunk), tier);
            }
        }
        c.knobs.buffer_pool_mb = s.buffer_pool_mb;
        c
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;

    #[test]
    fn snapshot_roundtrips() {
        let mut c = ConfigInstance::default();
        c.indexes
            .insert(ChunkColumnRef::new(0, 1, 2), IndexKind::BTree);
        c.encodings
            .insert(ChunkColumnRef::new(1, 0, 0), EncodingKind::RunLength);
        c.placements.insert((TableId(0), ChunkId(3)), Tier::Warm);
        c.knobs.buffer_pool_mb = 256.0;
        let snap = ConfigSnapshot::from(&c);
        let back = ConfigInstance::from(&snap);
        assert_eq!(back, c);
    }

    #[test]
    fn snapshot_normalizes_defaults() {
        let snap = ConfigSnapshot {
            indexes: vec![],
            encodings: vec![(ChunkColumnRef::new(0, 0, 0), EncodingKind::Unencoded)],
            placements: vec![(TableId(0), ChunkId(0), Tier::Hot)],
            buffer_pool_mb: 64.0,
        };
        let c = ConfigInstance::from(&snap);
        assert_eq!(c, ConfigInstance::default());
    }
}
