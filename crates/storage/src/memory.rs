//! Memory accounting.
//!
//! The hardware-resource constraints of Section II-A(c) need to know how
//! much memory the system uses, split by what the tuner can influence
//! (indexes, encodings) and where it resides (tiers).

use std::collections::BTreeMap;

use crate::placement::Tier;

/// A point-in-time memory report for the whole engine.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MemoryReport {
    /// Table data bytes (after encoding), summed over all tables.
    pub data_bytes: usize,
    /// Index bytes, summed over all tables.
    pub index_bytes: usize,
    /// Data bytes resident per tier.
    pub per_tier: BTreeMap<Tier, usize>,
}

impl MemoryReport {
    /// Total bytes (data + indexes).
    pub fn total_bytes(&self) -> usize {
        self.data_bytes + self.index_bytes
    }

    /// Bytes resident on a tier (data only; indexes are always hot).
    pub fn tier_bytes(&self, tier: Tier) -> usize {
        self.per_tier.get(&tier).copied().unwrap_or(0)
    }

    /// Bytes on non-hot tiers (the footprint the buffer pool caches).
    pub fn nonhot_bytes(&self) -> usize {
        self.tier_bytes(Tier::Warm) + self.tier_bytes(Tier::Cold)
    }

    /// Bytes competing for hot capacity: hot-resident data plus indexes.
    pub fn hot_bytes(&self) -> usize {
        self.tier_bytes(Tier::Hot) + self.index_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let mut r = MemoryReport {
            data_bytes: 100,
            index_bytes: 40,
            ..MemoryReport::default()
        };
        r.per_tier.insert(Tier::Hot, 60);
        r.per_tier.insert(Tier::Warm, 30);
        r.per_tier.insert(Tier::Cold, 10);
        assert_eq!(r.total_bytes(), 140);
        assert_eq!(r.nonhot_bytes(), 40);
        assert_eq!(r.hot_bytes(), 100);
        assert_eq!(r.tier_bytes(Tier::Cold), 10);
    }

    #[test]
    fn missing_tiers_are_zero() {
        let r = MemoryReport::default();
        assert_eq!(r.tier_bytes(Tier::Warm), 0);
        assert_eq!(r.nonhot_bytes(), 0);
    }
}
