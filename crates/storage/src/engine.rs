//! The storage engine: catalog, scan execution with ground-truth costing,
//! and configuration application.

use std::collections::{BTreeMap, HashMap};

use smdb_common::{ChunkColumnRef, Cost, Error, Result, TableId};

use crate::config::{ConfigAction, ConfigInstance, Knobs};
use crate::memory::MemoryReport;
use crate::placement::Tier;
use crate::scan::{Aggregate, AggregateOp, ScanPredicate};
use crate::simcost::SimCostParams;
use crate::table::Table;
use crate::value::Value;

/// Result of one table scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanOutput {
    /// Rows satisfying all predicates.
    pub rows_matched: u64,
    /// Aggregate value, when an aggregate was requested and computable.
    pub agg_value: Option<f64>,
    /// Per-group aggregate values when a GROUP BY was requested, sorted
    /// by group key.
    pub groups: Option<Vec<(Value, f64)>>,
    /// Ground-truth simulated cost of the scan: the total *work*
    /// performed, summed over chunks in chunk-index order. Independent
    /// of how (or whether) the scan was parallelised — cost estimators
    /// learn from this figure.
    pub sim_cost: Cost,
    /// Ground-truth simulated *latency* of the scan: equal to
    /// [`ScanOutput::sim_cost`] for an inline scan; for a morsel-driven
    /// parallel scan, the deterministic critical-path latency of
    /// [`crate::parallel::simulated_latency`] (max lane sum plus
    /// per-morsel dispatch overhead). This is what serving KPIs record.
    pub sim_latency: Cost,
    /// Morsels dispatched to the scan pool (0 for an inline scan).
    pub morsels: u64,
    /// Rows actually touched by the driving filter (scan or probe output).
    pub rows_scanned: u64,
    /// Chunks skipped by min/max pruning.
    pub chunks_pruned: u64,
    /// Chunks actually processed.
    pub chunks_visited: u64,
    /// Chunks where an index answered the driving predicate.
    pub index_probes: u64,
    /// Visited chunks whose driving selection ran on a batch kernel.
    /// Together with [`ScanOutput::index_probes`] and
    /// [`ScanOutput::chunks_scalar`] this partitions the visited chunks:
    /// `chunks_visited == index_probes + chunks_kernel + chunks_scalar`.
    pub chunks_kernel: u64,
    /// Visited chunks whose driving selection fell back to the scalar
    /// per-value path.
    pub chunks_scalar: u64,
    /// Batch-kernel invocations (driving filters, refines, aggregate
    /// folds) across all chunks of the scan.
    pub kernel_batches: u64,
}

/// Per-chunk access-path partition of one scan, predicted or executed:
/// every chunk of the table lands in exactly one bucket. The executed
/// partition comes from [`ScanOutput`] (`chunks_pruned`, `index_probes`,
/// `chunks_kernel`, `chunks_scalar`);
/// [`StorageEngine::predict_access_paths`] produces the same partition
/// from statistics alone, and the soak asserts the two agree on every
/// query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictedPaths {
    /// Chunks min/max pruning skips.
    pub pruned: u64,
    /// Chunks where an index probe answers the driving predicate(s).
    pub index: u64,
    /// Chunks whose driving selection runs on a batch kernel.
    pub kernel: u64,
    /// Chunks whose driving selection falls back to the scalar path.
    pub scalar: u64,
}

/// The in-memory storage engine.
///
/// The engine executes scans (with deterministic, configuration-dependent
/// simulated cost) and applies [`ConfigAction`]s, reporting their one-time
/// reconfiguration cost. It is the ground truth the self-management
/// framework tunes against.
#[derive(Debug, Clone)]
pub struct StorageEngine {
    tables: Vec<Table>,
    names: HashMap<String, TableId>,
    knobs: Knobs,
    params: SimCostParams,
    /// Whether batch predicate/aggregation kernels drive covered scans
    /// (on by default; the scalar path remains the semantic reference).
    kernels: bool,
    /// Cached bytes resident on non-hot tiers (drives buffer-pool hit rates).
    nonhot_bytes: usize,
    /// Process-unique catalog identity, refreshed whenever the table set
    /// changes. Cost caches key on it so entries from one engine are
    /// never served for another; clones share the token because their
    /// catalogs (and hence statistics) are identical.
    catalog_token: u64,
}

fn next_catalog_token() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Default for StorageEngine {
    fn default() -> Self {
        StorageEngine::new(SimCostParams::default())
    }
}

impl StorageEngine {
    /// Creates an empty engine over the given simulated hardware.
    pub fn new(params: SimCostParams) -> Self {
        StorageEngine {
            tables: Vec::new(),
            names: HashMap::new(),
            knobs: Knobs::default(),
            params,
            kernels: true,
            nonhot_bytes: 0,
            catalog_token: next_catalog_token(),
        }
    }

    /// Whether the vectorized kernel layer is enabled.
    pub fn kernels_enabled(&self) -> bool {
        self.kernels
    }

    /// Enables or disables the vectorized kernel layer. Results are
    /// bit-identical either way (see [`crate::kernels`]); only the
    /// execution strategy — and the kernel/scalar chunk counters —
    /// change. Tests use this to diff the two paths.
    pub fn set_kernels_enabled(&mut self, on: bool) {
        self.kernels = on;
    }

    /// The engine's catalog identity token (see field docs).
    pub fn catalog_token(&self) -> u64 {
        self.catalog_token
    }

    /// Predicts, from chunk statistics and the catalog alone, which
    /// access path [`StorageEngine::scan_chunk`] takes on every chunk of
    /// `table` for `predicates` — without executing anything. The
    /// decision sequence is mirrored exactly: min/max prune, composite
    /// probe, driving-predicate probe, batch kernel
    /// ([`crate::kernels::covers_filter`] gated on the kernel switch),
    /// scalar fallback. `predicted == executed` is therefore a checkable
    /// invariant, and the soak asserts it per query against the
    /// [`ScanOutput`] counters.
    pub fn predict_access_paths(
        &self,
        table: TableId,
        predicates: &[ScanPredicate],
    ) -> Result<PredictedPaths> {
        let table = self.table(table)?;
        let mut out = PredictedPaths::default();
        'chunks: for (_, chunk) in table.chunks() {
            for p in predicates {
                if !chunk.stats(p.column)?.can_match(p) {
                    out.pruned += 1;
                    continue 'chunks;
                }
            }
            let remaining: Vec<&ScanPredicate> = predicates.iter().collect();
            if composite_pair(chunk, &remaining)
                .and_then(|(i, _)| chunk.index(remaining[i].column))
                .is_some()
            {
                out.index += 1;
                continue;
            }
            if remaining.is_empty() {
                // Full-chunk selection: one batch emit when kernels are on.
                if self.kernels {
                    out.kernel += 1;
                } else {
                    out.scalar += 1;
                }
                continue;
            }
            let drive_pos = remaining
                .iter()
                .position(|p| {
                    chunk.index(p.column).is_some_and(|idx| {
                        !matches!(idx.kind(), crate::index::IndexKind::CompositeHash { .. })
                            && idx.kind().supports(p.op)
                            && chunk
                                .stats(p.column)
                                .map(|s| {
                                    s.estimate_selectivity(p)
                                        <= crate::scan::INDEX_SELECTIVITY_THRESHOLD
                                })
                                .unwrap_or(false)
                    })
                })
                .unwrap_or(0);
            let driving = remaining[drive_pos];
            let probed = chunk.index(driving.column).is_some_and(|idx| {
                !matches!(idx.kind(), crate::index::IndexKind::CompositeHash { .. })
                    && idx.kind().supports(driving.op)
            });
            if probed {
                out.index += 1;
            } else if self.kernels
                && crate::kernels::covers_filter(chunk.segment(driving.column)?, driving)
            {
                out.kernel += 1;
            } else {
                out.scalar += 1;
            }
        }
        Ok(out)
    }

    /// Registers a table; names must be unique.
    pub fn create_table(&mut self, table: Table) -> Result<TableId> {
        if self.names.contains_key(table.name()) {
            return Err(Error::Configuration(format!(
                "table '{}' already exists",
                table.name()
            )));
        }
        let id = TableId(self.tables.len() as u32);
        self.names.insert(table.name().to_string(), id);
        self.tables.push(table);
        self.recompute_residency();
        self.catalog_token = next_catalog_token();
        Ok(id)
    }

    /// Immutable table access.
    pub fn table(&self, id: TableId) -> Result<&Table> {
        self.tables
            .get(id.0 as usize)
            .ok_or_else(|| Error::not_found("table", format!("{id}")))
    }

    /// Resolves a table name.
    pub fn table_id(&self, name: &str) -> Result<TableId> {
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| Error::not_found("table", name))
    }

    /// All table ids with names.
    pub fn tables(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i as u32), t))
    }

    /// The current knob settings.
    pub fn knobs(&self) -> &Knobs {
        &self.knobs
    }

    /// The simulated hardware parameters (for tests and the experiment
    /// harness; cost *estimators* must not use this).
    pub fn sim_params(&self) -> &SimCostParams {
        &self.params
    }

    /// Snapshot of the configuration currently in effect, reconstructed
    /// from actual physical state.
    pub fn current_config(&self) -> ConfigInstance {
        let mut config = ConfigInstance {
            knobs: self.knobs.clone(),
            ..ConfigInstance::default()
        };
        for (tid, table) in self.tables() {
            for (cid, chunk) in table.chunks() {
                if chunk.tier() != Tier::Hot {
                    config.placements.insert((tid, cid), chunk.tier());
                }
                for (col, _) in table.schema().iter() {
                    let target = ChunkColumnRef {
                        table: tid,
                        column: col,
                        chunk: cid,
                    };
                    if let Some(idx) = chunk.index(col) {
                        config.indexes.insert(target, idx.kind());
                    }
                    // A schema column always has a segment; a mismatch is
                    // treated as "unencoded" rather than a panic so the
                    // snapshot path can never poison a running server.
                    let enc = chunk
                        .segment(col)
                        .map(|s| s.encoding())
                        .unwrap_or(crate::encoding::EncodingKind::Unencoded);
                    if enc != crate::encoding::EncodingKind::Unencoded {
                        config.encodings.insert(target, enc);
                    }
                }
            }
        }
        config
    }

    /// Applies one configuration action, returning its one-time
    /// reconfiguration cost.
    pub fn apply_action(&mut self, action: &ConfigAction) -> Result<Cost> {
        let cost = match action {
            ConfigAction::CreateIndex { target, kind } => {
                let tier_mult = self.chunk_tier_multiplier(target.table, target.chunk.0)?;
                let table = self.table_mut(target.table)?;
                let chunk = table.chunk_mut(target.chunk)?;
                let rows = chunk.rows();
                let enc = chunk.segment(target.column)?.encoding();
                chunk.create_index(target.column, *kind)?;
                self.params.index_build_cost(rows, enc, tier_mult)
            }
            ConfigAction::DropIndex { target } => {
                let table = self.table_mut(target.table)?;
                table.chunk_mut(target.chunk)?.drop_index(target.column)?;
                Cost(0.1)
            }
            ConfigAction::SetEncoding { target, kind } => {
                let tier_mult = self.chunk_tier_multiplier(target.table, target.chunk.0)?;
                let table = self.table_mut(target.table)?;
                let chunk = table.chunk_mut(target.chunk)?;
                let rows = chunk.rows();
                chunk.set_encoding(target.column, *kind)?;
                self.recompute_residency();
                self.params.reencode_cost(rows, tier_mult)
            }
            ConfigAction::SetPlacement { table, chunk, tier } => {
                let t = self.table_mut(*table)?;
                let c = t.chunk_mut(*chunk)?;
                if c.tier() == *tier {
                    return Err(Error::Configuration(format!(
                        "chunk {table}.{chunk} already on tier {tier}"
                    )));
                }
                let bytes = c.data_bytes();
                c.set_tier(*tier);
                self.recompute_residency();
                self.params.move_cost(bytes)
            }
            ConfigAction::SetKnob { knob, value } => {
                match knob {
                    crate::config::KnobKind::BufferPoolMb => {
                        if *value < 0.0 {
                            return Err(Error::invalid("buffer_pool_mb must be >= 0"));
                        }
                        self.knobs.buffer_pool_mb = *value;
                    }
                }
                Cost(self.params.knob_change_ms)
            }
        };
        Ok(cost)
    }

    /// Applies a list of actions, summing one-time costs. Stops at the
    /// first failure.
    ///
    /// Failure leaves the successfully applied prefix in place (DDL-batch
    /// semantics); use [`StorageEngine::apply_all_atomic`] when a failed
    /// batch must leave the configuration untouched.
    pub fn apply_all(&mut self, actions: &[ConfigAction]) -> Result<Cost> {
        let mut total = Cost::ZERO;
        for a in actions {
            total += self.apply_action(a)?;
        }
        Ok(total)
    }

    /// The action that undoes `action` given the engine's *current*
    /// state. Errors when the action is not applicable (e.g. dropping an
    /// index that does not exist) — in which case applying it would fail
    /// too.
    pub fn inverse_of(&self, action: &ConfigAction) -> Result<ConfigAction> {
        match action {
            ConfigAction::CreateIndex { target, .. } => {
                Ok(ConfigAction::DropIndex { target: *target })
            }
            ConfigAction::DropIndex { target } => {
                let chunk = self.table(target.table)?.chunk(target.chunk)?;
                let kind = chunk
                    .index(target.column)
                    .map(|idx| idx.kind())
                    .ok_or_else(|| Error::Configuration(format!("no index to drop at {target}")))?;
                Ok(ConfigAction::CreateIndex {
                    target: *target,
                    kind,
                })
            }
            ConfigAction::SetEncoding { target, .. } => {
                let chunk = self.table(target.table)?.chunk(target.chunk)?;
                let prior = chunk.segment(target.column)?.encoding();
                Ok(ConfigAction::SetEncoding {
                    target: *target,
                    kind: prior,
                })
            }
            ConfigAction::SetPlacement { table, chunk, .. } => {
                let prior = self.table(*table)?.chunk(*chunk)?.tier();
                Ok(ConfigAction::SetPlacement {
                    table: *table,
                    chunk: *chunk,
                    tier: prior,
                })
            }
            ConfigAction::SetKnob { knob, .. } => {
                let prior = match knob {
                    crate::config::KnobKind::BufferPoolMb => self.knobs.buffer_pool_mb,
                };
                Ok(ConfigAction::SetKnob {
                    knob: *knob,
                    value: prior,
                })
            }
        }
    }

    /// Applies a list of actions atomically: if any action fails, every
    /// already-applied action of the batch is undone (in reverse order)
    /// before the error is returned, so a failed batch leaves the
    /// configuration exactly as it was.
    ///
    /// The one-time cost of a failed batch is not charged; a batch either
    /// lands completely or not at all. Should the undo itself fail — the
    /// engine mutated underneath us, impossible while the caller holds
    /// the engine write lock — the combined error is reported instead of
    /// panicking.
    pub fn apply_all_atomic(&mut self, actions: &[ConfigAction]) -> Result<Cost> {
        let mut undo: Vec<ConfigAction> = Vec::with_capacity(actions.len());
        let mut total = Cost::ZERO;
        for action in actions {
            let inverse = self.inverse_of(action);
            match (inverse, action) {
                (Ok(inv), _) => match self.apply_action(action) {
                    Ok(cost) => {
                        total += cost;
                        undo.push(inv);
                    }
                    Err(e) => {
                        self.undo_applied(&undo, &e)?;
                        return Err(e);
                    }
                },
                // No inverse means the action itself is invalid; surface
                // its own application error after rolling back the prefix.
                (Err(_), _) => {
                    let e = match self.apply_action(action) {
                        Err(e) => e,
                        // Applied without a known inverse: refuse to
                        // continue half-reversible and report it.
                        Ok(_) => Error::Configuration(format!(
                            "action {action} applied but has no inverse; batch aborted"
                        )),
                    };
                    self.undo_applied(&undo, &e)?;
                    return Err(e);
                }
            }
        }
        Ok(total)
    }

    /// Reverts `undo` (inverses of an applied prefix, in application
    /// order). On secondary failure, wraps both errors.
    fn undo_applied(&mut self, undo: &[ConfigAction], cause: &Error) -> Result<()> {
        for inv in undo.iter().rev() {
            if let Err(e2) = self.apply_action(inv) {
                return Err(Error::Configuration(format!(
                    "rollback of failed batch ({cause}) itself failed: {e2}"
                )));
            }
        }
        Ok(())
    }

    /// Executes a predicate scan (+ optional aggregate) with ground-truth
    /// costing.
    pub fn scan(
        &self,
        table_id: TableId,
        predicates: &[ScanPredicate],
        aggregate: Option<&Aggregate>,
    ) -> Result<ScanOutput> {
        self.scan_grouped(table_id, predicates, aggregate, None)
    }

    /// Like [`StorageEngine::scan`] with an optional GROUP BY column: the
    /// aggregate is computed per distinct value of `group_by` (hash
    /// aggregation, charged per matched row).
    pub fn scan_grouped(
        &self,
        table_id: TableId,
        predicates: &[ScanPredicate],
        aggregate: Option<&Aggregate>,
        group_by: Option<smdb_common::ColumnId>,
    ) -> Result<ScanOutput> {
        self.scan_grouped_with(table_id, predicates, aggregate, group_by, None)
    }

    /// Like [`StorageEngine::scan_grouped`], executed morsel-parallel on
    /// `pool`: the chunk list is split into morsels of `morsel_chunks`
    /// chunks, dispatched to the pool, and the per-chunk partials are
    /// merged in chunk-index order — so every result field except
    /// [`ScanOutput::sim_latency`] and [`ScanOutput::morsels`] is
    /// bit-identical to the sequential scan, for any thread count and
    /// morsel size. Scans that produce fewer than two morsels run
    /// inline (the pool cannot help them).
    pub fn scan_grouped_parallel(
        &self,
        table_id: TableId,
        predicates: &[ScanPredicate],
        aggregate: Option<&Aggregate>,
        group_by: Option<smdb_common::ColumnId>,
        pool: &crate::parallel::ScanPool,
        morsel_chunks: usize,
    ) -> Result<ScanOutput> {
        self.scan_grouped_with(
            table_id,
            predicates,
            aggregate,
            group_by,
            Some((pool, morsel_chunks)),
        )
    }

    /// Validates a scan's shape against `table_id`'s schema.
    fn validate_scan(
        &self,
        table_id: TableId,
        predicates: &[ScanPredicate],
        aggregate: Option<&Aggregate>,
        group_by: Option<smdb_common::ColumnId>,
    ) -> Result<()> {
        let table = self.table(table_id)?;
        if let Some(g) = group_by {
            table.schema().column(g)?;
            if aggregate.is_none() {
                return Err(Error::invalid("GROUP BY requires an aggregate"));
            }
        }
        for p in predicates {
            table.schema().column(p.column)?;
        }
        if let Some(agg) = aggregate {
            if agg.op != AggregateOp::Count {
                table.schema().column(agg.column)?;
            }
        }
        Ok(())
    }

    /// Computes the per-chunk partials of a scan *without* merging them —
    /// the scatter half of a sharded scatter-gather execution. Each
    /// element is one chunk's contribution, in chunk-index order; a
    /// sharded executor collects partials from every shard, orders them
    /// by global chunk index and folds them once with
    /// [`StorageEngine::merge_scan_partials`], which reproduces the exact
    /// combine tree of an unsharded scan — so every result field except
    /// the latency model is bit-identical for any shard count. With
    /// `parallel`, morsels are dispatched to the pool exactly as in
    /// [`StorageEngine::scan_grouped_parallel`]; partial *values* are
    /// independent of the execution mode.
    pub fn scan_partials(
        &self,
        table_id: TableId,
        predicates: &[ScanPredicate],
        aggregate: Option<&Aggregate>,
        group_by: Option<smdb_common::ColumnId>,
        parallel: Option<(&crate::parallel::ScanPool, usize)>,
    ) -> Result<Vec<ChunkPartial>> {
        self.validate_scan(table_id, predicates, aggregate, group_by)?;
        let table = self.table(table_id)?;
        let chunks: Vec<&crate::chunk::Chunk> = table.chunks().map(|(_, c)| c).collect();
        if let Some((pool, morsel_chunks)) = parallel {
            let ranges = crate::parallel::morsel_ranges(chunks.len(), morsel_chunks);
            if pool.threads() > 1 && ranges.len() > 1 {
                let (partials, _) = self
                    .partials_parallel(&chunks, predicates, aggregate, group_by, pool, &ranges)?;
                return Ok(partials);
            }
        }
        let mut positions: Vec<u32> = Vec::new();
        let mut partials = Vec::with_capacity(chunks.len());
        for chunk in &chunks {
            partials.push(self.scan_chunk(
                chunk,
                predicates,
                aggregate,
                group_by,
                &mut positions,
            )?);
        }
        Ok(partials)
    }

    /// Folds partials — the caller's responsibility to order by global
    /// chunk index — into one [`ScanOutput`], using the same combine tree
    /// as every other execution mode. The returned latency equals the
    /// summed work (the inline model); a sharded executor overrides
    /// [`ScanOutput::sim_latency`] / [`ScanOutput::morsels`] with its own
    /// lane model.
    pub fn merge_scan_partials(
        &self,
        partials: Vec<ChunkPartial>,
        aggregate: Option<&Aggregate>,
        group_by: Option<smdb_common::ColumnId>,
    ) -> ScanOutput {
        let mut out = self.merge_partials(partials, aggregate, group_by);
        out.sim_latency = out.sim_cost;
        out.morsels = 0;
        out
    }

    /// Validates the query, picks the execution mode and dispatches.
    fn scan_grouped_with(
        &self,
        table_id: TableId,
        predicates: &[ScanPredicate],
        aggregate: Option<&Aggregate>,
        group_by: Option<smdb_common::ColumnId>,
        parallel: Option<(&crate::parallel::ScanPool, usize)>,
    ) -> Result<ScanOutput> {
        self.validate_scan(table_id, predicates, aggregate, group_by)?;
        let table = self.table(table_id)?;
        let chunks: Vec<&crate::chunk::Chunk> = table.chunks().map(|(_, c)| c).collect();
        if let Some((pool, morsel_chunks)) = parallel {
            let ranges = crate::parallel::morsel_ranges(chunks.len(), morsel_chunks);
            // A single morsel (or a helper-less pool) has no parallelism
            // to exploit — run inline and skip the dispatch overhead.
            if pool.threads() > 1 && ranges.len() > 1 {
                return self
                    .scan_chunks_parallel(&chunks, predicates, aggregate, group_by, pool, &ranges);
            }
        }
        self.scan_chunks_sequential(&chunks, predicates, aggregate, group_by)
    }

    /// Inline execution: per-chunk partials computed on this thread,
    /// merged in chunk order. Latency equals work.
    fn scan_chunks_sequential(
        &self,
        chunks: &[&crate::chunk::Chunk],
        predicates: &[ScanPredicate],
        aggregate: Option<&Aggregate>,
        group_by: Option<smdb_common::ColumnId>,
    ) -> Result<ScanOutput> {
        let mut positions: Vec<u32> = Vec::new();
        let mut partials = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            partials.push(self.scan_chunk(
                chunk,
                predicates,
                aggregate,
                group_by,
                &mut positions,
            )?);
        }
        let mut out = self.merge_partials(partials, aggregate, group_by);
        out.sim_latency = out.sim_cost;
        out.morsels = 0;
        Ok(out)
    }

    /// Morsel-parallel execution: contiguous chunk ranges are dispatched
    /// to the scan pool, each producing its chunks' partials; the
    /// submitting thread merges them in chunk-index order, so the merge
    /// tree — and therefore every float in the result — is identical to
    /// the sequential path's.
    fn scan_chunks_parallel(
        &self,
        chunks: &[&crate::chunk::Chunk],
        predicates: &[ScanPredicate],
        aggregate: Option<&Aggregate>,
        group_by: Option<smdb_common::ColumnId>,
        pool: &crate::parallel::ScanPool,
        ranges: &[(usize, usize)],
    ) -> Result<ScanOutput> {
        let (all, morsel_costs_ms) =
            self.partials_parallel(chunks, predicates, aggregate, group_by, pool, ranges)?;
        let mut out = self.merge_partials(all, aggregate, group_by);
        let lanes = pool.threads().min(ranges.len());
        out.sim_latency = crate::parallel::simulated_latency(
            &morsel_costs_ms,
            lanes,
            self.params.morsel_dispatch_ms,
        );
        out.morsels = ranges.len() as u64;
        Ok(out)
    }

    /// The dispatch half of a morsel-parallel scan: runs every morsel on
    /// the pool and returns the per-chunk partials in chunk-index order
    /// plus each morsel's summed cost (for the lane latency model).
    fn partials_parallel(
        &self,
        chunks: &[&crate::chunk::Chunk],
        predicates: &[ScanPredicate],
        aggregate: Option<&Aggregate>,
        group_by: Option<smdb_common::ColumnId>,
        pool: &crate::parallel::ScanPool,
        ranges: &[(usize, usize)],
    ) -> Result<(Vec<ChunkPartial>, Vec<f64>)> {
        let slots: Vec<parking_lot::Mutex<Option<Result<Vec<ChunkPartial>>>>> = ranges
            .iter()
            .map(|_| parking_lot::Mutex::new(None))
            .collect();
        let clean = pool.run(ranges.len(), |m| {
            let (start, end) = ranges[m];
            let mut positions: Vec<u32> = Vec::new();
            let mut parts = Vec::with_capacity(end - start);
            let mut failed = None;
            for chunk in &chunks[start..end] {
                match self.scan_chunk(chunk, predicates, aggregate, group_by, &mut positions) {
                    Ok(p) => parts.push(p),
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                }
            }
            *slots[m].lock() = Some(match failed {
                None => Ok(parts),
                Some(e) => Err(e),
            });
        });
        if !clean {
            return Err(Error::invalid("a parallel scan morsel panicked"));
        }
        let mut morsel_costs_ms = Vec::with_capacity(ranges.len());
        let mut all = Vec::with_capacity(chunks.len());
        for slot in &slots {
            let morsel = slot
                .lock()
                .take()
                .ok_or_else(|| Error::invalid("a parallel scan morsel produced no output"))??;
            morsel_costs_ms.push(morsel.iter().map(|p| p.cost.ms()).sum::<f64>());
            all.extend(morsel);
        }
        Ok((all, morsel_costs_ms))
    }

    /// Scans one chunk, returning its partial: counters, aggregate state
    /// and the chunk's share of the simulated work. `positions` is
    /// caller-provided scratch (cleared per call) so a morsel reuses one
    /// allocation across its chunks. A partial is a pure function of
    /// (chunk, query, configuration) — which execution mode computed it,
    /// and in which order, cannot matter.
    fn scan_chunk(
        &self,
        chunk: &crate::chunk::Chunk,
        predicates: &[ScanPredicate],
        aggregate: Option<&Aggregate>,
        group_by: Option<smdb_common::ColumnId>,
        positions: &mut Vec<u32>,
    ) -> Result<ChunkPartial> {
        let mut part = ChunkPartial::new(aggregate.map(|a| a.op));
        // Min/max pruning over every predicate column.
        for p in predicates {
            if !chunk.stats(p.column)?.can_match(p) {
                part.pruned = true;
                part.cost += Cost(self.params.prune_check_ms);
                return Ok(part);
            }
        }
        let tier_mult = self.params.effective_tier_multiplier(
            chunk.tier(),
            self.knobs.buffer_pool_mb,
            self.nonhot_bytes,
        );
        part.cost += Cost(self.params.chunk_visit_ms);

        positions.clear();
        let mut remaining: Vec<&ScanPredicate> = predicates.iter().collect();

        // Composite-index fast path: a pair of equality predicates
        // answered by one multi-attribute probe. If the index is gone
        // by lookup time (cannot happen under the engine lock, but
        // this path must never panic mid-serve) we fall through to
        // the generic scan below.
        let composite = composite_pair(chunk, &remaining)
            .and_then(|(i, j)| chunk.index(remaining[i].column).map(|idx| (i, j, idx)));
        if let Some((i, j, idx)) = composite {
            let (first, second) = (remaining[i], remaining[j]);
            idx.probe_composite(&first.value, &second.value, positions);
            part.index_probes += 1;
            part.cost += Cost(
                self.params.index_probe_ms + positions.len() as f64 * self.params.index_match_ms,
            ) * tier_mult;
            // Drop both consumed predicates (higher index first).
            let (hi, lo) = if i > j { (i, j) } else { (j, i) };
            remaining.remove(hi);
            remaining.remove(lo);
            for p in remaining {
                if positions.is_empty() {
                    break;
                }
                let before = positions.len();
                let seg = chunk.segment(p.column)?;
                if self.kernels && crate::kernels::refine(seg, p, positions) {
                    part.kernel_batches += 1;
                } else {
                    seg.refine(p, positions);
                }
                part.cost += Cost(before as f64 * self.params.refine_ms_per_row) * tier_mult;
            }
            part.rows_matched += positions.len() as u64;
            if let Some(agg) = aggregate {
                let agg_cost =
                    self.aggregate_positions(chunk, agg, group_by, positions, &mut part)?;
                part.cost += agg_cost;
            }
            return Ok(part);
        }

        if remaining.is_empty() {
            // Full-chunk selection: one batch emit either way, so the
            // chunk is classified with the kernel path when enabled.
            part.kernel_chunk = self.kernels;
            positions.extend(0..chunk.rows() as u32);
            part.rows_scanned += chunk.rows() as u64;
            let (units, enc) = chunk
                .segment(smdb_common::ColumnId(0))
                .map(|s| (s.scan_units(), s.encoding()))
                .unwrap_or((chunk.rows(), crate::encoding::EncodingKind::Unencoded));
            part.cost += Cost(
                units as f64 * self.params.scan_ms_per_row * self.params.encoding_scan_factor(enc),
            ) * tier_mult;
        } else {
            // Driving predicate: prefer one an index can answer.
            let drive_pos = remaining
                .iter()
                .position(|p| {
                    chunk.index(p.column).is_some_and(|idx| {
                        // Composite indexes cannot drive alone; broad
                        // predicates scan (access-path rule).
                        !matches!(idx.kind(), crate::index::IndexKind::CompositeHash { .. })
                            && idx.kind().supports(p.op)
                            && chunk
                                .stats(p.column)
                                .map(|s| {
                                    s.estimate_selectivity(p)
                                        <= crate::scan::INDEX_SELECTIVITY_THRESHOLD
                                })
                                .unwrap_or(false)
                    })
                })
                .unwrap_or(0);
            let driving = remaining.remove(drive_pos);

            let seg = chunk.segment(driving.column)?;
            match chunk.index(driving.column) {
                // Composite indexes cannot answer a lone predicate
                // (their fast path ran above when both were present).
                Some(idx)
                    if !matches!(idx.kind(), crate::index::IndexKind::CompositeHash { .. })
                        && idx.kind().supports(driving.op) =>
                {
                    let answered = idx.probe(driving, positions);
                    debug_assert!(answered, "single-attribute probe must answer");
                    part.index_probes += 1;
                    part.cost += Cost(
                        self.params.index_probe_ms
                            + positions.len() as f64 * self.params.index_match_ms,
                    ) * tier_mult;
                }
                _ => {
                    if self.kernels && crate::kernels::filter(seg, driving, positions) {
                        part.kernel_chunk = true;
                        part.kernel_batches += 1;
                    } else {
                        seg.filter(driving, positions);
                    }
                    part.rows_scanned += chunk.rows() as u64;
                    part.cost += Cost(
                        seg.scan_units() as f64
                            * self.params.scan_ms_per_row
                            * self.params.encoding_scan_factor(seg.encoding()),
                    ) * tier_mult;
                }
            }

            // Residual predicates refine the position list.
            for p in remaining {
                if positions.is_empty() {
                    break;
                }
                let before = positions.len();
                let seg = chunk.segment(p.column)?;
                if self.kernels && crate::kernels::refine(seg, p, positions) {
                    part.kernel_batches += 1;
                } else {
                    seg.refine(p, positions);
                }
                part.cost += Cost(before as f64 * self.params.refine_ms_per_row) * tier_mult;
            }
        }

        part.rows_matched += positions.len() as u64;
        if let Some(agg) = aggregate {
            let agg_cost = self.aggregate_positions(chunk, agg, group_by, positions, &mut part)?;
            part.cost += agg_cost;
        }
        Ok(part)
    }

    /// Folds per-chunk partials — in chunk-index order — into one
    /// [`ScanOutput`]. This is the *only* combine tree either execution
    /// mode uses, which is the determinism argument: float accumulation
    /// order is fixed by chunk index, never by scheduling.
    fn merge_partials(
        &self,
        partials: Vec<ChunkPartial>,
        aggregate: Option<&Aggregate>,
        group_by: Option<smdb_common::ColumnId>,
    ) -> ScanOutput {
        let mut out = ScanOutput {
            rows_matched: 0,
            agg_value: None,
            groups: None,
            sim_cost: Cost::ZERO,
            sim_latency: Cost::ZERO,
            morsels: 0,
            rows_scanned: 0,
            chunks_pruned: 0,
            chunks_visited: 0,
            index_probes: 0,
            chunks_kernel: 0,
            chunks_scalar: 0,
            kernel_batches: 0,
        };
        let mut agg_state = AggState::new(aggregate.map(|a| a.op));
        let mut group_state: BTreeMap<Value, AggState> = BTreeMap::new();
        for part in partials {
            out.sim_cost += part.cost;
            if part.pruned {
                out.chunks_pruned += 1;
                continue;
            }
            out.chunks_visited += 1;
            out.rows_matched += part.rows_matched;
            out.rows_scanned += part.rows_scanned;
            out.index_probes += part.index_probes;
            out.kernel_batches += part.kernel_batches;
            // Access-path partition of the visited chunks: probe, batch
            // kernel or scalar selection (at most one probe per chunk).
            if part.index_probes == 0 {
                if part.kernel_chunk {
                    out.chunks_kernel += 1;
                } else {
                    out.chunks_scalar += 1;
                }
            }
            agg_state.merge(&part.agg);
            for (key, state) in part.groups {
                group_state
                    .entry(key)
                    .or_insert_with(|| AggState::new(aggregate.map(|a| a.op)))
                    .merge(&state);
            }
        }

        if group_by.is_some() {
            let mut groups: Vec<(Value, f64)> = group_state
                .into_iter()
                .filter_map(|(k, state)| {
                    let count = state.count;
                    state.finish(count).map(|v| (k, v))
                })
                .collect();
            groups.sort_by(|a, b| a.0.cmp(&b.0));
            out.groups = Some(groups);
        } else {
            out.agg_value = agg_state.finish(out.rows_matched);
        }
        out
    }

    /// Accumulates aggregate state for the matched positions of one
    /// chunk, grouped or global, into `part`, and returns the simulated
    /// cost charged. The batched kernels produce bit-identical state to
    /// the scalar loops (see [`crate::kernels`]); the charged cost is a
    /// function of the positions alone, never of the execution strategy.
    fn aggregate_positions(
        &self,
        chunk: &crate::chunk::Chunk,
        agg: &Aggregate,
        group_by: Option<smdb_common::ColumnId>,
        positions: &[u32],
        part: &mut ChunkPartial,
    ) -> Result<Cost> {
        match group_by {
            None => {
                let use_kernel = self.kernels
                    && match part.agg.op {
                        // COUNT touches no segment; the scalar path is
                        // already one counter addition.
                        None | Some(AggregateOp::Count) => false,
                        Some(_) => crate::kernels::covers_accumulate(chunk.segment(agg.column)?),
                    };
                if use_kernel {
                    let seg = chunk.segment(agg.column)?;
                    let st = &mut part.agg;
                    st.count += positions.len() as u64;
                    crate::kernels::accumulate(
                        seg,
                        positions,
                        &mut st.sum,
                        &mut st.min,
                        &mut st.max,
                    );
                    part.kernel_batches += 1;
                } else {
                    part.agg.consume(chunk, agg, positions)?;
                }
                Ok(Cost(positions.len() as f64 * self.params.agg_ms_per_row))
            }
            Some(g) => {
                let group_seg = chunk.segment(g)?;
                let agg_seg = if agg.op == AggregateOp::Count {
                    None
                } else {
                    Some(chunk.segment(agg.column)?)
                };
                let mut batched = false;
                if self.kernels {
                    let mut accs: Vec<(Value, crate::kernels::GroupAcc)> = Vec::new();
                    if crate::kernels::aggregate_grouped(group_seg, agg_seg, positions, &mut accs) {
                        for (key, acc) in accs {
                            part.groups.insert(
                                key,
                                AggState {
                                    op: Some(agg.op),
                                    sum: acc.sum,
                                    count: acc.count,
                                    min: acc.min,
                                    max: acc.max,
                                },
                            );
                        }
                        part.kernel_batches += 1;
                        batched = true;
                    }
                }
                if !batched {
                    for &p in positions {
                        let key = group_seg.value_at(p as usize);
                        let state = part
                            .groups
                            .entry(key)
                            .or_insert_with(|| AggState::new(Some(agg.op)));
                        state.consume(chunk, agg, &[p])?;
                    }
                }
                Ok(Cost(
                    positions.len() as f64
                        * (self.params.agg_ms_per_row + self.params.group_ms_per_row),
                ))
            }
        }
    }

    /// Point-in-time memory report.
    pub fn memory_report(&self) -> MemoryReport {
        let mut report = MemoryReport::default();
        for table in &self.tables {
            report.data_bytes += table.data_bytes();
            report.index_bytes += table.index_bytes();
            for (_, chunk) in table.chunks() {
                *report.per_tier.entry(chunk.tier()).or_insert(0) += chunk.data_bytes();
            }
        }
        report
    }

    fn table_mut(&mut self, id: TableId) -> Result<&mut Table> {
        self.tables
            .get_mut(id.0 as usize)
            .ok_or_else(|| Error::not_found("table", format!("{id}")))
    }

    fn chunk_tier_multiplier(&self, table: TableId, chunk: u32) -> Result<f64> {
        let t = self.table(table)?;
        let c = t.chunk(smdb_common::ChunkId(chunk))?;
        Ok(self.params.effective_tier_multiplier(
            c.tier(),
            self.knobs.buffer_pool_mb,
            self.nonhot_bytes,
        ))
    }

    fn recompute_residency(&mut self) {
        self.nonhot_bytes = self
            .tables
            .iter()
            .flat_map(|t| t.chunks())
            .filter(|(_, c)| c.tier() != Tier::Hot)
            .map(|(_, c)| c.data_bytes())
            .sum();
    }
}

/// Finds a pair of equality predicates `(i, j)` in `remaining` answered
/// by a composite index on predicate `i`'s column with second column
/// equal to predicate `j`'s column.
fn composite_pair(
    chunk: &crate::chunk::Chunk,
    remaining: &[&ScanPredicate],
) -> Option<(usize, usize)> {
    for (i, p) in remaining.iter().enumerate() {
        if !matches!(p.op, crate::scan::PredicateOp::Eq) {
            continue;
        }
        let Some(idx) = chunk.index(p.column) else {
            continue;
        };
        let crate::index::IndexKind::CompositeHash { second } = idx.kind() else {
            continue;
        };
        for (j, q) in remaining.iter().enumerate() {
            if i != j && q.column == second && matches!(q.op, crate::scan::PredicateOp::Eq) {
                // Access-path rule on the combined selectivity.
                let sel = chunk
                    .stats(p.column)
                    .map(|s| s.estimate_selectivity(p))
                    .unwrap_or(1.0)
                    * chunk
                        .stats(q.column)
                        .map(|s| s.estimate_selectivity(q))
                        .unwrap_or(1.0);
                if sel <= crate::scan::INDEX_SELECTIVITY_THRESHOLD {
                    return Some((i, j));
                }
            }
        }
    }
    None
}

/// One chunk's contribution to a scan. Partials are produced by
/// `StorageEngine::scan_chunk` (on whichever thread ran the morsel) and
/// folded by `StorageEngine::merge_partials` in chunk-index order. The
/// type is opaque outside the engine: a sharded executor obtains
/// partials via [`StorageEngine::scan_partials`], orders them by global
/// chunk index and hands them back to
/// [`StorageEngine::merge_scan_partials`] — it never looks inside, so
/// the combine tree stays the engine's alone.
pub struct ChunkPartial {
    /// The chunk was eliminated by min/max statistics; only
    /// `cost` (the prune check) is meaningful.
    pruned: bool,
    rows_matched: u64,
    rows_scanned: u64,
    index_probes: u64,
    /// The driving selection ran on a batch kernel (never set when an
    /// index probe answered the driving predicate).
    kernel_chunk: bool,
    /// Batch-kernel invocations while scanning this chunk.
    kernel_batches: u64,
    /// The chunk's share of the simulated work.
    cost: Cost,
    /// Ungrouped aggregate state over this chunk's matches.
    agg: AggState,
    /// Per-group aggregate state over this chunk's matches. Ordered so
    /// every per-chunk merge and the final group output are independent
    /// of hash-seed and worker interleaving.
    groups: BTreeMap<Value, AggState>,
}

impl ChunkPartial {
    /// The chunk's share of the simulated work (prune check only when
    /// the chunk was eliminated by statistics). A sharded executor sums
    /// these per shard to drive its lane latency model.
    pub fn cost(&self) -> Cost {
        self.cost
    }

    /// Whether min/max statistics eliminated the chunk.
    pub fn pruned(&self) -> bool {
        self.pruned
    }

    fn new(op: Option<AggregateOp>) -> Self {
        ChunkPartial {
            pruned: false,
            rows_matched: 0,
            rows_scanned: 0,
            index_probes: 0,
            kernel_chunk: false,
            kernel_batches: 0,
            cost: Cost::ZERO,
            agg: AggState::new(op),
            groups: BTreeMap::new(),
        }
    }
}

/// Streaming aggregate state across chunks.
struct AggState {
    op: Option<AggregateOp>,
    sum: f64,
    count: u64,
    min: Option<f64>,
    max: Option<f64>,
}

impl AggState {
    fn new(op: Option<AggregateOp>) -> Self {
        AggState {
            op,
            sum: 0.0,
            count: 0,
            min: None,
            max: None,
        }
    }

    fn consume(
        &mut self,
        chunk: &crate::chunk::Chunk,
        agg: &Aggregate,
        positions: &[u32],
    ) -> Result<()> {
        let Some(op) = self.op else {
            return Ok(());
        };
        self.count += positions.len() as u64;
        if op == AggregateOp::Count {
            return Ok(());
        }
        let seg = chunk.segment(agg.column)?;
        for &p in positions {
            let v = seg.value_at(p as usize);
            let Some(x) = numeric(&v) else {
                continue;
            };
            self.sum += x;
            self.min = Some(self.min.map_or(x, |m| m.min(x)));
            self.max = Some(self.max.map_or(x, |m| m.max(x)));
        }
        Ok(())
    }

    /// Folds another partial state into this one. Sum accumulation order
    /// is the caller's responsibility — [`StorageEngine::merge_partials`]
    /// always merges in chunk-index order, which is what keeps grouped
    /// floats bit-identical across execution modes.
    fn merge(&mut self, other: &AggState) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, None) => a,
            (None, b) => b,
        };
    }

    fn finish(&self, matched: u64) -> Option<f64> {
        let op = self.op?;
        match op {
            AggregateOp::Count => Some(matched as f64),
            AggregateOp::Sum => Some(self.sum),
            AggregateOp::Avg => {
                if self.count == 0 {
                    None
                } else {
                    Some(self.sum / self.count as f64)
                }
            }
            AggregateOp::Min => self.min,
            AggregateOp::Max => self.max,
        }
    }
}

fn numeric(v: &Value) -> Option<f64> {
    v.as_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::EncodingKind;
    use crate::index::IndexKind;
    use crate::scan::PredicateOp;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::{ColumnValues, DataType};
    use smdb_common::{ChunkId, ColumnId};

    fn engine_with_table() -> (StorageEngine, TableId) {
        let schema = Schema::new(vec![
            ColumnDef::new("k", DataType::Int),
            ColumnDef::new("v", DataType::Float),
        ])
        .unwrap();
        let n = 1000i64;
        let table = Table::from_columns(
            "t",
            schema,
            vec![
                ColumnValues::Int((0..n).map(|i| i % 100).collect()),
                ColumnValues::Float((0..n).map(|i| i as f64).collect()),
            ],
            250,
        )
        .unwrap();
        let mut engine = StorageEngine::default();
        let id = engine.create_table(table).unwrap();
        (engine, id)
    }

    #[test]
    fn scan_counts_matches() {
        let (engine, t) = engine_with_table();
        let out = engine
            .scan(t, &[ScanPredicate::eq(ColumnId(0), 7i64)], None)
            .unwrap();
        assert_eq!(out.rows_matched, 10);
        assert_eq!(out.chunks_visited, 4);
        assert!(out.sim_cost.ms() > 0.0);
    }

    #[test]
    fn aggregates_compute() {
        let (engine, t) = engine_with_table();
        let preds = [ScanPredicate::cmp(ColumnId(0), PredicateOp::Lt, 10i64)];
        let count = engine
            .scan(t, &preds, Some(&Aggregate::count()))
            .unwrap()
            .agg_value
            .unwrap();
        assert_eq!(count, 100.0);
        let sum = engine
            .scan(
                t,
                &[ScanPredicate::eq(ColumnId(0), 0i64)],
                Some(&Aggregate::new(AggregateOp::Sum, ColumnId(1))),
            )
            .unwrap()
            .agg_value
            .unwrap();
        // Rows where k == 0 are v = 0, 100, ..., 900.
        assert_eq!(sum, (0..10).map(|i| (i * 100) as f64).sum::<f64>());
        let avg = engine
            .scan(t, &[], Some(&Aggregate::new(AggregateOp::Avg, ColumnId(1))))
            .unwrap()
            .agg_value
            .unwrap();
        assert!((avg - 499.5).abs() < 1e-9);
    }

    #[test]
    fn index_reduces_cost_and_is_used() {
        let (mut engine, t) = engine_with_table();
        let pred = [ScanPredicate::eq(ColumnId(0), 7i64)];
        let before = engine.scan(t, &pred, None).unwrap();
        for chunk in 0..4 {
            engine
                .apply_action(&ConfigAction::CreateIndex {
                    target: ChunkColumnRef::new(t.0, 0, chunk),
                    kind: IndexKind::Hash,
                })
                .unwrap();
        }
        let after = engine.scan(t, &pred, None).unwrap();
        assert_eq!(after.rows_matched, before.rows_matched);
        assert_eq!(after.index_probes, 4);
        assert!(after.sim_cost < before.sim_cost);
    }

    #[test]
    fn hash_index_not_used_for_ranges() {
        let (mut engine, t) = engine_with_table();
        engine
            .apply_action(&ConfigAction::CreateIndex {
                target: ChunkColumnRef::new(t.0, 0, 0),
                kind: IndexKind::Hash,
            })
            .unwrap();
        let out = engine
            .scan(
                t,
                &[ScanPredicate::cmp(ColumnId(0), PredicateOp::Lt, 5i64)],
                None,
            )
            .unwrap();
        assert_eq!(out.index_probes, 0);
    }

    #[test]
    fn pruning_skips_chunks() {
        let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        // Sorted data: each chunk covers a distinct range.
        let table = Table::from_columns(
            "sorted",
            schema,
            vec![ColumnValues::Int((0..1000).collect())],
            250,
        )
        .unwrap();
        let mut engine = StorageEngine::default();
        let t = engine.create_table(table).unwrap();
        let out = engine
            .scan(t, &[ScanPredicate::eq(ColumnId(0), 10i64)], None)
            .unwrap();
        assert_eq!(out.rows_matched, 1);
        assert_eq!(out.chunks_pruned, 3);
        assert_eq!(out.chunks_visited, 1);
    }

    #[test]
    fn placement_penalises_scans_and_buffer_hides_it() {
        let (mut engine, t) = engine_with_table();
        engine
            .apply_action(&ConfigAction::SetKnob {
                knob: crate::config::KnobKind::BufferPoolMb,
                value: 0.0,
            })
            .unwrap();
        let pred = [ScanPredicate::eq(ColumnId(0), 7i64)];
        let hot = engine.scan(t, &pred, None).unwrap().sim_cost;
        for chunk in 0..4 {
            engine
                .apply_action(&ConfigAction::SetPlacement {
                    table: t,
                    chunk: ChunkId(chunk),
                    tier: Tier::Cold,
                })
                .unwrap();
        }
        let cold = engine.scan(t, &pred, None).unwrap().sim_cost;
        assert!(cold.ms() > hot.ms() * 5.0, "cold {cold} vs hot {hot}");
        // A big buffer pool hides the penalty again.
        engine
            .apply_action(&ConfigAction::SetKnob {
                knob: crate::config::KnobKind::BufferPoolMb,
                value: 1024.0,
            })
            .unwrap();
        let buffered = engine.scan(t, &pred, None).unwrap().sim_cost;
        assert!((buffered.ms() - hot.ms()).abs() / hot.ms() < 0.05);
    }

    #[test]
    fn encoding_changes_scan_cost() {
        let (mut engine, t) = engine_with_table();
        let pred = [ScanPredicate::eq(ColumnId(0), 7i64)];
        let raw = engine.scan(t, &pred, None).unwrap().sim_cost;
        for chunk in 0..4 {
            engine
                .apply_action(&ConfigAction::SetEncoding {
                    target: ChunkColumnRef::new(t.0, 0, chunk),
                    kind: EncodingKind::Dictionary,
                })
                .unwrap();
        }
        let dict = engine.scan(t, &pred, None).unwrap().sim_cost;
        assert!(dict < raw);
    }

    #[test]
    fn current_config_reflects_state() {
        let (mut engine, t) = engine_with_table();
        assert_eq!(engine.current_config(), ConfigInstance::default());
        let target = ChunkColumnRef::new(t.0, 0, 1);
        engine
            .apply_action(&ConfigAction::CreateIndex {
                target,
                kind: IndexKind::BTree,
            })
            .unwrap();
        engine
            .apply_action(&ConfigAction::SetEncoding {
                target,
                kind: EncodingKind::RunLength,
            })
            .unwrap();
        let config = engine.current_config();
        assert_eq!(config.index_of(target), Some(IndexKind::BTree));
        assert_eq!(config.encoding_of(target), EncodingKind::RunLength);
    }

    #[test]
    fn apply_reports_one_time_costs() {
        let (mut engine, t) = engine_with_table();
        let build = engine
            .apply_action(&ConfigAction::CreateIndex {
                target: ChunkColumnRef::new(t.0, 0, 0),
                kind: IndexKind::Hash,
            })
            .unwrap();
        assert!(build.ms() > 0.0);
        let drop = engine
            .apply_action(&ConfigAction::DropIndex {
                target: ChunkColumnRef::new(t.0, 0, 0),
            })
            .unwrap();
        assert!(drop.ms() < build.ms());
        // Building over dictionary data is cheaper (Section III dependency).
        engine
            .apply_action(&ConfigAction::SetEncoding {
                target: ChunkColumnRef::new(t.0, 0, 0),
                kind: EncodingKind::Dictionary,
            })
            .unwrap();
        let build_dict = engine
            .apply_action(&ConfigAction::CreateIndex {
                target: ChunkColumnRef::new(t.0, 0, 0),
                kind: IndexKind::Hash,
            })
            .unwrap();
        assert!(build_dict.ms() < build.ms());
    }

    #[test]
    fn apply_all_atomic_rolls_back_failed_batch() {
        let (mut engine, t) = engine_with_table();
        engine
            .apply_action(&ConfigAction::SetEncoding {
                target: ChunkColumnRef::new(t.0, 0, 1),
                kind: EncodingKind::Dictionary,
            })
            .unwrap();
        let before = engine.current_config();
        // Batch: valid index + valid encoding + invalid placement.
        let batch = vec![
            ConfigAction::CreateIndex {
                target: ChunkColumnRef::new(t.0, 0, 0),
                kind: IndexKind::Hash,
            },
            ConfigAction::SetEncoding {
                target: ChunkColumnRef::new(t.0, 0, 1),
                kind: EncodingKind::RunLength,
            },
            ConfigAction::SetPlacement {
                table: t,
                chunk: ChunkId(0),
                tier: crate::placement::Tier::Hot, // already hot: fails
            },
        ];
        assert!(engine.apply_all_atomic(&batch).is_err());
        // The whole batch was undone, including the re-encoding.
        assert_eq!(engine.current_config(), before);
        // A valid batch lands completely and reports a positive cost.
        let ok = engine.apply_all_atomic(&batch[..2]).unwrap();
        assert!(ok.ms() > 0.0);
        assert_eq!(engine.current_config().indexes.len(), 1);
    }

    #[test]
    fn inverse_of_round_trips_every_action_kind() {
        let (mut engine, t) = engine_with_table();
        let actions = vec![
            ConfigAction::CreateIndex {
                target: ChunkColumnRef::new(t.0, 0, 0),
                kind: IndexKind::BTree,
            },
            ConfigAction::SetEncoding {
                target: ChunkColumnRef::new(t.0, 0, 1),
                kind: EncodingKind::Dictionary,
            },
            ConfigAction::SetPlacement {
                table: t,
                chunk: ChunkId(2),
                tier: crate::placement::Tier::Warm,
            },
            ConfigAction::SetKnob {
                knob: crate::config::KnobKind::BufferPoolMb,
                value: 256.0,
            },
        ];
        let before = engine.current_config();
        let mut inverses = Vec::new();
        for a in &actions {
            inverses.push(engine.inverse_of(a).unwrap());
            engine.apply_action(a).unwrap();
        }
        // Dropping the created index inverts to recreating it with kind.
        let drop = ConfigAction::DropIndex {
            target: ChunkColumnRef::new(t.0, 0, 0),
        };
        assert_eq!(
            engine.inverse_of(&drop).unwrap(),
            ConfigAction::CreateIndex {
                target: ChunkColumnRef::new(t.0, 0, 0),
                kind: IndexKind::BTree,
            }
        );
        for inv in inverses.iter().rev() {
            engine.apply_action(inv).unwrap();
        }
        assert_eq!(engine.current_config(), before);
    }

    #[test]
    fn redundant_placement_rejected() {
        let (mut engine, t) = engine_with_table();
        let err = engine.apply_action(&ConfigAction::SetPlacement {
            table: t,
            chunk: ChunkId(0),
            tier: Tier::Hot,
        });
        assert!(err.is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let (mut engine, _) = engine_with_table();
        let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        let t = Table::from_columns("t", schema, vec![ColumnValues::Int(vec![])], 10).unwrap();
        assert!(engine.create_table(t).is_err());
    }

    #[test]
    fn memory_report_tracks_tiers() {
        let (mut engine, t) = engine_with_table();
        let before = engine.memory_report();
        assert_eq!(before.nonhot_bytes(), 0);
        engine
            .apply_action(&ConfigAction::SetPlacement {
                table: t,
                chunk: ChunkId(0),
                tier: Tier::Warm,
            })
            .unwrap();
        let after = engine.memory_report();
        assert!(after.nonhot_bytes() > 0);
        assert_eq!(after.total_bytes(), before.total_bytes());
    }

    #[test]
    fn unknown_predicate_column_errors() {
        let (engine, t) = engine_with_table();
        assert!(engine
            .scan(t, &[ScanPredicate::eq(ColumnId(9), 1i64)], None)
            .is_err());
    }
}

#[cfg(test)]
mod composite_tests {
    use super::*;
    use crate::index::IndexKind;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::{ColumnValues, DataType};
    use smdb_common::{ChunkColumnRef, ColumnId};

    fn engine() -> (StorageEngine, TableId) {
        let schema = Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("b", DataType::Int),
        ])
        .unwrap();
        let table = Table::from_columns(
            "t",
            schema,
            vec![
                ColumnValues::Int((0..2000).map(|i| i % 40).collect()),
                ColumnValues::Int((0..2000).map(|i| (i * 7) % 50).collect()),
            ],
            500,
        )
        .unwrap();
        let mut e = StorageEngine::default();
        let t = e.create_table(table).unwrap();
        (e, t)
    }

    fn two_eq() -> Vec<ScanPredicate> {
        vec![
            ScanPredicate::eq(smdb_common::ColumnId(0), 7i64),
            ScanPredicate::eq(smdb_common::ColumnId(1), 49i64),
        ]
    }

    #[test]
    fn composite_probe_matches_scan_and_is_cheaper() {
        let (mut e, t) = engine();
        let reference = e.scan(t, &two_eq(), None).unwrap();
        for chunk in 0..4u32 {
            e.apply_action(&ConfigAction::CreateIndex {
                target: ChunkColumnRef::new(t.0, 0, chunk),
                kind: IndexKind::CompositeHash {
                    second: ColumnId(1),
                },
            })
            .unwrap();
        }
        let probed = e.scan(t, &two_eq(), None).unwrap();
        assert_eq!(probed.rows_matched, reference.rows_matched);
        assert_eq!(probed.index_probes, 4);
        assert!(probed.sim_cost < reference.sim_cost);

        // The composite also beats the single-column index: the latter
        // still pays refinement over all 50 leading matches per chunk.
        let mut single = engine().0;
        for chunk in 0..4u32 {
            single
                .apply_action(&ConfigAction::CreateIndex {
                    target: ChunkColumnRef::new(t.0, 0, chunk),
                    kind: IndexKind::Hash,
                })
                .unwrap();
        }
        let single_out = single.scan(t, &two_eq(), None).unwrap();
        assert_eq!(single_out.rows_matched, reference.rows_matched);
        assert!(probed.sim_cost < single_out.sim_cost);
    }

    #[test]
    fn composite_unused_for_single_predicate() {
        let (mut e, t) = engine();
        e.apply_action(&ConfigAction::CreateIndex {
            target: ChunkColumnRef::new(t.0, 0, 0),
            kind: IndexKind::CompositeHash {
                second: ColumnId(1),
            },
        })
        .unwrap();
        // Only the leading predicate present: must fall back to scanning.
        let out = e
            .scan(
                t,
                &[ScanPredicate::eq(smdb_common::ColumnId(0), 7i64)],
                None,
            )
            .unwrap();
        assert_eq!(out.index_probes, 0);
    }

    #[test]
    fn composite_roundtrips_through_config() {
        let (mut e, t) = engine();
        let kind = IndexKind::CompositeHash {
            second: ColumnId(1),
        };
        e.apply_action(&ConfigAction::CreateIndex {
            target: ChunkColumnRef::new(t.0, 0, 0),
            kind,
        })
        .unwrap();
        let config = e.current_config();
        assert_eq!(config.index_of(ChunkColumnRef::new(t.0, 0, 0)), Some(kind));
        // Diff/apply round-trip preserves the composite kind.
        let actions = ConfigInstance::default().diff(&config);
        let mut replayed = ConfigInstance::default();
        for a in &actions {
            replayed.apply(a);
        }
        assert_eq!(replayed, config);
    }

    #[test]
    fn composite_on_same_column_rejected() {
        let (mut e, t) = engine();
        let err = e.apply_action(&ConfigAction::CreateIndex {
            target: ChunkColumnRef::new(t.0, 0, 0),
            kind: IndexKind::CompositeHash {
                second: ColumnId(0),
            },
        });
        assert!(err.is_err());
    }
}

#[cfg(test)]
mod group_by_tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::{ColumnValues, DataType};
    use smdb_common::ColumnId;

    fn engine() -> (StorageEngine, TableId) {
        let schema = Schema::new(vec![
            ColumnDef::new("flag", DataType::Int),
            ColumnDef::new("price", DataType::Float),
        ])
        .unwrap();
        let table = Table::from_columns(
            "t",
            schema,
            vec![
                ColumnValues::Int((0..1200).map(|i| i % 3).collect()),
                ColumnValues::Float((0..1200).map(|i| i as f64).collect()),
            ],
            400,
        )
        .unwrap();
        let mut e = StorageEngine::default();
        let t = e.create_table(table).unwrap();
        (e, t)
    }

    #[test]
    fn grouped_sum_partitions_the_global_sum() {
        let (e, t) = engine();
        let agg = Aggregate::new(AggregateOp::Sum, ColumnId(1));
        let global = e.scan(t, &[], Some(&agg)).unwrap();
        let grouped = e
            .scan_grouped(t, &[], Some(&agg), Some(ColumnId(0)))
            .unwrap();
        let groups = grouped.groups.as_ref().unwrap();
        assert_eq!(groups.len(), 3);
        let total: f64 = groups.iter().map(|(_, v)| v).sum();
        assert!((total - global.agg_value.unwrap()).abs() < 1e-6);
        // Sorted by group key.
        assert_eq!(groups[0].0, Value::Int(0));
        assert_eq!(groups[2].0, Value::Int(2));
        // Grouping costs more than the plain aggregate.
        assert!(grouped.sim_cost > global.sim_cost);
    }

    #[test]
    fn grouped_count_and_predicates() {
        let (e, t) = engine();
        let out = e
            .scan_grouped(
                t,
                &[ScanPredicate::cmp(
                    ColumnId(1),
                    crate::scan::PredicateOp::Lt,
                    600.0,
                )],
                Some(&Aggregate::count()),
                Some(ColumnId(0)),
            )
            .unwrap();
        let groups = out.groups.unwrap();
        assert_eq!(groups.len(), 3);
        assert!((groups.iter().map(|(_, v)| v).sum::<f64>() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn group_by_without_aggregate_rejected() {
        let (e, t) = engine();
        assert!(e.scan_grouped(t, &[], None, Some(ColumnId(0))).is_err());
        assert!(e
            .scan_grouped(t, &[], Some(&Aggregate::count()), Some(ColumnId(9)))
            .is_err());
    }

    #[test]
    fn empty_match_produces_empty_groups() {
        let (e, t) = engine();
        let out = e
            .scan_grouped(
                t,
                &[ScanPredicate::eq(ColumnId(0), 99i64)],
                Some(&Aggregate::count()),
                Some(ColumnId(0)),
            )
            .unwrap();
        assert_eq!(out.groups.unwrap().len(), 0);
    }
}
