//! Per-segment statistics.
//!
//! Statistics serve two masters: the engine prunes chunks by min/max, and
//! the *cost estimators* (crate `smdb-cost`) derive selectivity estimates
//! from them — they are the only information about the data that
//! estimators are allowed to see.

use std::collections::HashSet;

use crate::scan::ScanPredicate;
use crate::value::{ColumnValues, Value};

/// Statistics for one segment (one column of one chunk).
#[derive(Debug, Clone)]
pub struct SegmentStats {
    pub rows: u64,
    pub min: Option<Value>,
    pub max: Option<Value>,
    pub distinct: u64,
    /// Fraction of rows whose value equals the most frequent value; a
    /// cheap skew indicator.
    pub top_frequency: f64,
    /// Number of equal-value runs in storage order (the column's
    /// "clustering factor"): `rows` for fully shuffled data, `distinct`
    /// for perfectly clustered data. Drives run-length estimates.
    pub runs: u64,
}

impl SegmentStats {
    /// Computes statistics by one pass over the raw values.
    pub fn compute(values: &ColumnValues) -> SegmentStats {
        let rows = values.len() as u64;
        if rows == 0 {
            return SegmentStats {
                rows: 0,
                min: None,
                max: None,
                distinct: 0,
                top_frequency: 0.0,
                runs: 0,
            };
        }
        let mut min = values.value_at(0);
        let mut max = values.value_at(0);
        let mut counts: std::collections::HashMap<Value, u64> = std::collections::HashMap::new();
        let mut runs = 1u64;
        let mut prev = values.value_at(0);
        for row in 0..values.len() {
            let v = values.value_at(row);
            if row > 0 && v != prev {
                runs += 1;
            }
            prev = v.clone();
            if v < min {
                min = v.clone();
            }
            if v > max {
                max = v.clone();
            }
            *counts.entry(v).or_insert(0) += 1;
        }
        let distinct = counts.len() as u64;
        let top = counts.values().copied().max().unwrap_or(0);
        SegmentStats {
            rows,
            min: Some(min),
            max: Some(max),
            distinct,
            top_frequency: top as f64 / rows as f64,
            runs,
        }
    }

    /// Estimated selectivity (matching fraction) of `pred` over this
    /// segment, using the uniform-within-range assumption. Returns a value
    /// in `[0, 1]`.
    pub fn estimate_selectivity(&self, pred: &ScanPredicate) -> f64 {
        let (Some(min), Some(max)) = (&self.min, &self.max) else {
            return 0.0;
        };
        if !pred.overlaps_range(min, max) {
            return 0.0;
        }
        use crate::scan::PredicateOp::*;
        match pred.op {
            Eq => {
                if self.distinct == 0 {
                    0.0
                } else {
                    1.0 / self.distinct as f64
                }
            }
            _ => {
                // Numeric range fraction when both ends are numeric;
                // otherwise a fixed guess.
                let (lo, hi) = (min.as_f64(), max.as_f64());
                let (Some(lo), Some(hi)) = (lo, hi) else {
                    return 0.33;
                };
                let width = (hi - lo).max(f64::MIN_POSITIVE);
                let frac = match pred.op {
                    Lt | Le => {
                        let v = pred.value.as_f64().unwrap_or(hi);
                        (v - lo) / width
                    }
                    Gt | Ge => {
                        let v = pred.value.as_f64().unwrap_or(lo);
                        (hi - v) / width
                    }
                    Between => {
                        let a = pred.value.as_f64().unwrap_or(lo);
                        let b = pred.upper.as_ref().and_then(|u| u.as_f64()).unwrap_or(hi);
                        (b.min(hi) - a.max(lo)) / width
                    }
                    Eq => unreachable!(),
                };
                frac.clamp(0.0, 1.0)
            }
        }
    }

    /// Whether a predicate can be satisfied by *any* row of the segment.
    pub fn can_match(&self, pred: &ScanPredicate) -> bool {
        match (&self.min, &self.max) {
            (Some(min), Some(max)) => pred.overlaps_range(min, max),
            _ => false,
        }
    }
}

/// Merges distinct-count style statistics across segments of a column
/// (upper bound: sum of per-segment distinct counts, capped by rows).
pub fn merged_distinct(stats: &[&SegmentStats]) -> u64 {
    let sum: u64 = stats.iter().map(|s| s.distinct).sum();
    let rows: u64 = stats.iter().map(|s| s.rows).sum();
    sum.min(rows)
}

/// Distinct values helper used by tests and generators.
pub fn distinct_values(values: &ColumnValues) -> usize {
    let mut set = HashSet::new();
    for row in 0..values.len() {
        set.insert(values.value_at(row));
    }
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::ColumnId;

    #[test]
    fn compute_basic_stats() {
        let s = SegmentStats::compute(&ColumnValues::Int(vec![5, 1, 5, 9, 5]));
        assert_eq!(s.rows, 5);
        assert_eq!(s.min, Some(Value::Int(1)));
        assert_eq!(s.max, Some(Value::Int(9)));
        assert_eq!(s.distinct, 3);
        assert!((s.top_frequency - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_stats() {
        let s = SegmentStats::compute(&ColumnValues::Int(vec![]));
        assert_eq!(s.rows, 0);
        assert!(s.min.is_none());
        assert_eq!(
            s.estimate_selectivity(&ScanPredicate::eq(ColumnId(0), 1i64)),
            0.0
        );
        assert!(!s.can_match(&ScanPredicate::eq(ColumnId(0), 1i64)));
    }

    #[test]
    fn eq_selectivity_uses_distinct() {
        let s = SegmentStats::compute(&ColumnValues::Int((0..100).collect()));
        let sel = s.estimate_selectivity(&ScanPredicate::eq(ColumnId(0), 42i64));
        assert!((sel - 0.01).abs() < 1e-12);
    }

    #[test]
    fn range_selectivity_is_proportional() {
        let s = SegmentStats::compute(&ColumnValues::Int((0..=100).collect()));
        let sel = s.estimate_selectivity(&ScanPredicate::between(ColumnId(0), 0i64, 50i64));
        assert!((sel - 0.5).abs() < 0.02);
        let sel = s.estimate_selectivity(&ScanPredicate::cmp(
            ColumnId(0),
            crate::scan::PredicateOp::Ge,
            90i64,
        ));
        assert!((sel - 0.1).abs() < 0.02);
    }

    #[test]
    fn non_overlapping_predicate_zero() {
        let s = SegmentStats::compute(&ColumnValues::Int(vec![10, 20]));
        assert_eq!(
            s.estimate_selectivity(&ScanPredicate::eq(ColumnId(0), 99i64)),
            0.0
        );
        assert!(!s.can_match(&ScanPredicate::eq(ColumnId(0), 99i64)));
    }

    #[test]
    fn merged_distinct_caps_at_rows() {
        let a = SegmentStats::compute(&ColumnValues::Int(vec![1, 2]));
        let b = SegmentStats::compute(&ColumnValues::Int(vec![1, 2]));
        assert_eq!(merged_distinct(&[&a, &b]), 4);
        let c = SegmentStats::compute(&ColumnValues::Int(vec![1]));
        assert_eq!(merged_distinct(&[&c]), 1);
    }

    #[test]
    fn distinct_values_helper() {
        assert_eq!(distinct_values(&ColumnValues::Int(vec![1, 1, 2, 3, 3])), 3);
    }
}
