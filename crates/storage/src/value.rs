//! Typed values and column data.
//!
//! The store supports three data types — 64-bit integers, 64-bit floats
//! and UTF-8 text — which is enough to express the analytic workloads the
//! experiments use while keeping encodings simple. [`Value`] implements a
//! *total* order (floats via `total_cmp`) so that values can key B-tree
//! indexes and sort dictionaries.

use std::cmp::Ordering;
use std::fmt;

/// The data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Float,
    Text,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "int"),
            DataType::Float => write!(f, "float"),
            DataType::Text => write!(f, "text"),
        }
    }
}

/// A single typed value.
#[derive(Debug, Clone)]
pub enum Value {
    Int(i64),
    Float(f64),
    Text(String),
}

impl Value {
    /// The data type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Text(_) => DataType::Text,
        }
    }

    /// Interprets the value as `f64` where a numeric reading exists.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Text(_) => None,
        }
    }

    /// Interprets the value as `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Approximate heap + inline size in bytes, for memory accounting.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Text(s) => 24 + s.len(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: values of the same type compare naturally (floats via
    /// `total_cmp`); across types the order is Int < Float < Text, except
    /// that Int and Float compare numerically when both are finite, which
    /// lets mixed numeric predicates behave intuitively.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(_), _) => Ordering::Greater,
            (_, Text(_)) => Ordering::Less,
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            // Hash Int and Float through a common numeric image so that
            // `Int(2) == Float(2.0)` implies equal hashes.
            Value::Int(i) => (*i as f64).to_bits().hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Text(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

/// Column-major raw data for one column of one chunk (pre-encoding).
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnValues {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Text(Vec<String>),
}

impl ColumnValues {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnValues::Int(v) => v.len(),
            ColumnValues::Float(v) => v.len(),
            ColumnValues::Text(v) => v.len(),
        }
    }

    /// Whether the column holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The data type of the column.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnValues::Int(_) => DataType::Int,
            ColumnValues::Float(_) => DataType::Float,
            ColumnValues::Text(_) => DataType::Text,
        }
    }

    /// The value at `row` (panics if out of bounds).
    pub fn value_at(&self, row: usize) -> Value {
        match self {
            ColumnValues::Int(v) => Value::Int(v[row]),
            ColumnValues::Float(v) => Value::Float(v[row]),
            ColumnValues::Text(v) => Value::Text(v[row].clone()),
        }
    }

    /// Creates an empty column of the given type.
    pub fn empty(dt: DataType) -> ColumnValues {
        match dt {
            DataType::Int => ColumnValues::Int(Vec::new()),
            DataType::Float => ColumnValues::Float(Vec::new()),
            DataType::Text => ColumnValues::Text(Vec::new()),
        }
    }

    /// Appends a value; returns `false` on type mismatch.
    pub fn push(&mut self, v: Value) -> bool {
        match (self, v) {
            (ColumnValues::Int(col), Value::Int(x)) => {
                col.push(x);
                true
            }
            (ColumnValues::Float(col), Value::Float(x)) => {
                col.push(x);
                true
            }
            (ColumnValues::Text(col), Value::Text(x)) => {
                col.push(x);
                true
            }
            _ => false,
        }
    }

    /// Raw memory footprint of the unencoded representation.
    pub fn raw_bytes(&self) -> usize {
        match self {
            ColumnValues::Int(v) => v.len() * 8,
            ColumnValues::Float(v) => v.len() * 8,
            ColumnValues::Text(v) => v.iter().map(|s| 24 + s.len()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Float(1.5) < Value::Float(2.5));
        assert!(Value::Text("a".into()) < Value::Text("b".into()));
    }

    #[test]
    fn mixed_numeric_order() {
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(0.5) < Value::Int(1));
        assert_eq!(Value::Int(2), Value::Float(2.0));
    }

    #[test]
    fn text_sorts_after_numbers() {
        assert!(Value::Int(i64::MAX) < Value::Text("".into()));
        assert!(Value::Float(f64::INFINITY) < Value::Text("".into()));
    }

    #[test]
    fn hash_consistent_with_eq_for_numerics() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Value::Int(2));
        assert!(s.contains(&Value::Float(2.0)));
    }

    #[test]
    fn nan_is_ordered_totally() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Float(1.0) < nan);
    }

    #[test]
    fn column_values_roundtrip() {
        let mut col = ColumnValues::empty(DataType::Int);
        assert!(col.push(Value::Int(7)));
        assert!(!col.push(Value::Text("x".into())));
        assert_eq!(col.len(), 1);
        assert_eq!(col.value_at(0), Value::Int(7));
        assert_eq!(col.raw_bytes(), 8);
    }

    #[test]
    fn value_sizes() {
        assert_eq!(Value::Int(0).size_bytes(), 8);
        assert_eq!(Value::Text("abcd".into()).size_bytes(), 28);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.0f64), Value::Float(2.0));
        assert_eq!(Value::from("x"), Value::Text("x".into()));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Text("x".into()).as_f64(), None);
        assert_eq!(Value::Int(3).as_i64(), Some(3));
        assert_eq!(Value::Float(3.0).as_i64(), None);
    }
}
