//! Tables: a schema plus a sequence of chunks.

use smdb_common::{ChunkId, ColumnId, Error, Result};

use crate::chunk::Chunk;
use crate::schema::Schema;
use crate::value::{ColumnValues, Value};

/// An in-memory chunked table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    chunks: Vec<Chunk>,
    target_chunk_rows: usize,
}

impl Table {
    /// Builds a table by splitting full-column data into chunks of
    /// `target_chunk_rows` rows.
    pub fn from_columns(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<ColumnValues>,
        target_chunk_rows: usize,
    ) -> Result<Table> {
        if target_chunk_rows == 0 {
            return Err(Error::invalid("target_chunk_rows must be > 0"));
        }
        if columns.len() != schema.arity() {
            return Err(Error::invalid(format!(
                "expected {} columns, got {}",
                schema.arity(),
                columns.len()
            )));
        }
        for ((_, def), col) in schema.iter().zip(&columns) {
            if def.data_type != col.data_type() {
                return Err(Error::invalid(format!(
                    "column '{}' type mismatch: schema {} vs data {}",
                    def.name,
                    def.data_type,
                    col.data_type()
                )));
            }
        }
        let rows = columns.first().map_or(0, |c| c.len());
        if columns.iter().any(|c| c.len() != rows) {
            return Err(Error::invalid("column lengths differ"));
        }
        let mut chunks = Vec::new();
        let mut start = 0usize;
        while start < rows {
            let end = (start + target_chunk_rows).min(rows);
            let chunk_cols: Vec<ColumnValues> = columns
                .iter()
                .map(|c| slice_column(c, start, end))
                .collect();
            chunks.push(Chunk::from_columns(chunk_cols)?);
            start = end;
        }
        Ok(Table {
            name: name.into(),
            schema,
            chunks,
            target_chunk_rows,
        })
    }

    /// Builds a table from row-major data.
    pub fn from_rows(
        name: impl Into<String>,
        schema: Schema,
        rows: Vec<Vec<Value>>,
        target_chunk_rows: usize,
    ) -> Result<Table> {
        let mut columns: Vec<ColumnValues> = schema
            .columns()
            .iter()
            .map(|c| ColumnValues::empty(c.data_type))
            .collect();
        for (r, row) in rows.into_iter().enumerate() {
            if row.len() != schema.arity() {
                return Err(Error::invalid(format!("row {r} has wrong arity")));
            }
            for (c, v) in row.into_iter().enumerate() {
                if !columns[c].push(v) {
                    return Err(Error::invalid(format!("row {r} column {c} type mismatch")));
                }
            }
        }
        Table::from_columns(name, schema, columns, target_chunk_rows)
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total number of rows.
    pub fn rows(&self) -> usize {
        self.chunks.iter().map(|c| c.rows()).sum()
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The configured chunk size.
    pub fn target_chunk_rows(&self) -> usize {
        self.target_chunk_rows
    }

    /// Immutable access to chunk `id`.
    pub fn chunk(&self, id: ChunkId) -> Result<&Chunk> {
        self.chunks
            .get(id.0 as usize)
            .ok_or_else(|| Error::not_found("chunk", format!("{id}")))
    }

    /// Mutable access to chunk `id`.
    pub fn chunk_mut(&mut self, id: ChunkId) -> Result<&mut Chunk> {
        self.chunks
            .get_mut(id.0 as usize)
            .ok_or_else(|| Error::not_found("chunk", format!("{id}")))
    }

    /// Iterator over `(ChunkId, &Chunk)`.
    pub fn chunks(&self) -> impl Iterator<Item = (ChunkId, &Chunk)> {
        self.chunks
            .iter()
            .enumerate()
            .map(|(i, c)| (ChunkId(i as u32), c))
    }

    /// Resolves a column name.
    pub fn column_id(&self, name: &str) -> Result<ColumnId> {
        self.schema.column_id(name)
    }

    /// Table data bytes across all chunks (excluding indexes).
    pub fn data_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.data_bytes()).sum()
    }

    /// Index bytes across all chunks.
    pub fn index_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.index_bytes()).sum()
    }
}

fn slice_column(col: &ColumnValues, start: usize, end: usize) -> ColumnValues {
    match col {
        ColumnValues::Int(v) => ColumnValues::Int(v[start..end].to_vec()),
        ColumnValues::Float(v) => ColumnValues::Float(v[start..end].to_vec()),
        ColumnValues::Text(v) => ColumnValues::Text(v[start..end].to_vec()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("b", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn chunking_splits_rows() {
        let t = Table::from_columns(
            "t",
            schema(),
            vec![
                ColumnValues::Int((0..10).collect()),
                ColumnValues::Float((0..10).map(|i| i as f64).collect()),
            ],
            4,
        )
        .unwrap();
        assert_eq!(t.rows(), 10);
        assert_eq!(t.chunk_count(), 3);
        assert_eq!(t.chunk(ChunkId(0)).unwrap().rows(), 4);
        assert_eq!(t.chunk(ChunkId(2)).unwrap().rows(), 2);
    }

    #[test]
    fn from_rows_equivalent() {
        let rows = vec![
            vec![Value::Int(1), Value::Float(0.1)],
            vec![Value::Int(2), Value::Float(0.2)],
        ];
        let t = Table::from_rows("t", schema(), rows, 10).unwrap();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.chunk_count(), 1);
    }

    #[test]
    fn schema_validation() {
        // Arity mismatch.
        assert!(Table::from_columns("t", schema(), vec![ColumnValues::Int(vec![])], 4).is_err());
        // Type mismatch.
        assert!(Table::from_columns(
            "t",
            schema(),
            vec![
                ColumnValues::Float(vec![1.0]),
                ColumnValues::Float(vec![1.0])
            ],
            4
        )
        .is_err());
        // Zero chunk size.
        assert!(Table::from_columns(
            "t",
            schema(),
            vec![ColumnValues::Int(vec![1]), ColumnValues::Float(vec![1.0])],
            0
        )
        .is_err());
        // Length mismatch.
        assert!(Table::from_columns(
            "t",
            schema(),
            vec![
                ColumnValues::Int(vec![1, 2]),
                ColumnValues::Float(vec![1.0])
            ],
            4
        )
        .is_err());
    }

    #[test]
    fn row_arity_validation() {
        let rows = vec![vec![Value::Int(1)]];
        assert!(Table::from_rows("t", schema(), rows, 4).is_err());
    }

    #[test]
    fn chunk_iteration_order() {
        let t = Table::from_columns(
            "t",
            schema(),
            vec![
                ColumnValues::Int((0..6).collect()),
                ColumnValues::Float((0..6).map(|i| i as f64).collect()),
            ],
            3,
        )
        .unwrap();
        let ids: Vec<u32> = t.chunks().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
