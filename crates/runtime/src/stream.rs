//! Deterministic phased workload stream.
//!
//! The soak fixture: an `events` table spread over many chunks and a
//! bucket-by-bucket query plan alternating *heavy* segments (high volume
//! — utilization saturates, the executor defers) and *light* segments
//! (low volume — the low-utilization windows in which deferred actions
//! drain). The phase swings are also what makes the Organizer fire: the
//! moving-average forecast lags each volume shift by design.
//!
//! Everything is generated from one seed, up front, on one thread — the
//! serving runtime only partitions the pre-built plan, so the workload
//! is identical regardless of worker count.

use std::sync::Arc;

use rand::RngExt;
use smdb_common::rng::{derive_seed, seeded_rng};
use smdb_common::{ColumnId, Result, TableId};
use smdb_query::{Database, Query};
use smdb_storage::value::ColumnValues;
use smdb_storage::{
    Aggregate, AggregateOp, ColumnDef, DataType, ScanPredicate, Schema, StorageEngine, Table,
};

/// Serving intensity of one bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// High query volume: utilization saturates, reconfiguration defers.
    Heavy,
    /// Low query volume: the low-utilization window tuning waits for.
    Light,
}

/// One bucket's worth of pre-generated queries.
#[derive(Debug, Clone)]
pub struct BucketPlan {
    pub phase: Phase,
    pub queries: Vec<Query>,
}

/// Shape of the generated stream.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Workload seed; every query literal derives from it.
    pub seed: u64,
    /// Total buckets to generate.
    pub buckets: usize,
    /// Queries per heavy bucket.
    pub heavy_queries: usize,
    /// Queries per light bucket.
    pub light_queries: usize,
    /// Consecutive heavy buckets per cycle.
    pub heavy_len: usize,
    /// Consecutive light buckets per cycle.
    pub light_len: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            seed: 42,
            buckets: 24,
            heavy_queries: 160,
            light_queries: 16,
            heavy_len: 5,
            light_len: 3,
        }
    }
}

/// Number of distinct `k` values in the events table.
pub const K_CARDINALITY: i64 = 100;
/// Number of distinct `grp` values.
pub const GRP_CARDINALITY: i64 = 8;

/// Builds the `events` database: columns `k` (skewless point-lookup
/// key), `v` (float payload), `grp` (low-cardinality group key) and `ts`
/// (sorted, so range scans prune chunks), spread over `chunks` chunks of
/// `chunk_rows` rows. Returns the database and the table id.
pub fn events_database(chunks: usize, chunk_rows: usize) -> Result<(Arc<Database>, TableId)> {
    let rows = (chunks * chunk_rows) as i64;
    let schema = Schema::new(vec![
        ColumnDef::new("k", DataType::Int),
        ColumnDef::new("v", DataType::Float),
        ColumnDef::new("grp", DataType::Int),
        ColumnDef::new("ts", DataType::Int),
    ])?;
    let table = Table::from_columns(
        "events",
        schema,
        vec![
            ColumnValues::Int((0..rows).map(|i| i % K_CARDINALITY).collect()),
            ColumnValues::Float((0..rows).map(|i| ((i % 997) as f64) * 0.5).collect()),
            ColumnValues::Int((0..rows).map(|i| i % GRP_CARDINALITY).collect()),
            ColumnValues::Int((0..rows).collect()),
        ],
        chunk_rows,
    )?;
    let mut engine = StorageEngine::default();
    let table_id = engine.create_table(table)?;
    Ok((Database::new(engine), table_id))
}

/// Generates the full bucket plan for `config`.
pub fn generate(table: TableId, rows: i64, config: &StreamConfig) -> Vec<BucketPlan> {
    let mut rng = seeded_rng(derive_seed(config.seed, 0xB0C4));
    let cycle = (config.heavy_len + config.light_len).max(1);
    (0..config.buckets)
        .map(|b| {
            let phase = if b % cycle < config.heavy_len {
                Phase::Heavy
            } else {
                Phase::Light
            };
            let n = match phase {
                Phase::Heavy => config.heavy_queries,
                Phase::Light => config.light_queries,
            };
            let queries = (0..n).map(|_| one_query(table, rows, &mut rng)).collect();
            BucketPlan { phase, queries }
        })
        .collect()
}

/// Draws one query from the template mix: point-sum on `k` (dominant,
/// index-tunable), grouped sum by `grp`, and a pruned range-sum on `ts`.
fn one_query(table: TableId, rows: i64, rng: &mut rand::rngs::StdRng) -> Query {
    let pick: f64 = rng.random();
    if pick < 0.70 {
        Query::new(
            table,
            "events",
            vec![ScanPredicate::eq(
                ColumnId(0),
                rng.random_range(0..K_CARDINALITY),
            )],
            Some(Aggregate::new(AggregateOp::Sum, ColumnId(1))),
            "point_k_sum_v",
        )
    } else if pick < 0.85 {
        Query::new(
            table,
            "events",
            vec![ScanPredicate::eq(
                ColumnId(0),
                rng.random_range(0..K_CARDINALITY),
            )],
            Some(Aggregate::new(AggregateOp::Sum, ColumnId(1))),
            "grouped_k_by_grp",
        )
        .with_group_by(ColumnId(2))
    } else {
        let lo = rng.random_range(0..rows.max(2) - 1);
        let hi = (lo + rows / 64).min(rows - 1);
        Query::new(
            table,
            "events",
            vec![ScanPredicate::between(ColumnId(3), lo, hi)],
            Some(Aggregate::new(AggregateOp::Sum, ColumnId(1))),
            "range_ts_sum_v",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = StreamConfig::default();
        let a = generate(TableId(0), 24_000, &config);
        let b = generate(TableId(0), 24_000, &config);
        assert_eq!(a.len(), config.buckets);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.phase, y.phase);
            assert_eq!(x.queries, y.queries);
        }
        let mut c2 = config.clone();
        c2.seed = 43;
        let c = generate(TableId(0), 24_000, &c2);
        assert_ne!(a[0].queries, c[0].queries, "different seed, different plan");
    }

    #[test]
    fn phases_cycle_heavy_then_light() {
        let config = StreamConfig {
            buckets: 10,
            heavy_len: 3,
            light_len: 2,
            ..StreamConfig::default()
        };
        let plan = generate(TableId(0), 24_000, &config);
        let phases: Vec<Phase> = plan.iter().map(|b| b.phase).collect();
        assert_eq!(
            phases,
            vec![
                Phase::Heavy,
                Phase::Heavy,
                Phase::Heavy,
                Phase::Light,
                Phase::Light,
                Phase::Heavy,
                Phase::Heavy,
                Phase::Heavy,
                Phase::Light,
                Phase::Light,
            ]
        );
        assert_eq!(plan[0].queries.len(), config.heavy_queries);
        assert_eq!(plan[3].queries.len(), config.light_queries);
    }

    #[test]
    fn events_database_has_the_declared_shape() {
        let (db, table) = events_database(12, 2_000).unwrap();
        let engine = db.engine();
        let t = engine.table(table).unwrap();
        assert_eq!(t.chunk_count(), 12);
        assert_eq!(t.rows(), 24_000);
        // Every generated query answers without error.
        drop(engine);
        for bucket in generate(table, 24_000, &StreamConfig::default())
            .iter()
            .take(2)
        {
            for q in &bucket.queries {
                db.run_query(q).unwrap();
            }
        }
    }
}
