//! The multi-tenant sharded serving runtime.
//!
//! Serves a Zipf-skewed multi-tenant stream against a
//! [`ShardedDatabase`] while **every shard runs its own tuning loop**
//! off shard-local KPI snapshots, and a **global budget arbiter** (the
//! Organizer role of paper §II) re-splits one index-memory budget
//! across the shard drivers at every bucket boundary:
//!
//! * workers partition each bucket's queries round-robin; answers are
//!   verified against expectations captured before any tuning, and the
//!   order-independent result digest is accumulated per worker;
//! * at the bucket barrier the control thread closes every shard's KPI
//!   bucket (draining that shard's scan counters atomically via
//!   [`Database::take_scan_stats`]), lets each shard driver decide and
//!   drain a budgeted action slice, then runs the arbiter — which
//!   retargets per-shard `index_memory_bytes` constraints and records a
//!   `budget_rebalanced` trail event on the global recorder;
//! * per-tenant plan caches and latency buckets feed the per-tenant
//!   p95 / noisy-neighbor metrics of the multi-tenant soak report.
//!
//! Per-shard decision trails (shard-stamped flight recorders) and the
//! global arbiter trail merge into one smdb-trail/v2 document.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use smdb_common::json::Json;
use smdb_common::{Cost, Error, Result};
use smdb_core::{ConstraintSet, Driver, FeatureKind, OrganizerConfig, TuningState};
use smdb_obs::{span, FlightRecorder};
use smdb_query::{result_hash, ExpectedResult, PlanCache};
use smdb_shard::{
    Assignment, BudgetArbiter, MultiTenantConfig, ShardSpec, ShardedDatabase, TenantQuery,
    TenantStream,
};

/// Multi-tenant soak parameters.
#[derive(Debug, Clone)]
pub struct MtSoakConfig {
    /// Shard count (each shard gets its own engine + driver).
    pub shards: usize,
    /// Chunk→shard assignment (range keeps tenant locality).
    pub assignment: Assignment,
    /// Fixture and traffic parameters (tenants, skew, seed, …).
    pub tenants: MultiTenantConfig,
    /// Reader threads serving each bucket.
    pub workers: usize,
    /// KPI buckets to serve.
    pub buckets: usize,
    /// Queries per heavy bucket (light buckets serve an eighth).
    pub queries_per_bucket: usize,
    /// Heavy buckets per phase cycle.
    pub heavy_len: usize,
    /// Light buckets per phase cycle.
    pub light_len: usize,
    /// Global index-memory budget the arbiter splits across shards.
    pub budget_bytes: u64,
    /// Minimum share every shard keeps (clamped by the arbiter).
    pub budget_floor_bytes: u64,
    /// Per-shard KPI bucket capacity (ms of work at 100 % utilization).
    pub bucket_capacity: Cost,
    /// Maximum actions drained per shard per bucket barrier.
    pub slice_budget: usize,
    /// Per-shard scan-pool threads (≤ 1 scans inline).
    pub scan_threads: usize,
    /// Chunks per morsel for pool dispatch.
    pub morsel_chunks: usize,
    /// Per-recorder flight-recorder capacity.
    pub trail_capacity: usize,
    /// Per-tenant plan-cache capacity.
    pub tenant_plan_cache: usize,
}

impl Default for MtSoakConfig {
    fn default() -> Self {
        MtSoakConfig {
            shards: 4,
            assignment: Assignment::RangeChunks,
            tenants: MultiTenantConfig::default(),
            workers: 2,
            buckets: 10,
            queries_per_bucket: 12_000,
            heavy_len: 3,
            light_len: 2,
            budget_bytes: 512 * 1024,
            budget_floor_bytes: 16 * 1024,
            bucket_capacity: Cost(2_000.0),
            slice_budget: 8,
            scan_threads: 2,
            morsel_chunks: smdb_storage::parallel::DEFAULT_MORSEL_CHUNKS,
            trail_capacity: 512,
            tenant_plan_cache: 4,
        }
    }
}

/// Per-tenant serving summary.
#[derive(Debug, Clone, Default)]
pub struct TenantStats {
    /// Queries this tenant issued.
    pub queries: u64,
    /// p95 of the tenant's simulated latencies, ms.
    pub p95_ms: f64,
}

/// Outcome of one multi-tenant soak.
#[derive(Debug)]
pub struct MtSoakOutcome {
    /// Queries served.
    pub queries: u64,
    /// Engine errors (expected 0).
    pub errors: u64,
    /// Answers contradicting the pre-tuning expectations (expected 0).
    pub wrong_results: u64,
    /// Order-independent digest of all answers.
    pub result_digest: u64,
    /// Queries answered by one routed shard.
    pub routed: u64,
    /// Queries answered by scatter-gather.
    pub scattered: u64,
    /// Wall-clock seconds spent serving (capture excluded).
    pub wall_seconds: f64,
    /// Aggregate throughput over the serving phase, queries/second.
    pub sustained_qps: f64,
    /// Per-tenant stats (tenant id → summary), tenants with traffic.
    pub tenant_stats: BTreeMap<i64, TenantStats>,
    /// Final tuning state per shard, shard order.
    pub shard_tuning: Vec<TuningState>,
    /// Shards whose driver applied at least one action.
    pub shards_tuned: usize,
    /// Whether configured index bytes stayed ≤ budget at every bucket.
    pub budget_ok_every_bucket: bool,
    /// Largest configured index-byte total observed at a barrier.
    pub max_used_bytes: u64,
    /// The arbitrated total budget.
    pub budget_bytes: u64,
    /// Morsels dispatched across all shards (scan-pool traffic).
    pub morsels: u64,
    /// The merged smdb-trail/v2 document (global + per-shard trails).
    pub trail: Json,
}

impl MtSoakOutcome {
    /// Mean over tenants (with ≥ `min_queries` queries) of per-tenant
    /// p95 latency, ms.
    pub fn mean_tenant_p95_ms(&self, min_queries: u64) -> f64 {
        let eligible: Vec<f64> = self
            .tenant_stats
            .values()
            .filter(|t| t.queries >= min_queries)
            .map(|t| t.p95_ms)
            .collect();
        if eligible.is_empty() {
            return 0.0;
        }
        eligible.iter().sum::<f64>() / eligible.len() as f64
    }
}

/// The sharded serving runtime: one database-per-shard, one
/// driver-per-shard, one global budget arbiter.
pub struct ShardedRuntime {
    db: Arc<ShardedDatabase>,
    drivers: Vec<Arc<Driver>>,
    arbiter: BudgetArbiter,
    global_recorder: Arc<FlightRecorder>,
    config: MtSoakConfig,
}

impl ShardedRuntime {
    /// Builds the sharded fixture and wires a driver per shard: local
    /// indexing/compression tuners, shard-stamped flight recorders, and
    /// an even initial budget split the arbiter will re-target.
    pub fn new(config: MtSoakConfig) -> Result<ShardedRuntime> {
        let spec = ShardSpec {
            shards: config.shards,
            assignment: config.assignment,
        };
        let db = Arc::new(smdb_shard::build_sharded(&config.tenants, &spec)?);
        if config.scan_threads > 1 {
            for shard in db.shards() {
                shard.set_scan_pool(
                    Some(smdb_storage::ScanPool::new(config.scan_threads)),
                    config.morsel_chunks,
                );
            }
        }
        let initial_share = config.budget_bytes / config.shards.max(1) as u64;
        let drivers: Vec<Arc<Driver>> = db
            .shards()
            .iter()
            .enumerate()
            .map(|(s, shard)| {
                Arc::new(
                    Driver::builder(Arc::clone(shard))
                        .features(vec![FeatureKind::Indexing, FeatureKind::Compression])
                        .organizer(OrganizerConfig {
                            cost_delta_threshold: 0.25,
                            min_interval: 2,
                            require_low_utilization: false,
                        })
                        .constraints(ConstraintSet {
                            index_memory_bytes: Some(initial_share as i64),
                            ..ConstraintSet::none()
                        })
                        .kpi_bucket_capacity(config.bucket_capacity)
                        .flight_recorder(Arc::new(FlightRecorder::with_shard(
                            config.trail_capacity,
                            s as u64,
                        )))
                        .build(),
                )
            })
            .collect();
        let arbiter = BudgetArbiter::new(config.budget_bytes, config.budget_floor_bytes);
        Ok(ShardedRuntime {
            db,
            drivers,
            arbiter,
            global_recorder: Arc::new(FlightRecorder::new(config.trail_capacity)),
            config,
        })
    }

    /// The sharded database being served.
    pub fn database(&self) -> &Arc<ShardedDatabase> {
        &self.db
    }

    /// The per-shard drivers, shard order.
    pub fn drivers(&self) -> &[Arc<Driver>] {
        &self.drivers
    }

    /// Pre-generates the whole soak plan: `buckets` buckets of Zipfian
    /// tenant traffic with a heavy/light phase cycle.
    pub fn plan(&self) -> Vec<Vec<TenantQuery>> {
        let mut stream = TenantStream::new(&self.config.tenants);
        let cycle = (self.config.heavy_len + self.config.light_len).max(1);
        (0..self.config.buckets)
            .map(|b| {
                let heavy = b % cycle < self.config.heavy_len;
                let count = if heavy {
                    self.config.queries_per_bucket
                } else {
                    (self.config.queries_per_bucket / 8).max(1)
                };
                (0..count).map(|_| stream.next_query()).collect()
            })
            .collect()
    }

    /// Serves `plan`, tuning each shard locally under the global budget.
    pub fn run(&self, plan: &[Vec<TenantQuery>]) -> Result<MtSoakOutcome> {
        // Ground truth before any tuning: every unique query instance's
        // answer, captured through the same sharded path that serves it.
        let mut expected: HashMap<u64, ExpectedResult> = HashMap::new();
        for tq in plan.iter().flatten() {
            let fp = tq.query.instance_fingerprint();
            if !expected.contains_key(&fp) {
                let out = self.db.run_query(&tq.query)?.output;
                expected.insert(fp, ExpectedResult::of(&out));
            }
        }
        let expected = Arc::new(expected);
        // Capture warmed every shard's plan cache; reset the clocks so
        // serving starts from a clean slate (capture is not traffic).
        for shard in self.db.shards() {
            shard.plan_cache().clear();
            shard.take_scan_stats();
        }
        // Routed/scattered counts should describe the serving phase, not
        // the capture pass that just warmed them.
        let (routed_before, scattered_before) = self.db.routing_counts();

        let tenant_caches: Vec<Mutex<PlanCache>> = (0..self.config.tenants.tenants)
            .map(|_| Mutex::new(PlanCache::new(self.config.tenant_plan_cache)))
            .collect();
        let mut tenant_lats: BTreeMap<i64, Vec<f64>> = BTreeMap::new();
        let mut tenant_counts: BTreeMap<i64, u64> = BTreeMap::new();

        let mut queries = 0u64;
        let mut errors = 0u64;
        let mut wrong_results = 0u64;
        let mut digest = 0u64;
        let mut morsels = 0u64;
        let mut budget_ok = true;
        let mut max_used = 0u64;

        let started = Instant::now();
        for (b, bucket) in plan.iter().enumerate() {
            let _span = span!("sharded", "bucket", { bucket: b, queries: bucket.len() });
            let worker_outputs = self.serve_bucket(bucket, &expected, &tenant_caches)?;
            for wo in worker_outputs {
                queries += wo.queries;
                errors += wo.errors;
                wrong_results += wo.wrong;
                digest = digest.wrapping_add(wo.digest);
                for (tenant, lat) in wo.tenant_lats {
                    tenant_lats.entry(tenant).or_default().push(lat);
                    *tenant_counts.entry(tenant).or_default() += 1;
                }
            }
            // Bucket barrier: close every shard's bucket off its local
            // KPI window, let its driver decide, drain a slice, then
            // re-arbitrate the global budget.
            let mut busy = Vec::with_capacity(self.drivers.len());
            for (driver, shard) in self.drivers.iter().zip(self.db.shards()) {
                let stats = shard.take_scan_stats();
                morsels += stats.morsels;
                let report = driver.close_bucket();
                busy.push(report.bucket_cost.ms());
                let tick = driver.tick();
                driver.maybe_tune_deferred(&tick)?;
                if !driver.organizer().is_paused() && driver.pending_actions() > 0 {
                    if let Err(cause) =
                        driver.drain_pending_slice_at(&tick, self.config.slice_budget)
                    {
                        driver.rollback_to_last_good(&cause.to_string())?;
                        driver.organizer().pause();
                    }
                }
            }
            let outcome =
                self.arbiter
                    .rebalance(b as u64, &self.drivers, &busy, &self.global_recorder);
            budget_ok &= outcome.within_budget;
            max_used = max_used.max(outcome.used_bytes);
        }
        let wall_seconds = started.elapsed().as_secs_f64();

        // Settle: drain anything still queued so the run ends stable.
        for driver in &self.drivers {
            let mut ticks = 0;
            while driver.pending_actions() > 0 && ticks < 32 {
                driver.close_bucket();
                driver.organizer().resume();
                let tick = driver.tick();
                if driver
                    .drain_pending_slice_at(&tick, self.config.slice_budget)
                    .is_err()
                {
                    driver.rollback_to_last_good("settle drain failed")?;
                    break;
                }
                ticks += 1;
            }
        }

        let tenant_stats: BTreeMap<i64, TenantStats> = tenant_lats
            .into_iter()
            .map(|(tenant, mut lats)| {
                lats.sort_by(f64::total_cmp);
                let idx = ((lats.len() as f64 * 0.95).ceil() as usize).min(lats.len()) - 1;
                let queries = tenant_counts.get(&tenant).copied().unwrap_or(0);
                (
                    tenant,
                    TenantStats {
                        queries,
                        p95_ms: lats[idx],
                    },
                )
            })
            .collect();

        let shard_tuning: Vec<TuningState> =
            self.drivers.iter().map(|d| d.tuning_state()).collect();
        let shards_tuned = shard_tuning
            .iter()
            .filter(|t| t.actions_applied > 0)
            .count();
        let (routed_now, scattered_now) = self.db.routing_counts();
        let (routed, scattered) = (routed_now - routed_before, scattered_now - scattered_before);
        let mut recorders: Vec<&FlightRecorder> = vec![self.global_recorder.as_ref()];
        recorders.extend(self.drivers.iter().map(|d| d.flight_recorder().as_ref()));
        Ok(MtSoakOutcome {
            queries,
            errors,
            wrong_results,
            result_digest: digest,
            routed,
            scattered,
            wall_seconds,
            sustained_qps: if wall_seconds > 0.0 {
                queries as f64 / wall_seconds
            } else {
                0.0
            },
            tenant_stats,
            shard_tuning,
            shards_tuned,
            budget_ok_every_bucket: budget_ok,
            max_used_bytes: max_used,
            budget_bytes: self.arbiter.total_bytes(),
            morsels,
            trail: FlightRecorder::merged_json(&recorders),
        })
    }

    fn serve_bucket(
        &self,
        bucket: &[TenantQuery],
        expected: &Arc<HashMap<u64, ExpectedResult>>,
        tenant_caches: &[Mutex<PlanCache>],
    ) -> Result<Vec<WorkerOutput>> {
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(usize::MAX);
        let workers = self.config.workers.max(1).min(host);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let db = Arc::clone(&self.db);
                    let expected = Arc::clone(expected);
                    scope.spawn(move || {
                        let mut out = WorkerOutput::default();
                        for tq in bucket.iter().skip(w).step_by(workers) {
                            let shard = db.route(&tq.query);
                            match db.run_query(&tq.query) {
                                Ok(r) => {
                                    out.queries += 1;
                                    out.digest =
                                        out.digest.wrapping_add(result_hash(&tq.query, &r.output));
                                    if let Some(e) = expected.get(&tq.query.instance_fingerprint())
                                    {
                                        if !e.accepts(&r.output) {
                                            out.wrong += 1;
                                        }
                                    }
                                    let lat = r.output.sim_latency;
                                    match shard {
                                        Some(s) => {
                                            self.drivers[s].record_scan(lat, r.output.morsels)
                                        }
                                        None => {
                                            // A scatter touched every
                                            // candidate shard; each
                                            // shard's KPI window sees
                                            // the query it served.
                                            for d in &self.drivers {
                                                d.record_scan(lat, r.output.morsels);
                                            }
                                        }
                                    }
                                    if let Some(t) = tq.tenant {
                                        out.tenant_lats.push((t, lat.ms()));
                                        if let Some(cache) = tenant_caches.get(t as usize) {
                                            cache.lock().record(
                                                &tq.query,
                                                r.output.sim_cost,
                                                self.db.shards()[shard.unwrap_or(0)].now(),
                                            );
                                        }
                                    }
                                }
                                Err(_) => out.errors += 1,
                            }
                        }
                        out
                    })
                })
                .collect();
            let mut outputs = Vec::with_capacity(workers);
            for handle in handles {
                outputs.push(
                    handle
                        .join()
                        .map_err(|_| Error::invalid("sharded worker panicked"))?,
                );
            }
            Ok(outputs)
        })
    }
}

#[derive(Debug, Default)]
struct WorkerOutput {
    queries: u64,
    errors: u64,
    wrong: u64,
    digest: u64,
    tenant_lats: Vec<(i64, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(shards: usize, seed: u64) -> MtSoakConfig {
        MtSoakConfig {
            shards,
            tenants: MultiTenantConfig {
                tenants: 120,
                rows_per_tenant: 20,
                chunk_rows: 200,
                seed,
                ..MultiTenantConfig::default()
            },
            workers: 2,
            buckets: 6,
            queries_per_bucket: 800,
            budget_bytes: 128 * 1024,
            budget_floor_bytes: 8 * 1024,
            ..MtSoakConfig::default()
        }
    }

    #[test]
    fn mt_soak_serves_routes_and_tunes_within_budget() {
        let runtime = ShardedRuntime::new(small_config(4, 7)).expect("builds");
        let plan = runtime.plan();
        let outcome = runtime.run(&plan).expect("runs");
        let planned: usize = plan.iter().map(Vec::len).sum();
        assert_eq!(outcome.queries as usize, planned);
        assert_eq!(outcome.errors, 0);
        assert_eq!(outcome.wrong_results, 0);
        assert!(outcome.routed > 0, "range partitioning routes");
        assert!(outcome.scattered > 0, "global queries scatter");
        assert!(outcome.budget_ok_every_bucket);
        assert!(outcome.max_used_bytes <= outcome.budget_bytes);
        assert!(!outcome.tenant_stats.is_empty());
        let trail_events = outcome
            .trail
            .get("events")
            .and_then(Json::as_array)
            .expect("merged trail")
            .len();
        assert!(trail_events > 0, "trail recorded");
        assert_eq!(
            outcome.trail.get("schema").and_then(Json::as_str),
            Some("smdb-trail/v2")
        );
    }

    #[test]
    fn mt_digest_is_shard_count_invariant() {
        let one = ShardedRuntime::new(small_config(1, 11)).expect("builds");
        let four = ShardedRuntime::new(small_config(4, 11)).expect("builds");
        let plan = one.plan();
        let a = one.run(&plan).expect("runs");
        let b = four.run(&plan).expect("runs");
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.result_digest, b.result_digest, "digest invariant");
        assert_eq!(a.wrong_results + b.wrong_results, 0);
    }

    #[test]
    fn mt_digest_is_worker_count_invariant() {
        let mut cfg = small_config(2, 13);
        cfg.workers = 1;
        let one = ShardedRuntime::new(cfg.clone()).expect("builds");
        cfg.workers = 4;
        let four = ShardedRuntime::new(cfg).expect("builds");
        let plan = one.plan();
        let a = one.run(&plan).expect("runs");
        let b = four.run(&plan).expect("runs");
        assert_eq!(a.result_digest, b.result_digest);
    }
}
