//! # smdb-runtime — the online serving runtime
//!
//! Everything below the [`core`](smdb_core) layer is a *library*: you
//! hand the driver a workload snapshot and it tunes. This crate closes
//! the loop the paper actually describes — a database **serving live
//! traffic while managing itself**:
//!
//! * [`stream`] pre-generates a deterministic, phased query stream
//!   (heavy bursts that saturate utilization, light valleys that open
//!   low-utilization windows);
//! * [`Runtime`] serves that stream with a pool of reader threads while
//!   a background tuning thread reacts to live KPI signals
//!   (utilization, tail latency, memory), drains deferred
//!   reconfiguration actions in budgeted slices, and
//! * [`fault`] injects apply failures mid-batch so the rollback path —
//!   restore the last good [`smdb_core::ConfigStorage`] instance, pause
//!   tuning, keep serving — is exercised, not just designed.
//!
//! The contract under all of it: reconfiguration must never change
//! query results. Every served answer is checked against a
//! [`smdb_query::ResultOracle`] captured before tuning starts, and the
//! merged result digest is identical for any worker count.

pub mod fault;
pub mod recover;
pub mod runtime;
pub mod sharded;
pub mod stream;

pub use fault::{FaultInjectingExecutor, FaultPlan};
pub use recover::{recover_and_resume, recover_runtime, RecoverOutcome};
pub use runtime::{KillSpec, Runtime, RuntimeConfig, SoakOutcome, TunerReport};
pub use sharded::{MtSoakConfig, MtSoakOutcome, ShardedRuntime, TenantStats};
pub use stream::{events_database, generate, BucketPlan, Phase, StreamConfig};
