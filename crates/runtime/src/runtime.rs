//! The online serving runtime.
//!
//! [`Runtime::run`] serves a pre-generated [`BucketPlan`] stream with a
//! pool of reader threads while a background tuning thread drives the
//! self-management loop:
//!
//! * **workers** partition each bucket's queries round-robin and serve
//!   them through [`Session`]s that verify every answer against a
//!   [`ResultOracle`] — reconfiguration must never change results;
//! * the **control thread** closes a KPI bucket after each served
//!   bucket, applies any actions the tuning thread queued (a budgeted
//!   drain at the bucket *barrier*, never mid-bucket), and hands the
//!   tuning thread a [`TuningTick`] — a consistent snapshot of the
//!   boundary's KPIs;
//! * the **tuning thread** only *decides*, concurrently with the next
//!   bucket's serving: it evaluates the organizer against the tick and
//!   queues chosen actions for the control thread's next barrier. The
//!   control thread waits for the previous tick's acknowledgement
//!   before closing the next bucket, so a decision never overlaps the
//!   history/KPI mutation it reads from;
//! * **failures** (e.g. injected by [`FaultInjectingExecutor`]) roll the
//!   engine back to the last good stored configuration instance and
//!   pause tuning for a cooldown — serving never stops.
//!
//! The workload is pre-generated from a seed, the per-query answer
//! digest is order-independent, and every tuning decision reads a
//! bucket-boundary snapshot, so the served results — and the driver's
//! flight-recorder decision trail — are identical regardless of worker
//! count and scheduling.

use std::sync::mpsc;
use std::sync::Arc;

use smdb_common::{Cost, Error, Result};
use smdb_core::{
    ConstraintSet, Driver, DurabilityManager, DurabilityStats, FeatureKind, OrganizerConfig,
    TuningState, TuningTick,
};
use smdb_obs::span;
use smdb_query::{Database, Query, ResultOracle, Session, SessionStats};

use crate::fault::{FaultInjectingExecutor, FaultPlan};
use crate::stream::{BucketPlan, Phase};

/// Serving and tuning parameters.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Reader threads serving each bucket.
    pub workers: usize,
    /// KPI bucket capacity (ms of query work at 100 % utilization).
    pub bucket_capacity: Cost,
    /// Maximum actions applied per low-utilization drain slice.
    pub slice_budget: usize,
    /// Buckets tuning stays paused after a failed reconfiguration.
    pub cooldown_buckets: u64,
    /// Maximum idle buckets the post-workload drain may take.
    pub drain_ticks: usize,
    /// Injected apply failures (attempt-indexed).
    pub fault_plan: FaultPlan,
    /// Optional tail-latency SLA handed to the organizer.
    pub sla_p95: Option<Cost>,
    /// Organizer forecast-shift threshold.
    pub cost_delta_threshold: f64,
    /// Organizer rate limit (buckets between tunings).
    pub min_tuning_interval: u64,
    /// Scan-pool threads for morsel-driven parallel scans. `1` (the
    /// default) serves every scan inline; `> 1` installs a shared
    /// [`smdb_storage::ScanPool`] on the database and workers submit
    /// morsels instead of whole queries. Results and the soak digest are
    /// bit-identical either way — only the simulated latency model (and
    /// on multicore hosts, wall clock) changes.
    pub scan_threads: usize,
    /// Chunks per morsel when `scan_threads > 1` (0 = whole table).
    pub morsel_chunks: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 4,
            bucket_capacity: Cost(2_000.0),
            slice_budget: 4,
            cooldown_buckets: 2,
            drain_ticks: 64,
            fault_plan: FaultPlan::none(),
            sla_p95: None,
            cost_delta_threshold: 0.25,
            min_tuning_interval: 2,
            scan_threads: 1,
            morsel_chunks: smdb_storage::parallel::DEFAULT_MORSEL_CHUNKS,
        }
    }
}

/// What the tuning thread did over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TunerReport {
    /// Ticks processed (one per closed bucket).
    pub ticks: u64,
    /// Tuning passes the organizer triggered.
    pub tunings: u64,
    /// Actions applied via slice-budgeted drains.
    pub drained: u64,
    /// Apply failures handled by rolling back.
    pub failures_handled: u64,
}

/// Outcome of one soak run.
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    /// Merged serving statistics (queries, errors, wrong results, the
    /// order-independent result digest).
    pub stats: SessionStats,
    /// Buckets served from the plan.
    pub buckets_served: usize,
    /// Final snapshot of the driver's tuning machinery.
    pub tuning: TuningState,
    /// What the tuning thread did.
    pub tuner: TunerReport,
    /// Actual apply attempts (fault-injection counter).
    pub apply_attempts: usize,
    /// Failures the fault plan injected.
    pub injected_failures: usize,
    /// Mean response over the first heavy bucket (untuned).
    pub cold_mean: Cost,
    /// p95 response over the first heavy bucket (untuned).
    pub cold_p95: Cost,
    /// Mean response over the last heavy bucket (tuned).
    pub tuned_mean: Cost,
    /// p95 response over the last heavy bucket (tuned).
    pub tuned_p95: Cost,
    /// Durability write KPIs (WAL records/bytes, snapshots, write
    /// amplification); `None` for in-memory runs.
    pub durability: Option<DurabilityStats>,
}

/// Where a kill-and-recover run hard-stops: after serving the first
/// `after_queries` queries of bucket `bucket`, before the bucket closes
/// or any boundary is logged — a crash mid-bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// Plan index of the bucket to die in.
    pub bucket: usize,
    /// Queries of that bucket served before the stop.
    pub after_queries: usize,
}

/// How a run enters the serving loop: fresh from bucket 0, or resumed
/// from a recovered boundary.
#[derive(Debug, Clone, Default)]
struct RunControl {
    /// First plan index to serve.
    start_bucket: usize,
    /// Cumulative stats carried over from the recovered boundary.
    initial_stats: SessionStats,
    /// Re-send the restored boundary's tick before serving: the
    /// decision that was in flight when the run died is re-made from the
    /// identical restored state, so the resumed run's tuning sequence
    /// matches the uninterrupted one.
    resume_tick: bool,
    /// Hard-stop point (kill-and-recover soak).
    kill: Option<KillSpec>,
}

/// The serving runtime: a database, its driver, and the fault-injecting
/// executor handle.
pub struct Runtime {
    db: Arc<Database>,
    driver: Arc<Driver>,
    executor: FaultInjectingExecutor,
    config: RuntimeConfig,
}

impl Runtime {
    /// Wires a driver (indexing + compression, low-utilization-gated
    /// fault-injecting executor) around `db`.
    pub fn new(db: Arc<Database>, config: RuntimeConfig) -> Runtime {
        Self::build(db, config, None)
    }

    /// Like [`Runtime::new`], but the driver persists its state through
    /// `durability` (WAL + snapshots) so a killed run can recover.
    pub fn new_durable(
        db: Arc<Database>,
        config: RuntimeConfig,
        durability: Arc<DurabilityManager>,
    ) -> Runtime {
        Self::build(db, config, Some(durability))
    }

    fn build(
        db: Arc<Database>,
        config: RuntimeConfig,
        durability: Option<Arc<DurabilityManager>>,
    ) -> Runtime {
        let executor = FaultInjectingExecutor::during_low_utilization(config.fault_plan.clone());
        let mut builder = Driver::builder(db.clone())
            .features(vec![FeatureKind::Indexing, FeatureKind::Compression])
            .executor(Box::new(executor.clone()))
            .organizer(OrganizerConfig {
                cost_delta_threshold: config.cost_delta_threshold,
                min_interval: config.min_tuning_interval,
                require_low_utilization: false,
            })
            .constraints(ConstraintSet {
                sla_p95_response: config.sla_p95,
                ..ConstraintSet::none()
            })
            .kpi_bucket_capacity(config.bucket_capacity);
        if let Some(d) = durability {
            builder = builder.durability(d);
        }
        let driver = Arc::new(builder.build());
        if config.scan_threads > 1 {
            db.set_scan_pool(
                Some(smdb_storage::ScanPool::new(config.scan_threads)),
                config.morsel_chunks,
            );
        } else {
            db.set_scan_pool(None, config.morsel_chunks);
        }
        Runtime {
            db,
            driver,
            executor,
            config,
        }
    }

    /// The database being served.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The self-management driver.
    pub fn driver(&self) -> &Arc<Driver> {
        &self.driver
    }

    /// Serves the whole plan. Returns the merged statistics, the final
    /// tuning state and cold-vs-tuned latency figures.
    pub fn run(&self, plan: &[BucketPlan]) -> Result<SoakOutcome> {
        self.run_range(plan, RunControl::default())?
            .ok_or_else(|| Error::invalid("run without a kill spec cannot be killed"))
    }

    /// Serves the plan until the kill point, then hard-stops: the bucket
    /// is left unclosed, no boundary is logged, and nothing is flushed —
    /// exactly the state a crash mid-bucket leaves behind. The runtime
    /// (and its driver) must be discarded afterwards; recovery builds a
    /// fresh one from the durable store.
    pub fn run_killed(&self, plan: &[BucketPlan], kill: KillSpec) -> Result<()> {
        if kill.bucket >= plan.len() {
            return Err(Error::invalid("kill bucket beyond the plan"));
        }
        match self.run_range(
            plan,
            RunControl {
                kill: Some(kill),
                ..RunControl::default()
            },
        )? {
            None => Ok(()),
            Some(_) => Err(Error::invalid("kill point was never reached")),
        }
    }

    /// Resumes serving at `start_bucket` with the recovered cumulative
    /// `stats` — the driver must already hold the restored state (see
    /// [`crate::recover`]). Re-sends the restored boundary's tick first,
    /// so the tuning decision that was in flight at the crash is re-made
    /// from the identical state.
    pub fn run_resumed(
        &self,
        plan: &[BucketPlan],
        start_bucket: u64,
        stats: SessionStats,
    ) -> Result<SoakOutcome> {
        self.run_range(
            plan,
            RunControl {
                start_bucket: start_bucket as usize,
                initial_stats: stats,
                resume_tick: true,
                kill: None,
            },
        )?
        .ok_or_else(|| Error::invalid("resumed run cannot be killed"))
    }

    /// The serving loop. Returns `None` when the run died at its kill
    /// point, `Some(outcome)` when the plan completed.
    fn run_range(&self, plan: &[BucketPlan], control: RunControl) -> Result<Option<SoakOutcome>> {
        let oracle = Arc::new(ResultOracle::capture(
            &self.db,
            plan.iter().flat_map(|b| b.queries.iter()),
        )?);

        let mut total = control.initial_stats.clone();
        let mut bucket_latencies: Vec<(Phase, Vec<f64>)> = Vec::with_capacity(plan.len());
        let mut buckets_served = 0usize;
        let mut barrier = BarrierState::default();
        let mut killed = false;

        // A fresh durable run starts with a full snapshot (version 0), so
        // recovery has a base whatever the crash point. A resumed run
        // already has one.
        if let Some(d) = self.driver.durability() {
            if control.start_bucket == 0 && d.wal_records() == 0 {
                self.driver.persist_snapshot(0, &total)?;
            }
        }

        let mut tuner_report = std::thread::scope(|scope| -> Result<TunerReport> {
            // Capacity 1: the control thread may serve at most one bucket
            // while the tuning thread still decides on the previous tick.
            let (tick_tx, tick_rx) = mpsc::sync_channel::<Option<TuningTick>>(1);
            let (ack_tx, ack_rx) = mpsc::channel::<()>();
            let tuner = {
                let driver = Arc::clone(&self.driver);
                let config = self.config.clone();
                scope.spawn(move || tuner_loop(&driver, &config, &tick_rx, &ack_tx))
            };
            let mut in_flight = false;
            if control.resume_tick && control.start_bucket > 0 {
                // The boundary record is written from exactly the state
                // its tick is built from, so this tick equals the one the
                // dying run had in flight.
                if tick_tx.send(Some(self.driver.tick())).is_ok() {
                    in_flight = true;
                }
            }
            for (idx, bucket) in plan.iter().enumerate().skip(control.start_bucket) {
                let _span = span!("runtime", "bucket", { queries: bucket.queries.len() });
                if let Some(kill) = control.kill.filter(|k| k.bucket == idx) {
                    // Crash mid-bucket: serve a prefix, then stop dead —
                    // no ack, no close, no boundary record.
                    let n = kill.after_queries.min(bucket.queries.len());
                    let _ = self.serve_bucket(&bucket.queries[..n], &oracle)?;
                    killed = true;
                    break;
                }
                let (stats, latencies) = self.serve_bucket(&bucket.queries, &oracle)?;
                total.merge(&stats);
                bucket_latencies.push((bucket.phase, latencies));
                buckets_served += 1;
                // Rendezvous: the decision on the previous tick must be in
                // (queued actions and all) before this bucket closes — a
                // decision never overlaps the history mutation it read.
                if in_flight {
                    if ack_rx.recv().is_err() {
                        // The tuning thread exited early (it hit an
                        // error); stop serving and surface it via join.
                        break;
                    }
                    in_flight = false;
                }
                self.driver.close_bucket();
                // Barrier: apply whatever the tuning thread queued, in
                // budgeted slices, strictly between buckets.
                self.barrier_drain(&mut barrier)?;
                // Boundary record first, tick second, both from the same
                // settled state: recovery restores the boundary and
                // re-sends the identical tick.
                self.driver.persist_boundary((idx + 1) as u64, &total)?;
                // The drain may have reset the KPI window — build the tick
                // the tuning thread sees only now.
                if tick_tx.send(Some(self.driver.tick())).is_err() {
                    break;
                }
                in_flight = true;
            }
            if in_flight {
                let _ = ack_rx.recv();
            }
            let _ = tick_tx.send(None);
            tuner
                .join()
                .map_err(|_| Error::invalid("tuning thread panicked"))?
        })?;
        tuner_report.drained = barrier.drained;
        tuner_report.failures_handled = barrier.failures_handled;
        if killed {
            return Ok(None);
        }

        // Post-workload cooldown: idle buckets drain whatever is still
        // queued so the run ends with a settled configuration.
        let mut ticks = 0usize;
        while self.driver.pending_actions() > 0 && ticks < self.config.drain_ticks {
            self.driver.close_bucket();
            if self.driver.organizer().is_paused() {
                self.driver.organizer().resume();
            }
            self.barrier_drain(&mut barrier)?;
            ticks += 1;
        }
        tuner_report.drained = barrier.drained;
        tuner_report.failures_handled = barrier.failures_handled;

        let (cold_mean, cold_p95) = heavy_metrics(&bucket_latencies, true);
        let (tuned_mean, tuned_p95) = heavy_metrics(&bucket_latencies, false);
        Ok(Some(SoakOutcome {
            stats: total,
            buckets_served,
            tuning: self.driver.tuning_state(),
            tuner: tuner_report,
            apply_attempts: self.executor.attempts(),
            injected_failures: self.executor.injected_failures(),
            cold_mean,
            cold_p95,
            tuned_mean,
            tuned_p95,
            durability: self.driver.durability().map(|d| d.stats()),
        }))
    }

    /// One barrier drain step: applies a budgeted slice of queued
    /// actions strictly between buckets, rolling back (and pausing
    /// tuning) when an apply fails. Skipped while tuning is paused.
    fn barrier_drain(&self, state: &mut BarrierState) -> Result<()> {
        if self.driver.organizer().is_paused() || self.driver.pending_actions() == 0 {
            return Ok(());
        }
        let _span = span!("runtime", "barrier_drain");
        let tick = self.driver.tick();
        match self
            .driver
            .drain_pending_slice_at(&tick, self.config.slice_budget)
        {
            Ok(n) => state.drained += n as u64,
            Err(cause) => {
                // A failed apply left the engine mid-reconfiguration:
                // restore the last good instance, then pause tuning for a
                // cooldown. If even the rollback fails the run reports
                // the broken state.
                self.driver.rollback_to_last_good(&cause.to_string())?;
                state.failures_handled += 1;
                self.driver.organizer().pause();
            }
        }
        Ok(())
    }

    /// Serves one bucket with the worker pool: queries are partitioned
    /// round-robin, each worker verifies against the oracle and feeds
    /// the driver's KPI window.
    fn serve_bucket(
        &self,
        queries: &[Query],
        oracle: &Arc<ResultOracle>,
    ) -> Result<(SessionStats, Vec<f64>)> {
        // Physical worker threads are capped at the host's parallelism:
        // extra workers on an oversubscribed host only add spawn and
        // context-switch overhead. Every statistic this function returns
        // is partition-independent (the digest by construction, latency
        // aggregates as multisets), so the clamp cannot change any
        // deterministic output — `digest_is_worker_count_invariant`
        // below is the witness.
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(usize::MAX);
        let workers = self.config.workers.max(1).min(host);
        let mut merged = SessionStats::default();
        let mut latencies = Vec::with_capacity(queries.len());
        std::thread::scope(|scope| -> Result<()> {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let db = Arc::clone(&self.db);
                    let oracle = Arc::clone(oracle);
                    let driver = Arc::clone(&self.driver);
                    scope.spawn(move || {
                        let _span = span!("runtime", "worker", { worker: w });
                        let mut session = Session::with_oracle(db, w as u64, oracle);
                        let mut lats = Vec::new();
                        for q in queries.iter().skip(w).step_by(workers) {
                            // Engine errors are counted in the session
                            // stats; serving continues.
                            if let Ok(r) = session.run(q) {
                                // KPIs see the (possibly parallel)
                                // simulated latency; sim_cost stays the
                                // work the cost model is calibrated on.
                                driver.record_scan(r.output.sim_latency, r.output.morsels);
                                lats.push(r.output.sim_latency.ms());
                            }
                        }
                        (session.into_stats(), lats)
                    })
                })
                .collect();
            for handle in handles {
                let (stats, lats) = handle
                    .join()
                    .map_err(|_| Error::invalid("worker thread panicked"))?;
                merged.merge(&stats);
                latencies.extend(lats);
            }
            Ok(())
        })?;
        Ok((merged, latencies))
    }
}

/// Counters the control thread accumulates at bucket barriers.
#[derive(Debug, Default)]
struct BarrierState {
    drained: u64,
    failures_handled: u64,
}

/// The tuning thread: one *decision* per closed bucket. It never touches
/// the engine — chosen actions are queued for the control thread's next
/// barrier drain — so faults and rollbacks happen at deterministic
/// points regardless of how this thread is scheduled.
fn tuner_loop(
    driver: &Driver,
    config: &RuntimeConfig,
    ticks: &mpsc::Receiver<Option<TuningTick>>,
    acks: &mpsc::Sender<()>,
) -> Result<TunerReport> {
    let mut report = TunerReport::default();
    let mut cooldown: Option<u64> = None;
    while let Ok(Some(tick)) = ticks.recv() {
        let _span = span!("runtime", "tuning_tick");
        report.ticks += 1;
        if driver.organizer().is_paused() {
            // Degraded mode after a rollback: serve-only until the
            // cooldown elapses.
            let left = cooldown.get_or_insert(config.cooldown_buckets.max(1));
            *left = left.saturating_sub(1);
            if *left == 0 {
                driver.organizer().resume();
                cooldown = None;
            }
        } else {
            cooldown = None;
            // Decide only: a triggered tuning queues its actions. On an
            // analysis error the loop exits — the dropped ack channel
            // stops the control loop, and join surfaces the error.
            if driver.maybe_tune_deferred(&tick)?.is_some() {
                report.tunings += 1;
            }
        }
        if acks.send(()).is_err() {
            break;
        }
    }
    Ok(report)
}

/// Mean and p95 over the first (`first = true`) or last heavy bucket.
fn heavy_metrics(buckets: &[(Phase, Vec<f64>)], first: bool) -> (Cost, Cost) {
    let mut iter = buckets.iter().filter(|(p, _)| *p == Phase::Heavy);
    let found = if first { iter.next() } else { iter.next_back() };
    let Some((_, lats)) = found else {
        return (Cost::ZERO, Cost::ZERO);
    };
    if lats.is_empty() {
        return (Cost::ZERO, Cost::ZERO);
    }
    let mean = lats.iter().sum::<f64>() / lats.len() as f64;
    let mut sorted = lats.clone();
    sorted.sort_by(f64::total_cmp);
    let idx = ((sorted.len() as f64 * 0.95).ceil() as usize).min(sorted.len()) - 1;
    (Cost(mean), Cost(sorted[idx]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{events_database, generate, StreamConfig};

    fn small_plan() -> (Arc<Database>, Vec<BucketPlan>) {
        let (db, table) = events_database(6, 500).expect("fixture builds");
        let config = StreamConfig {
            buckets: 10,
            heavy_queries: 60,
            light_queries: 8,
            heavy_len: 3,
            light_len: 2,
            ..StreamConfig::default()
        };
        (db, generate(table, 3_000, &config))
    }

    #[test]
    fn soak_serves_everything_correctly_and_tunes() {
        let (db, plan) = small_plan();
        let runtime = Runtime::new(
            db,
            RuntimeConfig {
                workers: 3,
                bucket_capacity: Cost(500.0),
                ..RuntimeConfig::default()
            },
        );
        let outcome = runtime.run(&plan).expect("soak runs");
        let planned: usize = plan.iter().map(|b| b.queries.len()).sum();
        assert_eq!(outcome.stats.queries as usize, planned);
        assert_eq!(outcome.stats.errors, 0);
        assert_eq!(outcome.stats.wrong_results, 0);
        assert_eq!(outcome.buckets_served, plan.len());
        assert!(outcome.tuning.actions_applied > 0, "{:?}", outcome.tuning);
        assert_eq!(outcome.tuning.pending_actions, 0, "drained at the end");
        assert!(outcome.cold_mean.ms() > 0.0);
        assert!(
            outcome.tuned_mean.ms() < outcome.cold_mean.ms(),
            "tuning should speed up the heavy phase: cold {} tuned {}",
            outcome.cold_mean,
            outcome.tuned_mean
        );
    }

    #[test]
    fn digest_is_worker_count_invariant() {
        let (db_a, plan) = small_plan();
        let (db_b, _) = small_plan();
        let a = Runtime::new(
            db_a,
            RuntimeConfig {
                workers: 1,
                bucket_capacity: Cost(500.0),
                ..RuntimeConfig::default()
            },
        )
        .run(&plan)
        .expect("runs");
        let b = Runtime::new(
            db_b,
            RuntimeConfig {
                workers: 4,
                bucket_capacity: Cost(500.0),
                ..RuntimeConfig::default()
            },
        )
        .run(&plan)
        .expect("runs");
        assert_eq!(a.stats.queries, b.stats.queries);
        assert_eq!(a.stats.result_digest, b.stats.result_digest);
        assert_eq!(a.stats.wrong_results + b.stats.wrong_results, 0);
    }

    #[test]
    fn digest_is_scan_thread_invariant() {
        // Morsel-parallel scans change the latency model, never the
        // results: same digest, zero wrong answers, and the parallel run
        // actually dispatched morsels.
        let (db_seq, plan) = small_plan();
        let seq = Runtime::new(
            db_seq,
            RuntimeConfig {
                workers: 2,
                bucket_capacity: Cost(500.0),
                ..RuntimeConfig::default()
            },
        )
        .run(&plan)
        .expect("runs");
        for (scan_threads, morsel_chunks) in [(2, 1), (4, 2)] {
            let (db_par, _) = small_plan();
            let par = Runtime::new(
                db_par,
                RuntimeConfig {
                    workers: 2,
                    bucket_capacity: Cost(500.0),
                    scan_threads,
                    morsel_chunks,
                    ..RuntimeConfig::default()
                },
            )
            .run(&plan)
            .expect("runs");
            assert_eq!(par.stats.result_digest, seq.stats.result_digest);
            assert_eq!(par.stats.queries, seq.stats.queries);
            assert_eq!(par.stats.wrong_results, 0);
            assert_eq!(seq.stats.morsels, 0);
            assert!(par.stats.morsels > 0, "parallel run dispatched morsels");
        }
    }

    #[test]
    fn injected_failures_roll_back_and_serving_survives() {
        let (db, plan) = small_plan();
        let runtime = Runtime::new(
            db,
            RuntimeConfig {
                workers: 2,
                bucket_capacity: Cost(500.0),
                fault_plan: FaultPlan::failing_attempts([0]),
                ..RuntimeConfig::default()
            },
        );
        let outcome = runtime.run(&plan).expect("soak survives the fault");
        assert_eq!(outcome.stats.wrong_results, 0);
        assert_eq!(outcome.stats.errors, 0);
        assert_eq!(outcome.injected_failures, 1);
        assert_eq!(outcome.tuning.rollbacks, 1);
        assert!(outcome.tuner.failures_handled >= 1);
        assert_eq!(outcome.tuning.pending_actions, 0);
    }
}
