//! Kill-and-recover orchestration.
//!
//! A durable soak run logs every bucket boundary to the WAL and
//! snapshots on a cadence (see [`smdb_core::durability`]). This module
//! closes the loop: [`recover_runtime`] rebuilds a fresh
//! [`Runtime`] from whatever the durable store holds — tables, the
//! tuned configuration, stored instances, the whole serving state — and
//! [`recover_and_resume`] then serves the rest of the plan.
//!
//! The contract the soak tests pin down: a run that is hard-stopped
//! mid-bucket and recovered must produce the *same* result digest and
//! the *same* stored-instance set as the uninterrupted run — the bucket
//! is the redo unit, the boundary WAL record is written from exactly
//! the state its tuning tick is built from, and recovery re-sends that
//! tick so the in-flight decision is re-made from identical state.
//!
//! Known limitation: the tuning thread's rollback-cooldown countdown is
//! thread-local and not part of the boundary record. A crash while
//! tuning is paused restarts the cooldown at its full length; the
//! kill-and-recover equality tests therefore run without injected apply
//! faults.

use std::sync::Arc;
use std::time::Instant;

use smdb_common::{Error, Result};
use smdb_core::{DurabilityConfig, DurabilityManager, RecoveredState};
use smdb_durable::Persistence;
use smdb_query::{Database, SessionStats};
use smdb_storage::StorageEngine;

use crate::runtime::{Runtime, RuntimeConfig, SoakOutcome};
use crate::stream::BucketPlan;

/// What recovery found and how the resumed run went.
#[derive(Debug)]
pub struct RecoverOutcome {
    /// The resumed run's outcome (cumulative stats include the buckets
    /// served before the crash).
    pub outcome: SoakOutcome,
    /// Plan index serving resumed at.
    pub resumed_at_bucket: u64,
    /// WAL records replayed over the snapshot.
    pub replayed_records: u64,
    /// Corrupt WAL records dropped after the last valid prefix.
    pub dropped_records: u64,
    /// Wall-clock time of the recovery itself (read + replay + restore),
    /// excluding the resumed serving.
    pub recovery_micros: u128,
}

/// Rebuilds a runtime from the durable store: decodes the latest valid
/// snapshot, replays the WAL tail, reconstructs the engine's tables,
/// re-applies the persisted configuration and restores the full serving
/// state. Returns `Ok(None)` when the store holds no valid snapshot.
///
/// The returned [`RecoveredState`] has its `tables` taken (they now
/// live in the engine); everything else is intact for assertions.
pub fn recover_runtime(
    persistence: Arc<dyn Persistence>,
    durability: DurabilityConfig,
    config: RuntimeConfig,
) -> Result<Option<(Runtime, RecoveredState)>> {
    let Some(mut rec) = smdb_core::recover(persistence.as_ref(), &durability)? else {
        return Ok(None);
    };
    let mut engine = StorageEngine::default();
    for table in std::mem::take(&mut rec.tables) {
        engine.create_table(table)?;
    }
    let db = Database::new(engine);
    let manager = Arc::new(DurabilityManager::with_next_seq(
        persistence,
        durability,
        rec.wal_records,
    ));
    let runtime = Runtime::new_durable(db, config, manager);
    runtime.driver().restore_from_recovery(&rec)?;
    Ok(Some((runtime, rec)))
}

/// Recovers from the durable store and serves the rest of `plan`.
/// Errors when the store holds no valid snapshot.
pub fn recover_and_resume(
    persistence: Arc<dyn Persistence>,
    durability: DurabilityConfig,
    config: RuntimeConfig,
    plan: &[BucketPlan],
) -> Result<RecoverOutcome> {
    let started = Instant::now();
    let Some((runtime, rec)) = recover_runtime(persistence, durability, config)? else {
        return Err(Error::invalid("nothing to recover: no valid snapshot"));
    };
    let recovery_micros = started.elapsed().as_micros();
    let resumed_at_bucket = rec.serving.bucket;
    let stats: SessionStats = rec.serving.stats.clone();
    let outcome = runtime.run_resumed(plan, resumed_at_bucket, stats)?;
    Ok(RecoverOutcome {
        outcome,
        resumed_at_bucket,
        replayed_records: rec.replayed_records,
        dropped_records: rec.dropped_records,
        recovery_micros,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::KillSpec;
    use crate::stream::{events_database, generate, StreamConfig};
    use smdb_common::Cost;
    use smdb_durable::MemPersistence;

    fn small_plan() -> (Arc<Database>, Vec<BucketPlan>) {
        let (db, table) = events_database(6, 500).expect("fixture builds");
        let config = StreamConfig {
            buckets: 10,
            heavy_queries: 60,
            light_queries: 8,
            heavy_len: 3,
            light_len: 2,
            ..StreamConfig::default()
        };
        (db, generate(table, 3_000, &config))
    }

    fn soak_config() -> RuntimeConfig {
        RuntimeConfig {
            workers: 2,
            bucket_capacity: Cost(500.0),
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn kill_and_recover_matches_uninterrupted_run() {
        let dconfig = DurabilityConfig {
            snapshot_every_buckets: 4,
        };
        // Uninterrupted durable run: the reference.
        let (db, plan) = small_plan();
        let p_ref: Arc<dyn Persistence> = Arc::new(MemPersistence::new());
        let reference = Runtime::new_durable(
            db,
            soak_config(),
            Arc::new(DurabilityManager::new(Arc::clone(&p_ref), dconfig.clone())),
        );
        let expected = reference.run(&plan).expect("reference runs");
        assert!(expected.durability.is_some());

        // Killed mid-bucket, then recovered and resumed.
        for kill in [
            KillSpec {
                bucket: 3,
                after_queries: 5,
            },
            KillSpec {
                bucket: 6,
                after_queries: 0,
            },
        ] {
            let (db, _) = small_plan();
            let p: Arc<dyn Persistence> = Arc::new(MemPersistence::new());
            let dying = Runtime::new_durable(
                db,
                soak_config(),
                Arc::new(DurabilityManager::new(Arc::clone(&p), dconfig.clone())),
            );
            dying.run_killed(&plan, kill).expect("dies cleanly");
            let recovered =
                recover_and_resume(p, dconfig.clone(), soak_config(), &plan).expect("recovers");
            assert!(
                recovered.resumed_at_bucket <= kill.bucket as u64,
                "resumed at {} after kill in bucket {}",
                recovered.resumed_at_bucket,
                kill.bucket
            );
            let got = &recovered.outcome;
            assert_eq!(
                got.stats.result_digest, expected.stats.result_digest,
                "kill at {kill:?}: digest differs from the uninterrupted run"
            );
            assert_eq!(got.stats.queries, expected.stats.queries);
            assert_eq!(got.stats.wrong_results, 0);
            assert_eq!(got.stats.errors, 0);
            assert_eq!(
                recovered.outcome.tuning.stored_instances, expected.tuning.stored_instances,
                "kill at {kill:?}: instance count differs"
            );
        }
    }

    #[test]
    fn recover_runtime_restores_instances_and_config() {
        let dconfig = DurabilityConfig::default();
        let (db, plan) = small_plan();
        let p: Arc<dyn Persistence> = Arc::new(MemPersistence::new());
        let runtime = Runtime::new_durable(
            db,
            soak_config(),
            Arc::new(DurabilityManager::new(Arc::clone(&p), dconfig.clone())),
        );
        let outcome = runtime.run(&plan).expect("runs");
        assert!(outcome.tuning.stored_instances > 0, "{:?}", outcome.tuning);
        let expected_instances = runtime.driver().config_storage().snapshot();
        let expected_config = runtime.database().engine().current_config();

        let (recovered, rec) = recover_runtime(p, dconfig, soak_config())
            .expect("recover reads")
            .expect("snapshot exists");
        assert_eq!(rec.dropped_records, 0);
        assert_eq!(
            recovered.database().engine().current_config(),
            expected_config,
            "recovered engine must hold the tuned configuration"
        );
        assert_eq!(
            recovered.driver().config_storage().snapshot(),
            expected_instances,
            "recovered instance set must round-trip"
        );
    }

    #[test]
    fn recovering_nothing_is_none() {
        let p: Arc<dyn Persistence> = Arc::new(MemPersistence::new());
        let got = recover_runtime(p, DurabilityConfig::default(), soak_config()).expect("reads");
        assert!(got.is_none());
    }
}
