//! Fault injection for the apply path.
//!
//! [`FaultInjectingExecutor`] behaves like the core
//! [`smdb_core::SequentialExecutor`] — including its low-utilization
//! gate — but fails chosen apply *attempts* mid-batch: it applies a
//! prefix of the slice through the normal (partial-on-error) apply path
//! and then errors, so the engine is left in exactly the
//! half-reconfigured state a real mid-apply failure produces. Deferrals
//! do not count as attempts — the fault plan speaks in terms of actual
//! configuration work, so the schedule does not depend on how often the
//! system happened to be busy.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use smdb_common::{Cost, Error, Result};
use smdb_core::{ExecutionReport, ExecutionStrategy, Executor, KpiSnapshot};
use smdb_query::Database;
use smdb_storage::ConfigAction;

/// Which apply attempts fail (0-based, counted per actual attempt).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    failing_attempts: BTreeSet<usize>,
}

impl FaultPlan {
    /// No injected faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Fails exactly the given 0-based attempt indices.
    pub fn failing_attempts(attempts: impl IntoIterator<Item = usize>) -> Self {
        FaultPlan {
            failing_attempts: attempts.into_iter().collect(),
        }
    }

    /// Fails every `n`-th attempt (attempts n-1, 2n-1, …) up to `max`
    /// injected failures.
    pub fn every_nth(n: usize, max: usize) -> Self {
        let n = n.max(1);
        FaultPlan {
            failing_attempts: (0..max).map(|i| n * (i + 1) - 1).collect(),
        }
    }

    fn fails(&self, attempt: usize) -> bool {
        self.failing_attempts.contains(&attempt)
    }

    /// Number of faults the plan will inject (given enough attempts).
    pub fn planned_failures(&self) -> usize {
        self.failing_attempts.len()
    }
}

#[derive(Debug, Default)]
struct FaultState {
    attempts: AtomicUsize,
    injected: AtomicUsize,
}

/// A sequential executor that injects apply failures per a [`FaultPlan`].
///
/// State is shared through an [`Arc`], so the clone handed to a
/// [`smdb_core::Driver`] and the one kept by the test observe the same
/// counters.
#[derive(Debug, Clone)]
pub struct FaultInjectingExecutor {
    strategy: ExecutionStrategy,
    plan: Arc<FaultPlan>,
    state: Arc<FaultState>,
}

impl FaultInjectingExecutor {
    /// An immediate executor failing the attempts named by `plan`.
    pub fn immediate(plan: FaultPlan) -> Self {
        FaultInjectingExecutor {
            strategy: ExecutionStrategy::Immediate,
            plan: Arc::new(plan),
            state: Arc::new(FaultState::default()),
        }
    }

    /// A low-utilization-gated executor failing the attempts named by
    /// `plan` — the serving runtime's configuration.
    pub fn during_low_utilization(plan: FaultPlan) -> Self {
        FaultInjectingExecutor {
            strategy: ExecutionStrategy::DuringLowUtilization,
            plan: Arc::new(plan),
            state: Arc::new(FaultState::default()),
        }
    }

    /// Actual apply attempts so far (deferrals excluded).
    pub fn attempts(&self) -> usize {
        self.state.attempts.load(Ordering::Relaxed)
    }

    /// Failures injected so far.
    pub fn injected_failures(&self) -> usize {
        self.state.injected.load(Ordering::Relaxed)
    }
}

impl Executor for FaultInjectingExecutor {
    fn name(&self) -> &str {
        "fault_injecting"
    }

    fn execute(
        &self,
        db: &Database,
        kpis: &KpiSnapshot,
        actions: &[ConfigAction],
    ) -> Result<ExecutionReport> {
        if self.strategy == ExecutionStrategy::DuringLowUtilization && !kpis.is_low_utilization() {
            return Ok(ExecutionReport {
                applied: 0,
                deferred: actions.len(),
                reconfiguration_cost: Cost::ZERO,
            });
        }
        if actions.is_empty() {
            return Ok(ExecutionReport {
                applied: 0,
                deferred: 0,
                reconfiguration_cost: Cost::ZERO,
            });
        }
        let attempt = self.state.attempts.fetch_add(1, Ordering::Relaxed);
        if self.plan.fails(attempt) {
            self.state.injected.fetch_add(1, Ordering::Relaxed);
            // Apply half the slice for real, then fail: the engine is
            // left mid-reconfiguration, which is what rollback must fix.
            let partial = actions.len() / 2;
            db.apply_config(&actions[..partial])?;
            return Err(Error::Configuration(format!(
                "injected apply failure at attempt {attempt} ({partial}/{} actions applied)",
                actions.len()
            )));
        }
        let cost = db.apply_config(actions)?;
        Ok(ExecutionReport {
            applied: actions.len(),
            deferred: 0,
            reconfiguration_cost: cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::{ChunkColumnRef, Cost};
    use smdb_core::KpiCollector;
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{ColumnDef, DataType, IndexKind, Schema, StorageEngine, Table};

    fn db() -> Arc<Database> {
        let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        let table =
            Table::from_columns("t", schema, vec![ColumnValues::Int((0..200).collect())], 50)
                .unwrap();
        let mut engine = StorageEngine::default();
        engine.create_table(table).unwrap();
        Database::new(engine)
    }

    fn create_index(chunk: u32) -> ConfigAction {
        ConfigAction::CreateIndex {
            target: ChunkColumnRef::new(0, 0, chunk),
            kind: IndexKind::Hash,
        }
    }

    #[test]
    fn plan_schedules_attempts() {
        let plan = FaultPlan::every_nth(3, 2);
        assert!(!plan.fails(0) && !plan.fails(1));
        assert!(plan.fails(2) && plan.fails(5));
        assert!(!plan.fails(8));
        assert_eq!(plan.planned_failures(), 2);
        assert_eq!(FaultPlan::none().planned_failures(), 0);
    }

    #[test]
    fn failing_attempt_leaves_partial_state() {
        let db = db();
        let kpis = KpiCollector::default();
        let exec = FaultInjectingExecutor::immediate(FaultPlan::failing_attempts([1]));
        let batch = vec![create_index(0), create_index(1), create_index(2)];
        // Attempt 0 succeeds.
        let report = exec.execute(&db, &kpis.snapshot(), &batch[..1]).unwrap();
        assert_eq!(report.applied, 1);
        // Attempt 1 applies half (1 of 2) then fails.
        let err = exec
            .execute(&db, &kpis.snapshot(), &batch[1..])
            .unwrap_err();
        assert!(matches!(err, Error::Configuration(_)), "{err}");
        assert_eq!(db.engine().current_config().indexes.len(), 2);
        assert_eq!(exec.attempts(), 2);
        assert_eq!(exec.injected_failures(), 1);
    }

    #[test]
    fn deferral_does_not_consume_an_attempt() {
        let db = db();
        let kpis = KpiCollector::new(Cost(10.0), 0.3);
        kpis.end_bucket(Cost(100.0)); // busy
        let exec = FaultInjectingExecutor::during_low_utilization(FaultPlan::failing_attempts([0]));
        let report = exec
            .execute(&db, &kpis.snapshot(), &[create_index(0)])
            .unwrap();
        assert_eq!(report.deferred, 1);
        assert_eq!(exec.attempts(), 0, "deferral is not an attempt");
        // Now idle: attempt 0 fires and is the injected failure.
        kpis.end_bucket(Cost(0.0));
        let err = exec
            .execute(&db, &kpis.snapshot(), &[create_index(0)])
            .unwrap_err();
        assert!(matches!(err, Error::Configuration(_)));
        assert_eq!(exec.injected_failures(), 1);
    }
}
