//! Session-level serving with result checking.
//!
//! The serving runtime's correctness property is *logical*: configuration
//! actions (indexes, encodings, placements, knobs) are physical and must
//! never change what a query returns. [`ResultOracle`] captures the
//! ground-truth answer of every query template up front; [`Session`]
//! wraps a shared [`Database`] handle with per-session statistics and
//! verifies each answer against the oracle while reconfigurations race
//! the serving path.

use std::collections::HashMap;
use std::sync::Arc;

use smdb_common::{Cost, Result};
use smdb_storage::{ScanOutput, Value};

use crate::database::{Database, QueryRunResult};
use crate::query::Query;

/// Relative tolerance for float aggregates: physical configuration
/// changes may reorder per-position accumulation (index probe order vs.
/// scan order), so sums agree only up to floating-point associativity.
const AGG_RELATIVE_TOL: f64 = 1e-9;

/// The expected (configuration-independent) answer of one query instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedResult {
    pub rows_matched: u64,
    pub agg_value: Option<f64>,
    pub groups: Option<Vec<(Value, f64)>>,
}

impl ExpectedResult {
    /// Captures the configuration-independent parts of one answer.
    pub fn of(output: &ScanOutput) -> ExpectedResult {
        ExpectedResult {
            rows_matched: output.rows_matched,
            agg_value: output.agg_value,
            groups: output.groups.clone(),
        }
    }

    /// Whether `output` answers this expectation (row counts exact,
    /// aggregates within float-reassociation tolerance). Public so the
    /// sharded serving path can verify scatter-gather answers against
    /// oracles it captured itself.
    pub fn accepts(&self, output: &ScanOutput) -> bool {
        if output.rows_matched != self.rows_matched {
            return false;
        }
        if !floats_agree(self.agg_value, output.agg_value) {
            return false;
        }
        match (&self.groups, &output.groups) {
            (None, None) => true,
            (Some(a), Some(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|((ka, va), (kb, vb))| ka == kb && floats_agree(Some(*va), Some(*vb)))
            }
            _ => false,
        }
    }
}

fn floats_agree(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(a), Some(b)) => {
            let tol = AGG_RELATIVE_TOL * a.abs().max(b.abs()).max(1.0);
            (a - b).abs() <= tol
        }
        _ => false,
    }
}

/// Ground-truth answers keyed by instance fingerprint (template plus
/// literals), captured once against the engine and then consulted by
/// every concurrent session.
#[derive(Debug, Default)]
pub struct ResultOracle {
    expected: HashMap<u64, ExpectedResult>,
}

impl ResultOracle {
    /// Runs every query directly against the engine (bypassing the plan
    /// cache and the logical clock) and records its answer. Duplicate
    /// instances are captured once.
    pub fn capture<'a>(
        db: &Database,
        queries: impl IntoIterator<Item = &'a Query>,
    ) -> Result<ResultOracle> {
        let mut expected = HashMap::new();
        let engine = db.engine();
        for q in queries {
            if expected.contains_key(&q.instance_fingerprint()) {
                continue;
            }
            let output =
                engine.scan_grouped(q.table(), q.predicates(), q.aggregate(), q.group_by())?;
            expected.insert(q.instance_fingerprint(), ExpectedResult::of(&output));
        }
        Ok(ResultOracle { expected })
    }

    /// Number of captured query instances.
    pub fn len(&self) -> usize {
        self.expected.len()
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.expected.is_empty()
    }

    /// Verifies one answer: `Some(true)` when it matches the captured
    /// ground truth, `Some(false)` on a wrong result, `None` when the
    /// query was never captured.
    pub fn verify(&self, query: &Query, output: &ScanOutput) -> Option<bool> {
        self.expected
            .get(&query.instance_fingerprint())
            .map(|e| e.accepts(output))
    }
}

/// Per-session serving statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionStats {
    /// Caller-chosen session identity (e.g. worker index).
    pub session_id: u64,
    /// Queries served.
    pub queries: u64,
    /// Queries that returned an engine error.
    pub errors: u64,
    /// Queries whose answer contradicted the oracle.
    pub wrong_results: u64,
    /// Summed simulated cost of served queries.
    pub busy: Cost,
    /// Morsels dispatched to the scan pool by this session's queries
    /// (0 when every scan ran inline).
    pub morsels: u64,
    /// Order-independent digest of the configuration-independent result
    /// parts (instance fingerprint, row count, group keys). Combined by
    /// wrapping addition (commutative, duplicate-safe), so the union over
    /// any session partitioning is identical — the "result-identical
    /// regardless of thread count" witness.
    pub result_digest: u64,
}

impl SessionStats {
    /// Folds another session's statistics into this one (digests and
    /// counters add); the result is independent of fold order.
    pub fn merge(&mut self, other: &SessionStats) {
        self.queries += other.queries;
        self.errors += other.errors;
        self.wrong_results += other.wrong_results;
        self.busy += other.busy;
        self.morsels += other.morsels;
        self.result_digest = self.result_digest.wrapping_add(other.result_digest);
    }
}

/// One serving session: a shared database handle plus statistics and
/// optional oracle verification.
#[derive(Debug)]
pub struct Session {
    db: Arc<Database>,
    oracle: Option<Arc<ResultOracle>>,
    stats: SessionStats,
}

impl Session {
    /// A session without result checking.
    pub fn new(db: Arc<Database>, session_id: u64) -> Session {
        Session {
            db,
            oracle: None,
            stats: SessionStats {
                session_id,
                ..SessionStats::default()
            },
        }
    }

    /// A session verifying every answer against `oracle`.
    pub fn with_oracle(db: Arc<Database>, session_id: u64, oracle: Arc<ResultOracle>) -> Session {
        let mut s = Session::new(db, session_id);
        s.oracle = Some(oracle);
        s
    }

    /// Runs one query, updating statistics and verifying the answer.
    /// Engine errors are counted and propagated — the caller decides
    /// whether the session survives.
    pub fn run(&mut self, query: &Query) -> Result<QueryRunResult> {
        match self.db.run_query(query) {
            Ok(result) => {
                self.stats.queries += 1;
                self.stats.busy += result.output.sim_cost;
                self.stats.morsels += result.output.morsels;
                self.stats.result_digest = self
                    .stats
                    .result_digest
                    .wrapping_add(result_hash(query, &result.output));
                if let Some(oracle) = &self.oracle {
                    if oracle.verify(query, &result.output) == Some(false) {
                        self.stats.wrong_results += 1;
                    }
                }
                Ok(result)
            }
            Err(e) => {
                self.stats.errors += 1;
                Err(e)
            }
        }
    }

    /// The session's statistics so far.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Consumes the session, returning its statistics.
    pub fn into_stats(self) -> SessionStats {
        self.stats
    }
}

/// Hash of one answer's configuration-independent parts. Aggregate
/// *values* are excluded: physical reconfiguration may legally perturb
/// float sums in the last bits (the oracle checks them with tolerance);
/// the digest must be bit-stable across configurations. Public so the
/// sharded serving path accumulates the *same* digest for the same
/// answers — the shard-count-invariance witness.
pub fn result_hash(query: &Query, output: &ScanOutput) -> u64 {
    let mut h = query
        .instance_fingerprint()
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= output.rows_matched.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    if let Some(groups) = &output.groups {
        use std::hash::{Hash, Hasher};
        let mut gh = std::collections::hash_map::DefaultHasher::new();
        groups.len().hash(&mut gh);
        for (k, _) in groups {
            k.hash(&mut gh);
        }
        h ^= gh.finish().rotate_left(17);
    }
    // Final avalanche so sparse counter differences flip many bits.
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^ (h >> 29)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::{ColumnId, TableId};
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{
        Aggregate, AggregateOp, ColumnDef, ConfigAction, DataType, IndexKind, ScanPredicate,
        Schema, StorageEngine, Table,
    };

    fn db() -> Arc<Database> {
        let schema = Schema::new(vec![
            ColumnDef::new("k", DataType::Int),
            ColumnDef::new("v", DataType::Float),
        ])
        .unwrap();
        let table = Table::from_columns(
            "t",
            schema,
            vec![
                ColumnValues::Int((0..400).map(|i| i % 20).collect()),
                ColumnValues::Float((0..400).map(|i| i as f64).collect()),
            ],
            100,
        )
        .unwrap();
        let mut engine = StorageEngine::default();
        engine.create_table(table).unwrap();
        Database::new(engine)
    }

    fn q(v: i64) -> Query {
        Query::new(
            TableId(0),
            "t",
            vec![ScanPredicate::eq(ColumnId(0), v)],
            Some(Aggregate::new(AggregateOp::Sum, ColumnId(1))),
            "pt",
        )
    }

    #[test]
    fn oracle_verifies_across_reconfiguration() {
        let db = db();
        let queries: Vec<Query> = (0..20).map(q).collect();
        let oracle = Arc::new(ResultOracle::capture(&db, queries.iter()).unwrap());
        assert_eq!(oracle.len(), 20);
        let mut session = Session::with_oracle(db.clone(), 0, oracle.clone());
        for query in &queries {
            session.run(query).unwrap();
        }
        // Reconfigure, then serve the same queries again: still correct.
        for chunk in 0..4 {
            db.apply_config(&[ConfigAction::CreateIndex {
                target: smdb_common::ChunkColumnRef::new(0, 0, chunk),
                kind: IndexKind::Hash,
            }])
            .unwrap();
        }
        for query in &queries {
            session.run(query).unwrap();
        }
        assert_eq!(session.stats().queries, 40);
        assert_eq!(session.stats().wrong_results, 0);
        assert_eq!(session.stats().errors, 0);
        assert!(session.stats().busy.ms() > 0.0);
    }

    #[test]
    fn oracle_flags_wrong_results() {
        let db = db();
        let queries: Vec<Query> = (0..5).map(q).collect();
        let oracle = ResultOracle::capture(&db, queries.iter()).unwrap();
        let good = db.run_query(&q(1)).unwrap().output;
        assert_eq!(oracle.verify(&q(1), &good), Some(true));
        let mut bad = good.clone();
        bad.rows_matched += 1;
        assert_eq!(oracle.verify(&q(1), &bad), Some(false));
        let mut off = good;
        off.agg_value = off.agg_value.map(|v| v + 1.0);
        assert_eq!(oracle.verify(&q(1), &off), Some(false));
        assert_eq!(oracle.verify(&q(19), &bad), None, "never captured");
    }

    #[test]
    fn digest_is_partition_independent() {
        let db = db();
        let queries: Vec<Query> = (0..40).map(|i| q(i % 20)).collect();
        // One session serving everything…
        let mut all = Session::new(db.clone(), 0);
        for query in &queries {
            all.run(query).unwrap();
        }
        // …equals two sessions serving interleaved halves, merged.
        let mut a = Session::new(db.clone(), 1);
        let mut b = Session::new(db.clone(), 2);
        for (i, query) in queries.iter().enumerate() {
            if i % 2 == 0 {
                a.run(query).unwrap();
            } else {
                b.run(query).unwrap();
            }
        }
        let mut merged = a.into_stats();
        merged.merge(b.stats());
        assert_eq!(merged.queries, all.stats().queries);
        assert_eq!(merged.result_digest, all.stats().result_digest);
        assert_ne!(all.stats().result_digest, 0);
    }

    #[test]
    fn errors_are_counted_and_propagated() {
        let db = db();
        let mut session = Session::new(db, 7);
        let bad = Query::new(TableId(9), "missing", vec![], None, "bad");
        assert!(session.run(&bad).is_err());
        assert_eq!(session.stats().errors, 1);
        assert_eq!(session.stats().queries, 0);
        assert_eq!(session.stats().session_id, 7);
    }
}
