//! Logical query templates.
//!
//! The workload predictor's first step (Section II-C) transforms cached
//! queries "into an abstract logical representation of query templates to
//! remove unnecessary information". [`LogicalTemplate`] is that
//! representation: the table, the *shape* of each predicate (column +
//! operator, literals dropped) and the aggregate.

use std::hash::{Hash, Hasher};

use smdb_common::{ColumnId, TableId};
use smdb_storage::{AggregateOp, PredicateOp};

use crate::query::Query;

/// A query with its literals stripped.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LogicalTemplate {
    pub table: TableId,
    /// Predicate shapes in query order.
    pub predicates: Vec<(ColumnId, PredicateOp)>,
    pub aggregate: Option<(AggregateOp, ColumnId)>,
    pub group_by: Option<ColumnId>,
    /// Human-readable label inherited from the query.
    pub label: String,
}

impl LogicalTemplate {
    /// Extracts the template of a query.
    pub fn of(query: &Query) -> LogicalTemplate {
        LogicalTemplate {
            table: query.table(),
            predicates: query
                .predicates()
                .iter()
                .map(|p| (p.column, p.op))
                .collect(),
            aggregate: query.aggregate().map(|a| (a.op, a.column)),
            group_by: query.group_by(),
            label: query.label().to_string(),
        }
    }

    /// A stable fingerprint identifying the template. The label is *not*
    /// part of the fingerprint: two structurally identical queries share
    /// a plan-cache entry regardless of labelling.
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.table.hash(&mut h);
        self.predicates.hash(&mut h);
        self.aggregate.hash(&mut h);
        self.group_by.hash(&mut h);
        h.finish()
    }

    /// Number of predicates.
    pub fn arity(&self) -> usize {
        self.predicates.len()
    }
}

impl std::fmt::Display for LogicalTemplate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}](", self.label, self.table)?;
        for (i, (col, op)) in self.predicates.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{col} {op:?} ?")?;
        }
        write!(f, ")")?;
        if let Some((op, col)) = &self.aggregate {
            write!(f, " -> {op:?}({col})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_storage::ScanPredicate;

    #[test]
    fn label_not_in_fingerprint() {
        let a = Query::new(
            TableId(1),
            "t",
            vec![ScanPredicate::eq(ColumnId(0), 1i64)],
            None,
            "label_a",
        );
        let b = Query::new(
            TableId(1),
            "t",
            vec![ScanPredicate::eq(ColumnId(0), 2i64)],
            None,
            "label_b",
        );
        assert_eq!(a.template().fingerprint(), b.template().fingerprint());
        assert_ne!(a.template().label, b.template().label);
    }

    #[test]
    fn table_changes_fingerprint() {
        let a = Query::new(
            TableId(1),
            "t",
            vec![ScanPredicate::eq(ColumnId(0), 1i64)],
            None,
            "q",
        );
        let b = Query::new(
            TableId(2),
            "u",
            vec![ScanPredicate::eq(ColumnId(0), 1i64)],
            None,
            "q",
        );
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn display_is_readable() {
        let q = Query::new(
            TableId(0),
            "t",
            vec![ScanPredicate::eq(ColumnId(1), 5i64)],
            None,
            "point",
        );
        let s = q.template().to_string();
        assert!(s.contains("point"));
        assert!(s.contains("Eq"));
    }
}
