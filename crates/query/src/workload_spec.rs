//! Workload specifications: weighted sets of queries.
//!
//! Forecast scenarios, what-if costing and the tuners all describe a
//! workload the same way: queries with expected execution frequencies.

use smdb_common::Cost;

use crate::query::Query;

/// A query with an expected execution frequency (per forecast horizon).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedQuery {
    pub query: Query,
    /// Expected executions over the horizon; fractional weights arise
    /// from clustering and probabilistic forecasts.
    pub weight: f64,
}

impl WeightedQuery {
    /// Creates a weighted query.
    pub fn new(query: Query, weight: f64) -> Self {
        WeightedQuery { query, weight }
    }
}

/// A workload: a weighted multiset of queries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Workload {
    queries: Vec<WeightedQuery>,
}

impl Workload {
    /// Creates a workload from weighted queries.
    pub fn new(queries: Vec<WeightedQuery>) -> Self {
        Workload { queries }
    }

    /// Creates a workload giving every query weight 1.
    pub fn uniform(queries: Vec<Query>) -> Self {
        Workload {
            queries: queries
                .into_iter()
                .map(|q| WeightedQuery::new(q, 1.0))
                .collect(),
        }
    }

    /// The weighted queries.
    pub fn queries(&self) -> &[WeightedQuery] {
        &self.queries
    }

    /// Number of distinct entries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Total weight (expected executions).
    pub fn total_weight(&self) -> f64 {
        self.queries.iter().map(|w| w.weight).sum()
    }

    /// Adds a weighted query.
    pub fn push(&mut self, query: Query, weight: f64) {
        self.queries.push(WeightedQuery::new(query, weight));
    }

    /// Weighted total cost given a per-query costing function.
    pub fn total_cost(&self, mut per_query: impl FnMut(&Query) -> Cost) -> Cost {
        self.queries
            .iter()
            .map(|wq| per_query(&wq.query) * wq.weight)
            .sum()
    }

    /// Scales all weights by `factor` (scenario inflation).
    pub fn scaled(&self, factor: f64) -> Workload {
        Workload {
            queries: self
                .queries
                .iter()
                .map(|wq| WeightedQuery::new(wq.query.clone(), wq.weight * factor))
                .collect(),
        }
    }
}

impl FromIterator<WeightedQuery> for Workload {
    fn from_iter<T: IntoIterator<Item = WeightedQuery>>(iter: T) -> Self {
        Workload {
            queries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::{ColumnId, TableId};
    use smdb_storage::ScanPredicate;

    fn q(v: i64) -> Query {
        Query::new(
            TableId(0),
            "t",
            vec![ScanPredicate::eq(ColumnId(0), v)],
            None,
            "q",
        )
    }

    #[test]
    fn totals() {
        let mut w = Workload::uniform(vec![q(1), q(2)]);
        w.push(q(3), 3.0);
        assert_eq!(w.len(), 3);
        assert_eq!(w.total_weight(), 5.0);
        let cost = w.total_cost(|_| Cost(2.0));
        assert_eq!(cost, Cost(10.0));
    }

    #[test]
    fn scaling() {
        let w = Workload::uniform(vec![q(1)]).scaled(4.0);
        assert_eq!(w.total_weight(), 4.0);
    }

    #[test]
    fn from_iterator() {
        let w: Workload = vec![WeightedQuery::new(q(1), 2.0)].into_iter().collect();
        assert_eq!(w.total_weight(), 2.0);
    }
}
