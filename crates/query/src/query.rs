//! The query model: parameterised predicate scans with optional
//! aggregates.

use smdb_common::{ColumnId, TableId};
use smdb_storage::{Aggregate, ScanPredicate};

use crate::logical::LogicalTemplate;

/// One executable query: a conjunctive predicate scan over a single table
/// with an optional aggregate.
///
/// Queries are *instances of templates*: two queries with the same table,
/// predicate shapes and aggregate but different literals share a
/// [`LogicalTemplate`] and hence a plan-cache entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    table: TableId,
    table_name: String,
    predicates: Vec<ScanPredicate>,
    aggregate: Option<Aggregate>,
    /// GROUP BY column (requires an aggregate).
    group_by: Option<ColumnId>,
    /// Human-readable template label, e.g. `"q6_discount_scan"`.
    label: String,
    /// Precomputed template fingerprint (plan-cache key); computing it
    /// once at construction keeps the monitoring path allocation-free.
    fingerprint: u64,
    /// Precomputed instance fingerprint: the template fingerprint mixed
    /// with the predicate literals, so two instances of one template with
    /// different literals are distinguishable (what-if cost-cache key).
    instance_fingerprint: u64,
}

impl Query {
    /// Creates a query.
    pub fn new(
        table: TableId,
        table_name: impl Into<String>,
        predicates: Vec<ScanPredicate>,
        aggregate: Option<Aggregate>,
        label: impl Into<String>,
    ) -> Self {
        let mut query = Query {
            table,
            table_name: table_name.into(),
            predicates,
            aggregate,
            group_by: None,
            label: label.into(),
            fingerprint: 0,
            instance_fingerprint: 0,
        };
        query.refresh_fingerprints();
        query
    }

    /// Adds a GROUP BY column (builder style); the aggregate is computed
    /// per distinct value of that column.
    pub fn with_group_by(mut self, column: ColumnId) -> Self {
        self.group_by = Some(column);
        self.refresh_fingerprints();
        self
    }

    fn refresh_fingerprints(&mut self) {
        use std::hash::{Hash, Hasher};
        self.fingerprint = self.template().fingerprint();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.fingerprint.hash(&mut h);
        for p in &self.predicates {
            p.value.hash(&mut h);
            p.upper.hash(&mut h);
        }
        self.instance_fingerprint = h.finish();
    }

    /// The GROUP BY column, if any.
    pub fn group_by(&self) -> Option<ColumnId> {
        self.group_by
    }

    /// The target table.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// The target table's name.
    pub fn table_name(&self) -> &str {
        &self.table_name
    }

    /// The conjunctive predicates.
    pub fn predicates(&self) -> &[ScanPredicate] {
        &self.predicates
    }

    /// The aggregate, if any.
    pub fn aggregate(&self) -> Option<&Aggregate> {
        self.aggregate.as_ref()
    }

    /// The template label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Strips literals, producing the logical template.
    pub fn template(&self) -> LogicalTemplate {
        LogicalTemplate::of(self)
    }

    /// The (precomputed) template fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The (precomputed) instance fingerprint: template plus literals.
    pub fn instance_fingerprint(&self) -> u64 {
        self.instance_fingerprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::ColumnId;
    use smdb_storage::{AggregateOp, PredicateOp};

    fn q(value: i64) -> Query {
        Query::new(
            TableId(0),
            "orders",
            vec![ScanPredicate::eq(ColumnId(2), value)],
            Some(Aggregate::new(AggregateOp::Sum, ColumnId(3))),
            "orders_by_status",
        )
    }

    #[test]
    fn same_shape_same_fingerprint() {
        assert_eq!(q(1).fingerprint(), q(99).fingerprint());
    }

    #[test]
    fn instance_fingerprint_distinguishes_literals() {
        assert_ne!(q(1).instance_fingerprint(), q(99).instance_fingerprint());
        assert_eq!(q(5).instance_fingerprint(), q(5).instance_fingerprint());
        // Different templates never share instance fingerprints either.
        let other = Query::new(
            TableId(0),
            "orders",
            vec![ScanPredicate::cmp(ColumnId(2), PredicateOp::Lt, 1i64)],
            None,
            "orders_by_status",
        );
        assert_ne!(q(1).instance_fingerprint(), other.instance_fingerprint());
    }

    #[test]
    fn different_shape_different_fingerprint() {
        let a = q(1);
        let b = Query::new(
            TableId(0),
            "orders",
            vec![ScanPredicate::cmp(ColumnId(2), PredicateOp::Lt, 1i64)],
            a.aggregate().copied(),
            "orders_by_status",
        );
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn accessors() {
        let query = q(5);
        assert_eq!(query.table(), TableId(0));
        assert_eq!(query.table_name(), "orders");
        assert_eq!(query.predicates().len(), 1);
        assert!(query.aggregate().is_some());
        assert_eq!(query.label(), "orders_by_status");
    }
}

#[cfg(test)]
mod group_by_query_tests {
    use super::*;
    use smdb_common::ColumnId;
    use smdb_storage::{Aggregate, AggregateOp};

    fn base() -> Query {
        Query::new(
            TableId(0),
            "t",
            vec![ScanPredicate::eq(ColumnId(0), 1i64)],
            Some(Aggregate::new(AggregateOp::Sum, ColumnId(1))),
            "report",
        )
    }

    #[test]
    fn group_by_changes_the_template() {
        let plain = base();
        let grouped = base().with_group_by(ColumnId(2));
        assert_ne!(plain.fingerprint(), grouped.fingerprint());
        assert_eq!(grouped.group_by(), Some(ColumnId(2)));
        assert_eq!(plain.group_by(), None);
        // Different group columns are different templates too.
        let other = base().with_group_by(ColumnId(0));
        assert_ne!(grouped.fingerprint(), other.fingerprint());
    }

    #[test]
    fn grouped_instances_share_templates_across_literals() {
        let a = Query::new(
            TableId(0),
            "t",
            vec![ScanPredicate::eq(ColumnId(0), 1i64)],
            Some(Aggregate::new(AggregateOp::Sum, ColumnId(1))),
            "report",
        )
        .with_group_by(ColumnId(2));
        let b = Query::new(
            TableId(0),
            "t",
            vec![ScanPredicate::eq(ColumnId(0), 99i64)],
            Some(Aggregate::new(AggregateOp::Sum, ColumnId(1))),
            "report",
        )
        .with_group_by(ColumnId(2));
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
