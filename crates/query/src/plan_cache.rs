//! The query plan cache.
//!
//! Keyed by template fingerprint, each entry keeps the template, a
//! representative concrete query (the most recent instance — what-if cost
//! estimation needs concrete literals), the execution count and the
//! cumulative execution cost. The workload predictor reads periodic
//! snapshots; no per-query history is retained here, so recording stays
//! O(1) — the "no further overhead … during query execution time"
//! property the paper attributes to plan-cache-driven observation.

use std::collections::BTreeMap;

use smdb_common::{Cost, LogicalTime};

use crate::logical::LogicalTemplate;
use crate::query::Query;

/// One plan-cache entry (per template).
#[derive(Debug, Clone)]
pub struct PlanCacheEntry {
    pub template: LogicalTemplate,
    /// A concrete instance of the template (what-if cost estimation
    /// needs concrete literals). Of all instances recorded so far, the
    /// one with the smallest content hash is kept — a pure function of
    /// the observed query *set*, so the snapshot (and everything tuning
    /// derives from it) is identical however worker threads interleave.
    pub example: Query,
    /// Content hash of `example` (see [`example_rank`]).
    example_rank: u64,
    pub executions: u64,
    pub total_cost: Cost,
    pub first_seen: LogicalTime,
    pub last_seen: LogicalTime,
}

/// FNV-1a over a query's concrete literals (predicate values and the
/// group-by column) — the arrival-order-independent tie-break that picks
/// each template's representative example.
fn example_rank(query: &Query) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |byte: u8| h = (h ^ u64::from(byte)).wrapping_mul(PRIME);
    let eat_value = |v: &smdb_storage::Value, eat: &mut dyn FnMut(u8)| match v {
        smdb_storage::Value::Int(v) => {
            for b in v.to_le_bytes() {
                eat(b);
            }
        }
        smdb_storage::Value::Float(v) => {
            for b in v.to_bits().to_le_bytes() {
                eat(b);
            }
        }
        smdb_storage::Value::Text(s) => {
            for &b in s.as_bytes() {
                eat(b);
            }
        }
    };
    for p in query.predicates() {
        eat_value(&p.value, &mut eat);
        eat(0xfe);
        if let Some(upper) = &p.upper {
            eat_value(upper, &mut eat);
        }
        eat(0xff);
    }
    if let Some(col) = query.group_by() {
        for b in col.0.to_le_bytes() {
            eat(b);
        }
    }
    h
}

impl PlanCacheEntry {
    /// Mean execution cost of this template.
    pub fn mean_cost(&self) -> Cost {
        if self.executions == 0 {
            Cost::ZERO
        } else {
            self.total_cost / self.executions as f64
        }
    }
}

/// A bounded, LRU-evicting query plan cache.
#[derive(Debug)]
pub struct PlanCache {
    entries: BTreeMap<u64, PlanCacheEntry>,
    max_entries: usize,
    evictions: u64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(4096)
    }
}

impl PlanCache {
    /// Creates a cache bounded to `max_entries` templates.
    pub fn new(max_entries: usize) -> Self {
        PlanCache {
            entries: BTreeMap::new(),
            max_entries: max_entries.max(1),
            evictions: 0,
        }
    }

    /// Records one execution of `query` costing `cost` at time `now`.
    pub fn record(&mut self, query: &Query, cost: Cost, now: LogicalTime) {
        let fp = query.fingerprint();
        match self.entries.get_mut(&fp) {
            Some(e) => {
                e.executions += 1;
                e.total_cost += cost;
                e.last_seen = now;
                // Min-rank representative: independent of which instance
                // happened to arrive first under concurrent workers.
                let rank = example_rank(query);
                if rank < e.example_rank {
                    e.example = query.clone();
                    e.example_rank = rank;
                }
            }
            None => {
                if self.entries.len() >= self.max_entries {
                    self.evict_lru();
                }
                self.entries.insert(
                    fp,
                    PlanCacheEntry {
                        template: query.template(),
                        example: query.clone(),
                        example_rank: example_rank(query),
                        executions: 1,
                        total_cost: cost,
                        first_seen: now,
                        last_seen: now,
                    },
                );
            }
        }
    }

    /// Number of cached templates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of templates evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up the entry of a template fingerprint.
    pub fn get(&self, fingerprint: u64) -> Option<&PlanCacheEntry> {
        self.entries.get(&fingerprint)
    }

    /// Reinstates one entry from durable state: the template and the
    /// representative's rank are recomputed from `example`, so a
    /// restored cache is indistinguishable from one that only ever saw
    /// the surviving instances.
    pub fn restore_entry(
        &mut self,
        example: Query,
        executions: u64,
        total_cost: Cost,
        first_seen: LogicalTime,
        last_seen: LogicalTime,
    ) {
        let fp = example.fingerprint();
        if self.entries.len() >= self.max_entries && !self.entries.contains_key(&fp) {
            self.evict_lru();
        }
        let rank = example_rank(&example);
        self.entries.insert(
            fp,
            PlanCacheEntry {
                template: example.template(),
                example_rank: rank,
                example,
                executions,
                total_cost,
                first_seen,
                last_seen,
            },
        );
    }

    /// A point-in-time snapshot of all entries (cloned, so the predictor
    /// can analyse without holding the cache lock).
    pub fn snapshot(&self) -> Vec<PlanCacheEntry> {
        let mut v: Vec<_> = self.entries.values().cloned().collect();
        // Deterministic order for downstream consumers (entries iterate
        // in query-fingerprint order; resort by template fingerprint).
        v.sort_by_key(|e| e.template.fingerprint());
        v
    }

    /// Clears all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    fn evict_lru(&mut self) {
        if let Some((&fp, _)) = self
            .entries
            .iter()
            .min_by_key(|(_, e)| (e.last_seen, e.template.fingerprint()))
        {
            self.entries.remove(&fp);
            self.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::{ColumnId, TableId};
    use smdb_storage::ScanPredicate;

    fn q(table: u32, value: i64) -> Query {
        Query::new(
            TableId(table),
            format!("t{table}"),
            vec![ScanPredicate::eq(ColumnId(0), value)],
            None,
            format!("q{table}"),
        )
    }

    #[test]
    fn record_accumulates_per_template() {
        let mut cache = PlanCache::default();
        cache.record(&q(0, 1), Cost(2.0), LogicalTime(0));
        cache.record(&q(0, 2), Cost(4.0), LogicalTime(1));
        assert_eq!(cache.len(), 1);
        let e = cache.get(q(0, 9).fingerprint()).unwrap();
        assert_eq!(e.executions, 2);
        assert_eq!(e.total_cost, Cost(6.0));
        assert_eq!(e.mean_cost(), Cost(3.0));
        assert_eq!(e.first_seen, LogicalTime(0));
        assert_eq!(e.last_seen, LogicalTime(1));
        // The representative example is the min-rank instance — the same
        // whichever order the two instances were recorded in.
        let mut reversed = PlanCache::default();
        reversed.record(&q(0, 2), Cost(4.0), LogicalTime(0));
        reversed.record(&q(0, 1), Cost(2.0), LogicalTime(1));
        let r = reversed.get(q(0, 9).fingerprint()).unwrap();
        assert_eq!(
            e.example.predicates()[0].value,
            r.example.predicates()[0].value,
            "example selection must not depend on arrival order"
        );
    }

    #[test]
    fn lru_eviction() {
        let mut cache = PlanCache::new(2);
        cache.record(&q(0, 1), Cost(1.0), LogicalTime(0));
        cache.record(&q(1, 1), Cost(1.0), LogicalTime(1));
        // Touch t0 so t1 becomes LRU.
        cache.record(&q(0, 2), Cost(1.0), LogicalTime(2));
        cache.record(&q(2, 1), Cost(1.0), LogicalTime(3));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(q(1, 0).fingerprint()).is_none());
        assert!(cache.get(q(0, 0).fingerprint()).is_some());
        assert!(cache.get(q(2, 0).fingerprint()).is_some());
    }

    #[test]
    fn snapshot_is_deterministic() {
        let mut cache = PlanCache::default();
        for t in 0..5 {
            cache.record(&q(t, 0), Cost(1.0), LogicalTime(0));
        }
        let a: Vec<u64> = cache
            .snapshot()
            .iter()
            .map(|e| e.template.fingerprint())
            .collect();
        let b: Vec<u64> = cache
            .snapshot()
            .iter()
            .map(|e| e.template.fingerprint())
            .collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn clear_empties() {
        let mut cache = PlanCache::default();
        cache.record(&q(0, 1), Cost(1.0), LogicalTime(0));
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }
}
