//! The execution façade: storage engine + plan cache + monitoring switch.
//!
//! [`Database`] is what both applications (running queries) and the
//! self-management framework (observing and reconfiguring) hold. All
//! members use interior mutability so a shared `Arc<Database>` serves
//! concurrent readers; the framework takes the engine write lock only
//! while applying configuration actions.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use smdb_common::{Cost, LogicalTime, Result};
use smdb_storage::{ConfigAction, ScanOutput, StorageEngine};

use crate::plan_cache::PlanCache;
use crate::query::Query;

/// Result of running one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRunResult {
    /// Engine output including the ground-truth simulated cost.
    pub output: ScanOutput,
    /// Real wall-clock nanoseconds spent in the engine (used by the
    /// overhead experiment, not by the tuners).
    pub wall_ns: u64,
}

/// A self-manageable database: engine, plan cache, logical clock and the
/// monitoring switch.
pub struct Database {
    engine: RwLock<StorageEngine>,
    plan_cache: Mutex<PlanCache>,
    monitoring: AtomicBool,
    clock: AtomicU64,
}

impl Database {
    /// Wraps an engine with monitoring enabled.
    pub fn new(engine: StorageEngine) -> Arc<Database> {
        Arc::new(Database {
            engine: RwLock::new(engine),
            plan_cache: Mutex::new(PlanCache::default()),
            monitoring: AtomicBool::new(true),
            clock: AtomicU64::new(0),
        })
    }

    /// Read access to the engine.
    pub fn engine(&self) -> parking_lot::RwLockReadGuard<'_, StorageEngine> {
        self.engine.read()
    }

    /// Write access to the engine (configuration changes).
    pub fn engine_mut(&self) -> parking_lot::RwLockWriteGuard<'_, StorageEngine> {
        self.engine.write()
    }

    /// Access to the plan cache.
    pub fn plan_cache(&self) -> parking_lot::MutexGuard<'_, PlanCache> {
        self.plan_cache.lock()
    }

    /// Turns workload monitoring (plan-cache recording) on or off.
    /// The overhead experiment compares query latency in both modes.
    pub fn set_monitoring(&self, on: bool) {
        self.monitoring.store(on, Ordering::Relaxed);
    }

    /// Whether monitoring is enabled.
    pub fn monitoring(&self) -> bool {
        self.monitoring.load(Ordering::Relaxed)
    }

    /// Current logical time (bucket index).
    pub fn now(&self) -> LogicalTime {
        LogicalTime(self.clock.load(Ordering::Relaxed))
    }

    /// Advances the logical clock by one bucket and returns the new time.
    pub fn advance_time(&self) -> LogicalTime {
        LogicalTime(self.clock.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Executes a query: scans the engine and, when monitoring is on,
    /// records the execution in the plan cache.
    pub fn run_query(&self, query: &Query) -> Result<QueryRunResult> {
        let start = Instant::now();
        let output = {
            let engine = self.engine.read();
            engine.scan_grouped(
                query.table(),
                query.predicates(),
                query.aggregate(),
                query.group_by(),
            )?
        };
        let wall_ns = start.elapsed().as_nanos() as u64;
        if self.monitoring() {
            self.plan_cache
                .lock()
                .record(query, output.sim_cost, self.now());
        }
        Ok(QueryRunResult { output, wall_ns })
    }

    /// Applies configuration actions under the engine write lock,
    /// returning the summed one-time reconfiguration cost. A failed
    /// batch leaves the successfully applied prefix in place.
    pub fn apply_config(&self, actions: &[ConfigAction]) -> Result<Cost> {
        self.engine.write().apply_all(actions)
    }

    /// Like [`Database::apply_config`], but atomic: a failed batch is
    /// fully undone under the same write lock, so concurrent readers
    /// never observe a half-applied batch that will not complete.
    pub fn apply_config_atomic(&self, actions: &[ConfigAction]) -> Result<Cost> {
        self.engine.write().apply_all_atomic(actions)
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("monitoring", &self.monitoring())
            .field("now", &self.now())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::{ColumnId, TableId};
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{ColumnDef, DataType, ScanPredicate, Schema, Table};

    fn db() -> Arc<Database> {
        let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        let table =
            Table::from_columns("t", schema, vec![ColumnValues::Int((0..100).collect())], 50)
                .unwrap();
        let mut engine = StorageEngine::default();
        engine.create_table(table).unwrap();
        Database::new(engine)
    }

    fn q(v: i64) -> Query {
        Query::new(
            TableId(0),
            "t",
            vec![ScanPredicate::eq(ColumnId(0), v)],
            None,
            "point",
        )
    }

    #[test]
    fn run_query_records_when_monitoring() {
        let db = db();
        db.run_query(&q(5)).unwrap();
        db.run_query(&q(6)).unwrap();
        assert_eq!(db.plan_cache().len(), 1);
        assert_eq!(
            db.plan_cache().get(q(0).fingerprint()).unwrap().executions,
            2
        );
    }

    #[test]
    fn monitoring_off_records_nothing() {
        let db = db();
        db.set_monitoring(false);
        db.run_query(&q(5)).unwrap();
        assert!(db.plan_cache().is_empty());
        assert!(!db.monitoring());
    }

    #[test]
    fn clock_advances() {
        let db = db();
        assert_eq!(db.now(), LogicalTime(0));
        assert_eq!(db.advance_time(), LogicalTime(1));
        assert_eq!(db.now(), LogicalTime(1));
    }

    #[test]
    fn query_returns_matches_and_wall_time() {
        let db = db();
        let r = db.run_query(&q(7)).unwrap();
        assert_eq!(r.output.rows_matched, 1);
        assert!(r.output.sim_cost.ms() > 0.0);
    }

    #[test]
    fn apply_config_through_facade() {
        let db = db();
        let cost = db
            .apply_config(&[ConfigAction::CreateIndex {
                target: smdb_common::ChunkColumnRef::new(0, 0, 0),
                kind: smdb_storage::IndexKind::Hash,
            }])
            .unwrap();
        assert!(cost.ms() > 0.0);
        let config = db.engine().current_config();
        assert_eq!(config.indexes.len(), 1);
    }
}
