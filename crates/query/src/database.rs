//! The execution façade: storage engine + plan cache + monitoring switch.
//!
//! [`Database`] is what both applications (running queries) and the
//! self-management framework (observing and reconfiguring) hold. All
//! members use interior mutability so a shared `Arc<Database>` serves
//! concurrent readers; the framework takes the engine write lock only
//! while applying configuration actions.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use smdb_common::{Cost, LogicalTime, Result};
use smdb_storage::{ConfigAction, ScanOutput, ScanPool, StorageEngine};

use crate::plan_cache::PlanCache;
use crate::query::Query;

/// Result of running one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRunResult {
    /// Engine output including the ground-truth simulated cost.
    pub output: ScanOutput,
    /// Real wall-clock nanoseconds spent in the engine (used by the
    /// overhead experiment, not by the tuners).
    pub wall_ns: u64,
}

/// Cumulative scan-dispatch counters for one database.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Queries executed on the morsel scheduler.
    pub parallel_scans: u64,
    /// Queries executed inline (no pool installed, pool of one thread,
    /// or too few morsels to be worth dispatching).
    pub inline_scans: u64,
    /// Total morsels dispatched across all parallel scans.
    pub morsels: u64,
    /// Chunks skipped by min/max pruning, across all scans.
    pub chunks_pruned: u64,
    /// Chunks whose driving predicate(s) an index probe answered.
    pub chunks_index: u64,
    /// Chunks whose driving selection ran on a batch kernel. With
    /// [`ScanStats::chunks_index`] and [`ScanStats::chunks_scalar`] this
    /// partitions every visited chunk — the per-chunk access-path
    /// decision, observable without touching engine internals.
    pub chunks_kernel: u64,
    /// Chunks whose driving selection fell back to the scalar path.
    pub chunks_scalar: u64,
    /// Batch-kernel invocations (filters, refines, aggregate folds).
    pub kernel_batches: u64,
}

/// A self-manageable database: engine, plan cache, logical clock and the
/// monitoring switch.
pub struct Database {
    engine: RwLock<StorageEngine>,
    plan_cache: Mutex<PlanCache>,
    monitoring: AtomicBool,
    clock: AtomicU64,
    /// Shared morsel scheduler; `None` means every scan runs inline.
    scan_pool: RwLock<Option<Arc<ScanPool>>>,
    /// Chunks per morsel when the pool is installed (0 = whole table,
    /// i.e. effectively inline).
    morsel_chunks: AtomicUsize,
    parallel_scans: AtomicU64,
    inline_scans: AtomicU64,
    morsels_dispatched: AtomicU64,
    chunks_pruned: AtomicU64,
    chunks_index: AtomicU64,
    chunks_kernel: AtomicU64,
    chunks_scalar: AtomicU64,
    kernel_batches: AtomicU64,
}

impl Database {
    /// Wraps an engine with monitoring enabled.
    pub fn new(engine: StorageEngine) -> Arc<Database> {
        Arc::new(Database {
            engine: RwLock::new(engine),
            plan_cache: Mutex::new(PlanCache::default()),
            monitoring: AtomicBool::new(true),
            clock: AtomicU64::new(0),
            scan_pool: RwLock::new(None),
            morsel_chunks: AtomicUsize::new(smdb_storage::parallel::DEFAULT_MORSEL_CHUNKS),
            parallel_scans: AtomicU64::new(0),
            inline_scans: AtomicU64::new(0),
            morsels_dispatched: AtomicU64::new(0),
            chunks_pruned: AtomicU64::new(0),
            chunks_index: AtomicU64::new(0),
            chunks_kernel: AtomicU64::new(0),
            chunks_scalar: AtomicU64::new(0),
            kernel_batches: AtomicU64::new(0),
        })
    }

    /// Installs (or removes, with `None`) the shared morsel scheduler and
    /// sets the morsel granularity. Results are bit-identical either way;
    /// only the simulated latency model changes.
    pub fn set_scan_pool(&self, pool: Option<Arc<ScanPool>>, morsel_chunks: usize) {
        self.morsel_chunks.store(morsel_chunks, Ordering::Relaxed);
        *self.scan_pool.write() = pool;
    }

    /// The installed scan pool, if any.
    pub fn scan_pool(&self) -> Option<Arc<ScanPool>> {
        self.scan_pool.read().clone()
    }

    /// Chunks per morsel configured via [`Database::set_scan_pool`].
    pub fn morsel_chunks(&self) -> usize {
        // ordering: relaxed config read; the value is a standalone
        // granularity knob with no cross-field invariant.
        self.morsel_chunks.load(Ordering::Relaxed)
    }

    /// Scan-dispatch counters accumulated since the last
    /// [`Database::take_scan_stats`] (or ever, when nothing takes),
    /// including the per-chunk access-path partition (pruned / index /
    /// kernel / scalar).
    pub fn scan_stats(&self) -> ScanStats {
        // Relaxed loads throughout: independent statistics counters with
        // no cross-counter invariant a reader could rely on.
        fn read(counter: &AtomicU64) -> u64 {
            // ordering: relaxed statistics read, see scan_stats.
            counter.load(Ordering::Relaxed)
        }
        ScanStats {
            parallel_scans: read(&self.parallel_scans),
            inline_scans: read(&self.inline_scans),
            morsels: read(&self.morsels_dispatched),
            chunks_pruned: read(&self.chunks_pruned),
            chunks_index: read(&self.chunks_index),
            chunks_kernel: read(&self.chunks_kernel),
            chunks_scalar: read(&self.chunks_scalar),
            kernel_batches: read(&self.kernel_batches),
        }
    }

    /// Takes and resets the scan-dispatch counters — the per-bucket read
    /// a control thread does at each bucket close. Each counter is
    /// drained with a single atomic `swap(0)`: a load followed by a
    /// separate zeroing store would lose any increment a worker slips in
    /// between the two, so every count lands in exactly one take (the
    /// sum of all takes plus a final [`Database::scan_stats`] equals the
    /// true total). Counters are independent — a scan finishing
    /// concurrently may straddle two takes, which no reader relies on.
    pub fn take_scan_stats(&self) -> ScanStats {
        fn take(counter: &AtomicU64) -> u64 {
            // ordering: relaxed statistics drain; swap keeps each
            // increment in exactly one take, see take_scan_stats.
            counter.swap(0, Ordering::Relaxed)
        }
        ScanStats {
            parallel_scans: take(&self.parallel_scans),
            inline_scans: take(&self.inline_scans),
            morsels: take(&self.morsels_dispatched),
            chunks_pruned: take(&self.chunks_pruned),
            chunks_index: take(&self.chunks_index),
            chunks_kernel: take(&self.chunks_kernel),
            chunks_scalar: take(&self.chunks_scalar),
            kernel_batches: take(&self.kernel_batches),
        }
    }

    /// Read access to the engine.
    pub fn engine(&self) -> parking_lot::RwLockReadGuard<'_, StorageEngine> {
        self.engine.read()
    }

    /// Write access to the engine (configuration changes).
    pub fn engine_mut(&self) -> parking_lot::RwLockWriteGuard<'_, StorageEngine> {
        self.engine.write()
    }

    /// Access to the plan cache.
    pub fn plan_cache(&self) -> parking_lot::MutexGuard<'_, PlanCache> {
        self.plan_cache.lock()
    }

    /// Turns workload monitoring (plan-cache recording) on or off.
    /// The overhead experiment compares query latency in both modes.
    pub fn set_monitoring(&self, on: bool) {
        self.monitoring.store(on, Ordering::Relaxed);
    }

    /// Whether monitoring is enabled.
    pub fn monitoring(&self) -> bool {
        self.monitoring.load(Ordering::Relaxed)
    }

    /// Current logical time (bucket index).
    pub fn now(&self) -> LogicalTime {
        LogicalTime(self.clock.load(Ordering::Relaxed))
    }

    /// Advances the logical clock by one bucket and returns the new time.
    pub fn advance_time(&self) -> LogicalTime {
        LogicalTime(self.clock.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Sets the logical clock to `at` — recovery only, so a restored
    /// database resumes bucket numbering where the crashed run stopped.
    pub fn restore_clock(&self, at: LogicalTime) {
        // ordering: relaxed clock restore; recovery is single-threaded.
        self.clock.store(at.0, Ordering::Relaxed);
    }

    /// Executes a query: scans the engine and, when monitoring is on,
    /// records the execution in the plan cache.
    pub fn run_query(&self, query: &Query) -> Result<QueryRunResult> {
        let start = Instant::now();
        let pool = self.scan_pool.read().clone();
        let output = {
            let engine = self.engine.read();
            match &pool {
                Some(pool) if pool.threads() > 1 => engine.scan_grouped_parallel(
                    query.table(),
                    query.predicates(),
                    query.aggregate(),
                    query.group_by(),
                    pool,
                    self.morsel_chunks.load(Ordering::Relaxed),
                )?,
                _ => engine.scan_grouped(
                    query.table(),
                    query.predicates(),
                    query.aggregate(),
                    query.group_by(),
                )?,
            }
        };
        self.note_scan_output(&output);
        let wall_ns = start.elapsed().as_nanos() as u64;
        self.record_execution(query, output.sim_cost);
        Ok(QueryRunResult { output, wall_ns })
    }

    /// Folds one finished scan's output into the dispatch counters.
    /// [`Database::run_query`] calls this for scans it executes itself;
    /// a scatter-gather executor that drives the engine through
    /// [`StorageEngine::scan_partials`](smdb_storage::StorageEngine::scan_partials)
    /// calls it so per-shard counters stay complete.
    pub fn note_scan_output(&self, output: &ScanOutput) {
        if output.morsels > 0 {
            // ordering: relaxed statistics add, see note_scan_output.
            self.parallel_scans.fetch_add(1, Ordering::Relaxed);
            self.morsels_dispatched
                // ordering: relaxed statistics add, see note_scan_output.
                .fetch_add(output.morsels, Ordering::Relaxed);
        } else {
            // ordering: relaxed statistics add, see note_scan_output.
            self.inline_scans.fetch_add(1, Ordering::Relaxed);
        }
        // Pure statistics folded from the scan's own output after it
        // completed; no other thread orders against these counters.
        fn bump(counter: &AtomicU64, by: u64) {
            // ordering: relaxed statistics add, see note_scan_output.
            counter.fetch_add(by, Ordering::Relaxed);
        }
        bump(&self.chunks_pruned, output.chunks_pruned);
        bump(&self.chunks_index, output.index_probes);
        bump(&self.chunks_kernel, output.chunks_kernel);
        bump(&self.chunks_scalar, output.chunks_scalar);
        bump(&self.kernel_batches, output.kernel_batches);
    }

    /// Records one execution of `query` at cost `cost` in the plan cache
    /// when monitoring is on. Split out of [`Database::run_query`] so an
    /// external executor (the sharded scatter-gather path) can account
    /// work it routed to this database's engine.
    pub fn record_execution(&self, query: &Query, cost: Cost) {
        if self.monitoring() {
            self.plan_cache.lock().record(query, cost, self.now());
        }
    }

    /// Applies configuration actions under the engine write lock,
    /// returning the summed one-time reconfiguration cost. A failed
    /// batch leaves the successfully applied prefix in place.
    pub fn apply_config(&self, actions: &[ConfigAction]) -> Result<Cost> {
        self.engine.write().apply_all(actions)
    }

    /// Like [`Database::apply_config`], but atomic: a failed batch is
    /// fully undone under the same write lock, so concurrent readers
    /// never observe a half-applied batch that will not complete.
    pub fn apply_config_atomic(&self, actions: &[ConfigAction]) -> Result<Cost> {
        self.engine.write().apply_all_atomic(actions)
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("monitoring", &self.monitoring())
            .field("now", &self.now())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::{ColumnId, TableId};
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{ColumnDef, DataType, ScanPredicate, Schema, Table};

    fn db() -> Arc<Database> {
        let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        let table =
            Table::from_columns("t", schema, vec![ColumnValues::Int((0..100).collect())], 50)
                .unwrap();
        let mut engine = StorageEngine::default();
        engine.create_table(table).unwrap();
        Database::new(engine)
    }

    fn q(v: i64) -> Query {
        Query::new(
            TableId(0),
            "t",
            vec![ScanPredicate::eq(ColumnId(0), v)],
            None,
            "point",
        )
    }

    #[test]
    fn run_query_records_when_monitoring() {
        let db = db();
        db.run_query(&q(5)).unwrap();
        db.run_query(&q(6)).unwrap();
        assert_eq!(db.plan_cache().len(), 1);
        assert_eq!(
            db.plan_cache().get(q(0).fingerprint()).unwrap().executions,
            2
        );
    }

    #[test]
    fn monitoring_off_records_nothing() {
        let db = db();
        db.set_monitoring(false);
        db.run_query(&q(5)).unwrap();
        assert!(db.plan_cache().is_empty());
        assert!(!db.monitoring());
    }

    #[test]
    fn clock_advances() {
        let db = db();
        assert_eq!(db.now(), LogicalTime(0));
        assert_eq!(db.advance_time(), LogicalTime(1));
        assert_eq!(db.now(), LogicalTime(1));
    }

    #[test]
    fn query_returns_matches_and_wall_time() {
        let db = db();
        let r = db.run_query(&q(7)).unwrap();
        assert_eq!(r.output.rows_matched, 1);
        assert!(r.output.sim_cost.ms() > 0.0);
    }

    #[test]
    fn scan_pool_changes_latency_model_but_nothing_else() {
        let db = db();
        let baseline = db.run_query(&q(7)).unwrap().output;
        assert_eq!(baseline.morsels, 0);
        assert_eq!(baseline.sim_latency, baseline.sim_cost);

        db.set_scan_pool(Some(ScanPool::new(2)), 1);
        let parallel = db.run_query(&q(7)).unwrap().output;
        assert_eq!(parallel.rows_matched, baseline.rows_matched);
        assert_eq!(parallel.agg_value, baseline.agg_value);
        assert_eq!(parallel.sim_cost, baseline.sim_cost);
        assert_eq!(parallel.morsels, 2); // 100 rows / 50-row chunks, 1 chunk per morsel
        assert_ne!(parallel.sim_latency, parallel.sim_cost);

        // A full scan splits into two equal-cost lanes, so the critical
        // path is about half the total work.
        let full = Query::new(TableId(0), "t", vec![], None, "full");
        let out = db.run_query(&full).unwrap().output;
        assert!(out.sim_latency.ms() < out.sim_cost.ms());

        let stats = db.scan_stats();
        assert_eq!(stats.parallel_scans, 2);
        assert_eq!(stats.inline_scans, 1);
        assert_eq!(stats.morsels, 4);

        db.set_scan_pool(None, 4);
        let again = db.run_query(&q(7)).unwrap().output;
        assert_eq!(again, baseline);
    }

    /// Regression test for the bucket-close read-then-zero race: the
    /// old `scan_stats` offered no atomic reset, so a control thread
    /// that loaded the counters and then stored zero would lose every
    /// scan a worker finished between the two. `take_scan_stats` drains
    /// with `swap(0)`, so concurrent takes and scans must conserve the
    /// total: Σ(taken) + residual == queries actually run.
    #[test]
    fn take_scan_stats_loses_nothing_under_concurrent_takes() {
        let db = db();
        const WORKERS: usize = 4;
        const PER_WORKER: u64 = 200;
        let taken = std::thread::scope(|scope| {
            for w in 0..WORKERS {
                let db = Arc::clone(&db);
                scope.spawn(move || {
                    for i in 0..PER_WORKER {
                        db.run_query(&q(((w as u64 + i) % 100) as i64)).unwrap();
                    }
                });
            }
            // The "control thread": drain repeatedly while workers scan.
            let mut sum = ScanStats::default();
            for _ in 0..50 {
                let t = db.take_scan_stats();
                sum.inline_scans += t.inline_scans;
                sum.parallel_scans += t.parallel_scans;
                sum.chunks_kernel += t.chunks_kernel;
                sum.chunks_scalar += t.chunks_scalar;
                std::thread::yield_now();
            }
            sum
        });
        let residual = db.take_scan_stats();
        let total_scans = taken.inline_scans
            + taken.parallel_scans
            + residual.inline_scans
            + residual.parallel_scans;
        assert_eq!(total_scans, (WORKERS as u64) * PER_WORKER);
        assert_eq!(db.scan_stats(), ScanStats::default());
    }

    #[test]
    fn apply_config_through_facade() {
        let db = db();
        let cost = db
            .apply_config(&[ConfigAction::CreateIndex {
                target: smdb_common::ChunkColumnRef::new(0, 0, 0),
                kind: smdb_storage::IndexKind::Hash,
            }])
            .unwrap();
        assert!(cost.ms() > 0.0);
        let config = db.engine().current_config();
        assert_eq!(config.indexes.len(), 1);
    }
}
