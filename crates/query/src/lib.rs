//! # smdb-query — queries, execution and the query plan cache
//!
//! This crate provides the query surface the self-management framework
//! observes (Section II-A(a) of the paper):
//!
//! * [`Query`] — a parameterised predicate scan (+ optional aggregate)
//!   against one table,
//! * [`logical::LogicalTemplate`] — the "abstract logical
//!   representation of query templates" the workload predictor works on:
//!   a query with its literals stripped,
//! * [`plan_cache::PlanCache`] — stores per-template execution
//!   counts and cumulative costs, exactly the information the paper says
//!   workload-driven optimization draws from the plan cache ("in addition
//!   to query plans, information such as the execution time and the
//!   number of executions of the queries is stored"),
//! * [`database::Database`] — the execution façade combining
//!   the storage engine with the plan cache and a *monitoring switch*
//!   used by the ≤1 % overhead experiment (E2),
//! * [`session::Session`] / [`session::ResultOracle`] — per-session
//!   serving statistics with ground-truth result checking, the
//!   correctness witness of the online runtime (reconfiguration must
//!   never change what a query returns).

pub mod database;
pub mod logical;
pub mod plan_cache;
pub mod query;
pub mod session;
pub mod workload_spec;

pub use database::{Database, QueryRunResult, ScanStats};
pub use logical::LogicalTemplate;
pub use plan_cache::{PlanCache, PlanCacheEntry};
pub use query::Query;
pub use session::{result_hash, ExpectedResult, ResultOracle, Session, SessionStats};
pub use workload_spec::{WeightedQuery, Workload};
