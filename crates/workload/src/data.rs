//! Column data generators.

use rand::rngs::StdRng;
use rand::RngExt;
use smdb_storage::value::ColumnValues;

use crate::zipf::Zipf;

/// `n` integers uniform in `[lo, hi]`.
pub fn uniform_ints(rng: &mut StdRng, n: usize, lo: i64, hi: i64) -> ColumnValues {
    assert!(lo <= hi);
    ColumnValues::Int((0..n).map(|_| rng.random_range(lo..=hi)).collect())
}

/// `n` integers Zipf-distributed over `1..=keys` with exponent `s`.
pub fn zipf_ints(rng: &mut StdRng, n: usize, keys: usize, s: f64) -> ColumnValues {
    let z = Zipf::new(keys, s);
    ColumnValues::Int((0..n).map(|_| z.sample(rng) as i64).collect())
}

/// The sorted sequence `0..n` (dense surrogate keys; gives chunk pruning
/// its teeth).
pub fn sorted_ints(n: usize) -> ColumnValues {
    ColumnValues::Int((0..n as i64).collect())
}

/// `n` integers increasing on average (`step_range` per row) — sorted-ish
/// data such as dates correlated with insertion order.
pub fn correlated_ints(rng: &mut StdRng, n: usize, start: i64, step_range: i64) -> ColumnValues {
    let mut v = Vec::with_capacity(n);
    let mut current = start;
    for _ in 0..n {
        v.push(current);
        current += rng.random_range(0..=step_range);
    }
    ColumnValues::Int(v)
}

/// `n` floats uniform in `[lo, hi)`.
pub fn uniform_floats(rng: &mut StdRng, n: usize, lo: f64, hi: f64) -> ColumnValues {
    ColumnValues::Float(
        (0..n)
            .map(|_| lo + rng.random::<f64>() * (hi - lo))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::seeded_rng;
    use smdb_storage::stats::distinct_values;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = seeded_rng(1);
        let ColumnValues::Int(v) = uniform_ints(&mut rng, 1000, 5, 9) else {
            panic!()
        };
        assert!(v.iter().all(|&x| (5..=9).contains(&x)));
        assert_eq!(v.len(), 1000);
    }

    #[test]
    fn zipf_ints_are_skewed() {
        let mut rng = seeded_rng(2);
        let col = zipf_ints(&mut rng, 5000, 100, 1.3);
        let ColumnValues::Int(v) = &col else { panic!() };
        let ones = v.iter().filter(|&&x| x == 1).count();
        assert!(ones > 1000, "hot key count {ones}");
    }

    #[test]
    fn sorted_is_dense_and_ordered() {
        let ColumnValues::Int(v) = sorted_ints(100) else {
            panic!()
        };
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(distinct_values(&ColumnValues::Int(v)), 100);
    }

    #[test]
    fn correlated_is_nondecreasing() {
        let mut rng = seeded_rng(3);
        let ColumnValues::Int(v) = correlated_ints(&mut rng, 500, 10, 3) else {
            panic!()
        };
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(v[0], 10);
    }

    #[test]
    fn floats_in_range() {
        let mut rng = seeded_rng(4);
        let ColumnValues::Float(v) = uniform_floats(&mut rng, 100, 1.0, 2.0) else {
            panic!()
        };
        assert!(v.iter().all(|&x| (1.0..2.0).contains(&x)));
    }
}
