//! A TPC-H-flavoured schema and query templates.
//!
//! Three tables — `lineitem`, `orders`, `customer` — populated with the
//! statistical properties the experiments need: a sorted surrogate key
//! (chunk pruning), Zipf-skewed foreign keys (per-chunk indexing),
//! low-cardinality status columns (dictionary/RLE benefits) and
//! correlated date columns (range pruning). Fourteen parameterised query
//! templates cover point lookups, selective and broad range scans,
//! global aggregations and GROUP BY reports.

use rand::rngs::StdRng;
use rand::RngExt;
use smdb_common::{derive_seed, seeded_rng, Result, TableId};
use smdb_query::Query;
use smdb_storage::{
    Aggregate, AggregateOp, ColumnDef, DataType, PredicateOp, ScanPredicate, Schema, StorageEngine,
    Table,
};

use crate::data;
use crate::zipf::Zipf;

/// Table handles of the generated catalog.
#[derive(Debug, Clone, Copy)]
pub struct TpchCatalog {
    pub lineitem: TableId,
    pub orders: TableId,
    pub customer: TableId,
    /// Rows in `lineitem` (orders has 1/4, customer 1/20).
    pub lineitem_rows: usize,
}

/// Column indices of `lineitem` (keep in sync with [`build_catalog`]).
pub mod li {
    pub const ORDERKEY: u16 = 0;
    pub const PARTKEY: u16 = 1;
    pub const QUANTITY: u16 = 2;
    pub const DISCOUNT: u16 = 3;
    pub const EXTENDEDPRICE: u16 = 4;
    pub const SHIPDATE: u16 = 5;
    pub const RETURNFLAG: u16 = 6;
}

/// Column indices of `orders`.
pub mod ord {
    pub const ORDERKEY: u16 = 0;
    pub const CUSTKEY: u16 = 1;
    pub const STATUS: u16 = 2;
    pub const TOTALPRICE: u16 = 3;
    pub const ORDERDATE: u16 = 4;
}

/// Column indices of `customer`.
pub mod cust {
    pub const CUSTKEY: u16 = 0;
    pub const NATIONKEY: u16 = 1;
    pub const ACCTBAL: u16 = 2;
}

/// Number of part keys (Zipf domain).
pub const PART_KEYS: usize = 200;
/// Number of customer keys per customer row factor.
pub const NATIONS: i64 = 25;
/// Ship/order date domain in days.
pub const DATE_DAYS: i64 = 2400;

/// Builds the three tables into `engine`, deterministically under `seed`.
pub fn build_catalog(
    engine: &mut StorageEngine,
    lineitem_rows: usize,
    chunk_rows: usize,
    seed: u64,
) -> Result<TpchCatalog> {
    let orders_rows = (lineitem_rows / 4).max(1);
    let customer_rows = (lineitem_rows / 20).max(1);

    // lineitem
    let mut rng = seeded_rng(derive_seed(seed, 1));
    let lineitem_schema = Schema::new(vec![
        ColumnDef::new("l_orderkey", DataType::Int),
        ColumnDef::new("l_partkey", DataType::Int),
        ColumnDef::new("l_quantity", DataType::Int),
        ColumnDef::new("l_discount", DataType::Int),
        ColumnDef::new("l_extendedprice", DataType::Float),
        ColumnDef::new("l_shipdate", DataType::Int),
        ColumnDef::new("l_returnflag", DataType::Int),
    ])?;
    let orderkey = {
        // Each order has ~4 line items: orderkey = row / 4 (sorted).
        smdb_storage::value::ColumnValues::Int((0..lineitem_rows as i64).map(|i| i / 4).collect())
    };
    let shipdate = {
        // Dates correlated with orderkey: sorted-ish with noise.
        let step = (DATE_DAYS as f64 / lineitem_rows as f64).max(1e-9);
        smdb_storage::value::ColumnValues::Int(
            (0..lineitem_rows)
                .map(|i| {
                    let base = (i as f64 * step) as i64;
                    (base + rng.random_range(0..30)).min(DATE_DAYS)
                })
                .collect(),
        )
    };
    let lineitem = Table::from_columns(
        "lineitem",
        lineitem_schema,
        vec![
            orderkey,
            data::zipf_ints(&mut rng, lineitem_rows, PART_KEYS, 1.2),
            data::uniform_ints(&mut rng, lineitem_rows, 1, 50),
            data::uniform_ints(&mut rng, lineitem_rows, 0, 10),
            data::uniform_floats(&mut rng, lineitem_rows, 900.0, 105_000.0),
            shipdate,
            data::uniform_ints(&mut rng, lineitem_rows, 0, 2),
        ],
        chunk_rows,
    )?;

    // orders
    let mut rng = seeded_rng(derive_seed(seed, 2));
    let orders_schema = Schema::new(vec![
        ColumnDef::new("o_orderkey", DataType::Int),
        ColumnDef::new("o_custkey", DataType::Int),
        ColumnDef::new("o_status", DataType::Int),
        ColumnDef::new("o_totalprice", DataType::Float),
        ColumnDef::new("o_orderdate", DataType::Int),
    ])?;
    let orders = Table::from_columns(
        "orders",
        orders_schema,
        vec![
            data::sorted_ints(orders_rows),
            data::zipf_ints(&mut rng, orders_rows, customer_rows.max(2), 1.1),
            data::uniform_ints(&mut rng, orders_rows, 0, 3),
            data::uniform_floats(&mut rng, orders_rows, 850.0, 560_000.0),
            data::correlated_ints(&mut rng, orders_rows, 0, 2),
        ],
        chunk_rows,
    )?;

    // customer
    let mut rng = seeded_rng(derive_seed(seed, 3));
    let customer_schema = Schema::new(vec![
        ColumnDef::new("c_custkey", DataType::Int),
        ColumnDef::new("c_nationkey", DataType::Int),
        ColumnDef::new("c_acctbal", DataType::Float),
    ])?;
    let customer = Table::from_columns(
        "customer",
        customer_schema,
        vec![
            data::sorted_ints(customer_rows),
            data::uniform_ints(&mut rng, customer_rows, 0, NATIONS - 1),
            data::uniform_floats(&mut rng, customer_rows, -999.0, 9999.0),
        ],
        chunk_rows,
    )?;

    Ok(TpchCatalog {
        lineitem: engine.create_table(lineitem)?,
        orders: engine.create_table(orders)?,
        customer: engine.create_table(customer)?,
        lineitem_rows,
    })
}

/// Number of query templates.
pub const NUM_TEMPLATES: usize = 14;

/// Parameterised query templates over the catalog.
#[derive(Debug, Clone)]
pub struct TpchTemplates {
    catalog: TpchCatalog,
    part_zipf: Zipf,
}

impl TpchTemplates {
    /// Creates the template set.
    pub fn new(catalog: TpchCatalog) -> Self {
        TpchTemplates {
            catalog,
            part_zipf: Zipf::new(PART_KEYS, 1.2),
        }
    }

    /// The catalog handles.
    pub fn catalog(&self) -> &TpchCatalog {
        &self.catalog
    }

    /// Template names, indexed by template id.
    pub fn names() -> [&'static str; NUM_TEMPLATES] {
        [
            "q1_pricing_by_shipdate",
            "q6_revenue_forecast",
            "order_point_lookup",
            "orders_by_status",
            "customers_by_nation",
            "part_popularity",
            "quantity_band",
            "orders_by_daterange",
            "returnflag_price",
            "orders_by_customer",
            "high_balance_customers",
            "lineitem_key_range",
            "q1_revenue_by_returnflag",
            "order_value_by_status",
        ]
    }

    /// Samples a concrete instance of template `id` (literals drawn from
    /// `rng`).
    pub fn sample(&self, id: usize, rng: &mut StdRng) -> Query {
        let c = &self.catalog;
        let orders_rows = (c.lineitem_rows / 4).max(1) as i64;
        let customer_rows = (c.lineitem_rows / 20).max(1) as i64;
        let names = Self::names();
        match id {
            0 => {
                let cutoff = rng.random_range(DATE_DAYS / 2..DATE_DAYS);
                Query::new(
                    c.lineitem,
                    "lineitem",
                    vec![ScanPredicate::cmp(
                        smdb_common::ColumnId(li::SHIPDATE),
                        PredicateOp::Le,
                        cutoff,
                    )],
                    Some(Aggregate::new(
                        AggregateOp::Sum,
                        smdb_common::ColumnId(li::EXTENDEDPRICE),
                    )),
                    names[0],
                )
            }
            1 => {
                let start = rng.random_range(0..DATE_DAYS - 365);
                let disc = rng.random_range(1..9);
                Query::new(
                    c.lineitem,
                    "lineitem",
                    vec![
                        ScanPredicate::between(
                            smdb_common::ColumnId(li::SHIPDATE),
                            start,
                            start + 365,
                        ),
                        ScanPredicate::between(
                            smdb_common::ColumnId(li::DISCOUNT),
                            disc - 1,
                            disc + 1,
                        ),
                        ScanPredicate::cmp(
                            smdb_common::ColumnId(li::QUANTITY),
                            PredicateOp::Lt,
                            24i64,
                        ),
                    ],
                    Some(Aggregate::new(
                        AggregateOp::Sum,
                        smdb_common::ColumnId(li::EXTENDEDPRICE),
                    )),
                    names[1],
                )
            }
            2 => Query::new(
                c.orders,
                "orders",
                vec![ScanPredicate::eq(
                    smdb_common::ColumnId(ord::ORDERKEY),
                    rng.random_range(0..orders_rows),
                )],
                Some(Aggregate::count()),
                names[2],
            ),
            3 => Query::new(
                c.orders,
                "orders",
                vec![ScanPredicate::eq(
                    smdb_common::ColumnId(ord::STATUS),
                    rng.random_range(0..4i64),
                )],
                Some(Aggregate::count()),
                names[3],
            ),
            4 => Query::new(
                c.customer,
                "customer",
                vec![ScanPredicate::eq(
                    smdb_common::ColumnId(cust::NATIONKEY),
                    rng.random_range(0..NATIONS),
                )],
                Some(Aggregate::new(
                    AggregateOp::Avg,
                    smdb_common::ColumnId(cust::ACCTBAL),
                )),
                names[4],
            ),
            5 => Query::new(
                c.lineitem,
                "lineitem",
                vec![ScanPredicate::eq(
                    smdb_common::ColumnId(li::PARTKEY),
                    self.part_zipf.sample(rng) as i64,
                )],
                Some(Aggregate::count()),
                names[5],
            ),
            6 => {
                let lo = rng.random_range(1..40i64);
                Query::new(
                    c.lineitem,
                    "lineitem",
                    vec![ScanPredicate::between(
                        smdb_common::ColumnId(li::QUANTITY),
                        lo,
                        lo + 10,
                    )],
                    Some(Aggregate::new(
                        AggregateOp::Sum,
                        smdb_common::ColumnId(li::QUANTITY),
                    )),
                    names[6],
                )
            }
            7 => {
                let lo = rng.random_range(0..(2 * orders_rows / 3).max(1));
                Query::new(
                    c.orders,
                    "orders",
                    vec![ScanPredicate::between(
                        smdb_common::ColumnId(ord::ORDERDATE),
                        lo,
                        lo + orders_rows / 10,
                    )],
                    Some(Aggregate::count()),
                    names[7],
                )
            }
            8 => Query::new(
                c.lineitem,
                "lineitem",
                vec![ScanPredicate::eq(
                    smdb_common::ColumnId(li::RETURNFLAG),
                    rng.random_range(0..3i64),
                )],
                Some(Aggregate::new(
                    AggregateOp::Avg,
                    smdb_common::ColumnId(li::EXTENDEDPRICE),
                )),
                names[8],
            ),
            9 => Query::new(
                c.orders,
                "orders",
                vec![ScanPredicate::eq(
                    smdb_common::ColumnId(ord::CUSTKEY),
                    rng.random_range(1..customer_rows.max(2)),
                )],
                Some(Aggregate::count()),
                names[9],
            ),
            10 => Query::new(
                c.customer,
                "customer",
                vec![ScanPredicate::cmp(
                    smdb_common::ColumnId(cust::ACCTBAL),
                    PredicateOp::Gt,
                    rng.random_range(5000..9000) as f64,
                )],
                Some(Aggregate::count()),
                names[10],
            ),
            11 => {
                let max_key = (c.lineitem_rows as i64 / 4).max(2);
                let lo = rng.random_range(0..(max_key * 2 / 3).max(1));
                Query::new(
                    c.lineitem,
                    "lineitem",
                    vec![ScanPredicate::between(
                        smdb_common::ColumnId(li::ORDERKEY),
                        lo,
                        lo + max_key / 20,
                    )],
                    Some(Aggregate::count()),
                    names[11],
                )
            }
            // Q1-style grouped report: revenue per return flag for a
            // shipdate horizon (GROUP BY + SUM).
            12 => {
                let cutoff = rng.random_range(DATE_DAYS / 2..DATE_DAYS);
                Query::new(
                    c.lineitem,
                    "lineitem",
                    vec![ScanPredicate::cmp(
                        smdb_common::ColumnId(li::SHIPDATE),
                        PredicateOp::Le,
                        cutoff,
                    )],
                    Some(Aggregate::new(
                        AggregateOp::Sum,
                        smdb_common::ColumnId(li::EXTENDEDPRICE),
                    )),
                    names[12],
                )
                .with_group_by(smdb_common::ColumnId(li::RETURNFLAG))
            }
            // Mean order value per status over a date window.
            13 => {
                let lo = rng.random_range(0..(2 * orders_rows / 3).max(1));
                Query::new(
                    c.orders,
                    "orders",
                    vec![ScanPredicate::between(
                        smdb_common::ColumnId(ord::ORDERDATE),
                        lo,
                        lo + orders_rows / 5,
                    )],
                    Some(Aggregate::new(
                        AggregateOp::Avg,
                        smdb_common::ColumnId(ord::TOTALPRICE),
                    )),
                    names[13],
                )
                .with_group_by(smdb_common::ColumnId(ord::STATUS))
            }
            _ => panic!("template id {id} out of range (NUM_TEMPLATES = {NUM_TEMPLATES})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (StorageEngine, TpchTemplates) {
        let mut engine = StorageEngine::default();
        let catalog = build_catalog(&mut engine, 8000, 1000, 42).unwrap();
        (engine, TpchTemplates::new(catalog))
    }

    #[test]
    fn catalog_builds_with_expected_shapes() {
        let (engine, templates) = setup();
        let c = templates.catalog();
        assert_eq!(engine.table(c.lineitem).unwrap().rows(), 8000);
        assert_eq!(engine.table(c.orders).unwrap().rows(), 2000);
        assert_eq!(engine.table(c.customer).unwrap().rows(), 400);
        assert_eq!(engine.table(c.lineitem).unwrap().chunk_count(), 8);
    }

    #[test]
    fn all_templates_execute() {
        let (engine, templates) = setup();
        let mut rng = seeded_rng(7);
        for id in 0..NUM_TEMPLATES {
            let q = templates.sample(id, &mut rng);
            let out = engine
                .scan(q.table(), q.predicates(), q.aggregate())
                .unwrap_or_else(|e| panic!("template {id} failed: {e}"));
            assert!(out.sim_cost.ms() > 0.0, "template {id} free?");
        }
    }

    #[test]
    fn templates_are_stable_fingerprints() {
        let (_, templates) = setup();
        let mut rng_a = seeded_rng(1);
        let mut rng_b = seeded_rng(2);
        for id in 0..NUM_TEMPLATES {
            let a = templates.sample(id, &mut rng_a);
            let b = templates.sample(id, &mut rng_b);
            assert_eq!(
                a.fingerprint(),
                b.fingerprint(),
                "template {id} fingerprint varies with literals"
            );
        }
    }

    #[test]
    fn distinct_templates_distinct_fingerprints() {
        let (_, templates) = setup();
        let mut rng = seeded_rng(1);
        let mut fps = std::collections::HashSet::new();
        for id in 0..NUM_TEMPLATES {
            fps.insert(templates.sample(id, &mut rng).fingerprint());
        }
        assert_eq!(fps.len(), NUM_TEMPLATES);
    }

    #[test]
    fn deterministic_catalog() {
        let mut e1 = StorageEngine::default();
        let mut e2 = StorageEngine::default();
        build_catalog(&mut e1, 2000, 500, 5).unwrap();
        build_catalog(&mut e2, 2000, 500, 5).unwrap();
        let q = |e: &StorageEngine| {
            e.scan(
                TableId(0),
                &[ScanPredicate::eq(smdb_common::ColumnId(li::PARTKEY), 1i64)],
                None,
            )
            .unwrap()
            .rows_matched
        };
        assert_eq!(q(&e1), q(&e2));
    }

    #[test]
    fn partkey_column_is_skewed() {
        let (engine, templates) = setup();
        let c = templates.catalog();
        let hot = engine
            .scan(
                c.lineitem,
                &[ScanPredicate::eq(smdb_common::ColumnId(li::PARTKEY), 1i64)],
                None,
            )
            .unwrap()
            .rows_matched;
        let cold = engine
            .scan(
                c.lineitem,
                &[ScanPredicate::eq(
                    smdb_common::ColumnId(li::PARTKEY),
                    PART_KEYS as i64,
                )],
                None,
            )
            .unwrap()
            .rows_matched;
        assert!(hot > cold * 10, "hot {hot} vs cold {cold}");
    }
}
