//! Zipf-distributed sampling over `1..=n`.

use rand::rngs::StdRng;
use rand::RngExt;

/// A Zipf(s) distribution over keys `1..=n`, sampled via a precomputed
/// CDF and binary search.
///
/// ```
/// use smdb_workload::Zipf;
/// use smdb_common::seeded_rng;
/// let zipf = Zipf::new(100, 1.2);
/// let mut rng = seeded_rng(7);
/// let k = zipf.sample(&mut rng);
/// assert!((1..=100).contains(&k));
/// assert!(zipf.pmf(1) > zipf.pmf(100));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution with exponent `s` over `n` keys.
    /// `s = 0` degenerates to uniform; larger `s` means heavier skew.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "n must be positive");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of keys.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Samples a key in `1..=n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        // First index with cdf >= u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Probability mass of key `k` (1-based).
    pub fn pmf(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.cdf.len());
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::seeded_rng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.2);
        let total: f64 = (1..=100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skew_concentrates_mass_on_small_keys() {
        let z = Zipf::new(1000, 1.2);
        let top10: f64 = (1..=10).map(|k| z.pmf(k)).sum();
        assert!(top10 > 0.5, "top-10 mass {top10}");
        let uniform = Zipf::new(1000, 0.0);
        let top10u: f64 = (1..=10).map(|k| uniform.pmf(k)).sum();
        assert!((top10u - 0.01).abs() < 1e-9);
    }

    #[test]
    fn samples_in_range_and_skewed() {
        let z = Zipf::new(50, 1.5);
        let mut rng = seeded_rng(9);
        let mut counts = vec![0usize; 51];
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=50).contains(&k));
            counts[k] += 1;
        }
        assert!(counts[1] > counts[10]);
        assert!(counts[1] > 2000);
    }

    #[test]
    fn deterministic_sampling() {
        let z = Zipf::new(10, 1.0);
        let a: Vec<usize> = {
            let mut rng = seeded_rng(4);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = seeded_rng(4);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
