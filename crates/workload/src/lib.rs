//! # smdb-workload — deterministic data and workload generators
//!
//! The paper's target workloads are analytic, skewed and volatile. This
//! crate generates all three properties deterministically (seeded):
//!
//! * [`zipf`] — a Zipf sampler producing the skewed access patterns that
//!   motivate per-chunk physical design (Section II-B: "especially useful
//!   for skewed data which is often found in real-world systems"),
//! * [`data`] — column generators (uniform, Zipf, sorted, correlated),
//! * [`tpch`] — a TPC-H-flavoured schema (lineitem / orders / customer)
//!   with a dozen parameterised query templates,
//! * [`generators`] — workload mix schedules: stationary, drifting and
//!   seasonal mixes that drive the forecasting and robustness
//!   experiments.

pub mod data;
pub mod generators;
pub mod tpch;
pub mod zipf;

pub use generators::{MixSchedule, WorkloadGenerator};
pub use tpch::{TpchCatalog, TpchTemplates};
pub use zipf::Zipf;
