//! Workload mix schedules: stationary, drifting and seasonal.
//!
//! A schedule assigns each logical-time bucket a probability mix over the
//! query templates; the generator samples concrete queries from that mix.
//! Drift and seasonality are what the workload predictor (and the
//! robustness experiments) must cope with.

use rand::rngs::StdRng;
use rand::RngExt;
use smdb_common::{derive_seed, seeded_rng};
use smdb_query::Query;

use crate::tpch::{TpchTemplates, NUM_TEMPLATES};

/// How the template mix evolves over buckets.
#[derive(Debug, Clone)]
pub enum MixSchedule {
    /// The same mix in every bucket.
    Stationary(Vec<f64>),
    /// Linear interpolation from `from` to `to` over `buckets`.
    Drift {
        from: Vec<f64>,
        to: Vec<f64>,
        buckets: u64,
    },
    /// Alternates between two mixes with the given period (first half of
    /// each period uses `day`, second half `night`).
    Seasonal {
        day: Vec<f64>,
        night: Vec<f64>,
        period: u64,
    },
}

impl MixSchedule {
    /// A uniform mix over all templates.
    pub fn uniform() -> MixSchedule {
        MixSchedule::Stationary(vec![1.0; NUM_TEMPLATES])
    }

    /// The (unnormalised) mix in effect at `bucket`.
    pub fn mix_at(&self, bucket: u64) -> Vec<f64> {
        match self {
            MixSchedule::Stationary(mix) => mix.clone(),
            MixSchedule::Drift { from, to, buckets } => {
                let t = if *buckets == 0 {
                    1.0
                } else {
                    (bucket as f64 / *buckets as f64).min(1.0)
                };
                from.iter()
                    .zip(to)
                    .map(|(f, g)| f * (1.0 - t) + g * t)
                    .collect()
            }
            MixSchedule::Seasonal { day, night, period } => {
                if (bucket % period) < period / 2 {
                    day.clone()
                } else {
                    night.clone()
                }
            }
        }
    }
}

/// Samples concrete queries per bucket according to a mix schedule.
pub struct WorkloadGenerator {
    templates: TpchTemplates,
    schedule: MixSchedule,
    seed: u64,
}

impl WorkloadGenerator {
    /// Creates a generator.
    pub fn new(templates: TpchTemplates, schedule: MixSchedule, seed: u64) -> Self {
        WorkloadGenerator {
            templates,
            schedule,
            seed,
        }
    }

    /// The template set.
    pub fn templates(&self) -> &TpchTemplates {
        &self.templates
    }

    /// The schedule.
    pub fn schedule(&self) -> &MixSchedule {
        &self.schedule
    }

    /// Samples `count` queries for `bucket`. Deterministic in
    /// `(seed, bucket)` — regenerating a bucket yields identical queries.
    pub fn bucket_queries(&self, bucket: u64, count: usize) -> Vec<Query> {
        let mut rng = seeded_rng(derive_seed(self.seed, bucket));
        let mix = self.schedule.mix_at(bucket);
        assert_eq!(mix.len(), NUM_TEMPLATES, "mix arity");
        let total: f64 = mix.iter().sum();
        (0..count)
            .map(|_| {
                let id = sample_mix(&mix, total, &mut rng);
                self.templates.sample(id, &mut rng)
            })
            .collect()
    }

    /// The expected per-template counts for `bucket` given `count`
    /// samples (used by experiments as the ground-truth mix).
    pub fn expected_counts(&self, bucket: u64, count: usize) -> Vec<f64> {
        let mix = self.schedule.mix_at(bucket);
        let total: f64 = mix.iter().sum();
        mix.iter().map(|m| m / total * count as f64).collect()
    }
}

fn sample_mix(mix: &[f64], total: f64, rng: &mut StdRng) -> usize {
    let mut u: f64 = rng.random::<f64>() * total;
    for (i, &m) in mix.iter().enumerate() {
        u -= m;
        if u <= 0.0 {
            return i;
        }
    }
    mix.len() - 1
}

/// A point-lookup-heavy mix (OLTP-ish).
pub fn point_heavy_mix() -> Vec<f64> {
    let mut mix = vec![0.5; NUM_TEMPLATES];
    mix[2] = 8.0; // order_point_lookup
    mix[5] = 6.0; // part_popularity
    mix[9] = 4.0; // orders_by_customer
    mix
}

/// An analytics-heavy mix (OLAP-ish).
pub fn scan_heavy_mix() -> Vec<f64> {
    let mut mix = vec![0.5; NUM_TEMPLATES];
    mix[0] = 6.0; // q1 pricing
    mix[1] = 8.0; // q6 revenue
    mix[7] = 4.0; // date range
    mix[8] = 3.0; // returnflag
    mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::build_catalog;
    use smdb_storage::StorageEngine;

    fn generator(schedule: MixSchedule) -> WorkloadGenerator {
        let mut engine = StorageEngine::default();
        let catalog = build_catalog(&mut engine, 2000, 500, 1).unwrap();
        WorkloadGenerator::new(TpchTemplates::new(catalog), schedule, 99)
    }

    #[test]
    fn stationary_mix_constant() {
        let s = MixSchedule::uniform();
        assert_eq!(s.mix_at(0), s.mix_at(1000));
    }

    #[test]
    fn drift_interpolates() {
        let from = vec![1.0; NUM_TEMPLATES];
        let mut to = vec![0.0; NUM_TEMPLATES];
        to[3] = 12.0;
        let s = MixSchedule::Drift {
            from: from.clone(),
            to: to.clone(),
            buckets: 10,
        };
        assert_eq!(s.mix_at(0), from);
        assert_eq!(s.mix_at(10), to);
        let mid = s.mix_at(5);
        assert!((mid[3] - 6.5).abs() < 1e-9);
        assert!((mid[0] - 0.5).abs() < 1e-9);
        // Clamped beyond the horizon.
        assert_eq!(s.mix_at(100), to);
    }

    #[test]
    fn seasonal_alternates() {
        let day = point_heavy_mix();
        let night = scan_heavy_mix();
        let s = MixSchedule::Seasonal {
            day: day.clone(),
            night: night.clone(),
            period: 4,
        };
        assert_eq!(s.mix_at(0), day);
        assert_eq!(s.mix_at(1), day);
        assert_eq!(s.mix_at(2), night);
        assert_eq!(s.mix_at(3), night);
        assert_eq!(s.mix_at(4), day);
    }

    #[test]
    fn bucket_queries_deterministic_and_mixed() {
        let g = generator(MixSchedule::uniform());
        let a = g.bucket_queries(3, 50);
        let b = g.bucket_queries(3, 50);
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
        // Different buckets differ.
        let c = g.bucket_queries(4, 50);
        assert!(a.iter().zip(&c).any(|(x, y)| x != y));
    }

    #[test]
    fn point_heavy_mix_skews_sampling() {
        let g = generator(MixSchedule::Stationary(point_heavy_mix()));
        let queries = g.bucket_queries(0, 400);
        let lookups = queries
            .iter()
            .filter(|q| q.label() == "order_point_lookup")
            .count();
        assert!(lookups > 60, "lookups {lookups} of 400");
    }

    #[test]
    fn expected_counts_normalised() {
        let g = generator(MixSchedule::uniform());
        let counts = g.expected_counts(0, 120);
        assert_eq!(counts.len(), NUM_TEMPLATES);
        assert!((counts.iter().sum::<f64>() - 120.0).abs() < 1e-9);
    }
}
