//! Criterion bench for E1: the full self-management pipeline — bucket
//! ingestion (observe) and a complete multi-feature tuning pass.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use smdb_bench::setup::{build_database, sample_queries, DEFAULT_SEED};
use smdb_core::driver::Driver;
use smdb_core::FeatureKind;
use smdb_cost::CalibratedCostModel;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");

    group.bench_function("observe_bucket_100q", |b| {
        let (db, templates) = build_database(8_000, 1_000, DEFAULT_SEED);
        let driver = Driver::builder(db)
            .features(vec![FeatureKind::Indexing])
            .build();
        let mix = vec![1.0; smdb_workload::tpch::NUM_TEMPLATES];
        let queries = sample_queries(&templates, &mix, 100, DEFAULT_SEED);
        b.iter(|| black_box(driver.run_bucket(&queries).unwrap()));
    });

    group.bench_function("full_tuning_pass", |b| {
        let (db, templates) = build_database(8_000, 1_000, DEFAULT_SEED);
        let model = Arc::new(CalibratedCostModel::new());
        let driver = Driver::builder(db)
            .learned_estimator(model)
            .features(vec![FeatureKind::Indexing, FeatureKind::Compression])
            .build();
        let mix = vec![1.0; smdb_workload::tpch::NUM_TEMPLATES];
        let queries = sample_queries(&templates, &mix, 100, DEFAULT_SEED);
        driver.run_bucket(&queries).unwrap();
        b.iter(|| black_box(driver.force_tune().unwrap()));
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
