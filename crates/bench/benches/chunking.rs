//! Criterion bench for E7: point-lookup latency by physical design —
//! unindexed scan vs per-chunk index, per encoding.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use smdb_common::{ChunkColumnRef, ColumnId};
use smdb_storage::value::ColumnValues;
use smdb_storage::{
    ColumnDef, ConfigAction, DataType, EncodingKind, IndexKind, ScanPredicate, Schema,
    StorageEngine, Table,
};

fn engine_with(enc: Option<EncodingKind>, indexed: bool) -> StorageEngine {
    let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).expect("valid");
    let table = Table::from_columns(
        "t",
        schema,
        vec![ColumnValues::Int((0..32_000).map(|i| i % 800).collect())],
        4_000,
    )
    .expect("builds");
    let mut engine = StorageEngine::default();
    let t = engine.create_table(table).expect("unique");
    for chunk in 0..8u32 {
        let target = ChunkColumnRef::new(t.0, 0, chunk);
        if let Some(kind) = enc {
            engine
                .apply_action(&ConfigAction::SetEncoding { target, kind })
                .expect("encodes");
        }
        if indexed {
            engine
                .apply_action(&ConfigAction::CreateIndex {
                    target,
                    kind: IndexKind::Hash,
                })
                .expect("indexes");
        }
    }
    engine
}

fn bench_chunking(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunking");
    let pred = [ScanPredicate::eq(ColumnId(0), 97i64)];
    for (name, enc, indexed) in [
        ("scan_raw", None, false),
        ("scan_dict", Some(EncodingKind::Dictionary), false),
        ("scan_rle", Some(EncodingKind::RunLength), false),
        ("probe_hash", None, true),
        ("probe_hash_on_dict", Some(EncodingKind::Dictionary), true),
    ] {
        let engine = engine_with(enc, indexed);
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    engine
                        .scan(smdb_common::TableId(0), &pred, None)
                        .unwrap()
                        .rows_matched,
                )
            })
        });
    }

    // Composite (multi-attribute) probe vs single-column probe + refine
    // on a conjunctive two-column equality query.
    {
        let schema = Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("b", DataType::Int),
        ])
        .expect("valid");
        let table = Table::from_columns(
            "t2",
            schema,
            vec![
                ColumnValues::Int((0..32_000).map(|i| i % 800).collect()),
                ColumnValues::Int((0..32_000).map(|i| (i * 7) % 900).collect()),
            ],
            4_000,
        )
        .expect("builds");
        let preds = [
            ScanPredicate::eq(ColumnId(0), 97i64),
            ScanPredicate::eq(ColumnId(1), 679i64),
        ];
        for (name, kind) in [
            ("pair_single_hash", IndexKind::Hash),
            (
                "pair_composite_hash",
                IndexKind::CompositeHash {
                    second: ColumnId(1),
                },
            ),
        ] {
            let mut engine = StorageEngine::default();
            let t = engine.create_table(table.clone()).expect("unique");
            for chunk in 0..8u32 {
                engine
                    .apply_action(&ConfigAction::CreateIndex {
                        target: ChunkColumnRef::new(t.0, 0, chunk),
                        kind,
                    })
                    .expect("indexes");
            }
            group.bench_function(name, |b| {
                b.iter(|| black_box(engine.scan(t, &preds, None).unwrap().rows_matched))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_chunking);
criterion_main!(benches);
