//! Criterion bench for E9: cost-model hot paths — feature extraction,
//! what-if estimates, online regression updates.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use smdb_bench::setup::{build_engine, train_calibrated, DEFAULT_SEED};
use smdb_common::seeded_rng;
use smdb_cost::features::{extract_features, ConfigContext};
use smdb_cost::regression::OnlineRegression;
use smdb_cost::{CostEstimator, LogicalCostModel, NUM_FEATURES};

fn bench_cost_models(c: &mut Criterion) {
    let (engine, templates) = build_engine(20_000, 2_000, DEFAULT_SEED);
    let calibrated = train_calibrated(&engine, &templates, 120, DEFAULT_SEED).unwrap();
    let logical = LogicalCostModel::default();
    let config = engine.current_config();
    let ctx = ConfigContext::new(&engine, &config);
    let mut rng = seeded_rng(1);
    let query = templates.sample(1, &mut rng); // q6-style multi-predicate scan

    let mut group = c.benchmark_group("cost_models");
    group.bench_function("extract_features", |b| {
        b.iter(|| black_box(extract_features(&engine, &ctx, &query, &config).unwrap()));
    });
    group.bench_function("logical_query_cost", |b| {
        b.iter(|| black_box(logical.query_cost(&engine, &ctx, &query, &config).unwrap()));
    });
    group.bench_function("calibrated_query_cost", |b| {
        b.iter(|| {
            black_box(
                calibrated
                    .query_cost(&engine, &ctx, &query, &config)
                    .unwrap(),
            )
        });
    });
    group.bench_function("config_context_build", |b| {
        b.iter(|| black_box(ConfigContext::new(&engine, &config)));
    });
    group.bench_function("regression_observe", |b| {
        let mut reg = OnlineRegression::new(NUM_FEATURES, 1e-6).unwrap();
        let x = [1.0; NUM_FEATURES];
        b.iter(|| {
            reg.observe(&x, 2.0).unwrap();
            black_box(reg.observations())
        });
    });
    group.bench_function("regression_fit", |b| {
        let mut reg = OnlineRegression::new(NUM_FEATURES, 1e-6).unwrap();
        let mut rng = seeded_rng(2);
        use rand::RngExt;
        for _ in 0..256 {
            let x: Vec<f64> = (0..NUM_FEATURES).map(|_| rng.random::<f64>()).collect();
            let y = x.iter().sum::<f64>();
            reg.observe(&x, y).unwrap();
        }
        b.iter(|| black_box(reg.fit().unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_cost_models);
criterion_main!(benches);
