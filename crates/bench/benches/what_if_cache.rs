//! Criterion bench for the delta-aware what-if cost cache: full
//! candidate assessment on an E5-sized instance (TPC-H-flavoured
//! catalog, 3-scenario forecast, 100+ index candidates), cold (the
//! pre-delta baseline re-costing every query per candidate) vs warm
//! (shared cache, delta-aware re-costing).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use smdb_bench::setup::{
    build_engine, forecast_from_mixes, full_recompute_benefits, train_calibrated, DEFAULT_CHUNK,
    DEFAULT_ROWS, DEFAULT_SEED,
};
use smdb_core::enumerator::IndexEnumerator;
use smdb_core::{Assessor, Enumerator, WhatIfAssessor};
use smdb_cost::WhatIf;
use smdb_storage::ConfigInstance;
use smdb_workload::generators::{point_heavy_mix, scan_heavy_mix};
use smdb_workload::tpch::NUM_TEMPLATES;

fn bench_what_if_cache(c: &mut Criterion) {
    let (engine, templates) = build_engine(DEFAULT_ROWS, DEFAULT_CHUNK, DEFAULT_SEED);
    let model = train_calibrated(&engine, &templates, 240, DEFAULT_SEED ^ 5).unwrap();
    let forecast = forecast_from_mixes(
        &templates,
        &[
            (vec![1.0; NUM_TEMPLATES], 0.6, 400.0),
            (scan_heavy_mix(), 0.25, 400.0),
            (point_heavy_mix(), 0.15, 400.0),
        ],
        DEFAULT_SEED ^ 21,
    );
    let base = ConfigInstance::default();
    let candidates = IndexEnumerator::default()
        .enumerate(&engine, &base, &forecast)
        .unwrap();
    assert!(
        candidates.len() >= 100,
        "E5-sized instance expected, got {}",
        candidates.len()
    );

    let actions: Vec<_> = candidates.iter().map(|c| c.action.clone()).collect();
    let mut group = c.benchmark_group("what_if_cache");
    group.sample_size(10);
    group.bench_function("assess_cold_full_recompute", |b| {
        let estimator: std::sync::Arc<dyn smdb_cost::CostEstimator> = model.clone();
        b.iter(|| {
            black_box(
                full_recompute_benefits(&engine, &base, &forecast, &actions, estimator.clone())
                    .unwrap(),
            )
        })
    });
    group.bench_function("assess_cold_delta_uncached", |b| {
        let assessor = WhatIfAssessor::new(WhatIf::uncached(model.clone()), 0.9);
        b.iter(|| {
            black_box(
                assessor
                    .assess(&engine, &base, &forecast, &candidates)
                    .unwrap(),
            )
        })
    });
    group.bench_function("assess_warm_cached", |b| {
        let what_if = WhatIf::new(model.clone());
        let assessor = WhatIfAssessor::new(what_if.clone(), 0.9);
        // Warm the shared cache once; steady-state tuning loops re-assess
        // against an already-populated cache.
        assessor
            .assess(&engine, &base, &forecast, &candidates)
            .unwrap();
        b.iter(|| {
            black_box(
                assessor
                    .assess(&engine, &base, &forecast, &candidates)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_what_if_cache);
criterion_main!(benches);
