//! Criterion bench for E4: the ordering ILP vs exhaustive permutations.

#![allow(clippy::needless_range_loop)] // matrix fixtures use explicit indices

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rand::RngExt;
use smdb_common::seeded_rng;
use smdb_lp::branch_bound::IlpOptions;
use smdb_lp::ordering::OrderingProblem;
use smdb_lp::permutation::brute_force_order;

fn problem(n: usize, seed: u64) -> OrderingProblem {
    let mut rng = seeded_rng(seed);
    let mut d = vec![vec![1.0; n]; n];
    let mut w = vec![vec![1.0; n]; n];
    for a in 0..n {
        for b in (a + 1)..n {
            let v: f64 = 0.5 + rng.random::<f64>() * 1.5;
            d[a][b] = v;
            d[b][a] = 1.0 / v;
        }
    }
    for a in 0..n {
        for b in 0..n {
            if a != b {
                w[a][b] = 1.0 + rng.random::<f64>();
            }
        }
    }
    OrderingProblem::new(d, w).expect("square matrices")
}

fn bench_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_ordering");
    for n in [3usize, 4, 5] {
        let p = problem(n, n as u64);
        group.bench_with_input(BenchmarkId::new("ilp_solve", n), &p, |b, p| {
            b.iter(|| black_box(p.solve(&IlpOptions::default()).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("brute_force", n), &p, |b, p| {
            b.iter(|| black_box(brute_force_order(p).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("heuristic", n), &p, |b, p| {
            b.iter(|| black_box(p.heuristic_order()));
        });
    }
    // Model construction scales quadratically; measure it separately.
    for n in [4usize, 8] {
        let p = problem(n, n as u64);
        group.bench_with_input(BenchmarkId::new("build_model", n), &p, |b, p| {
            b.iter(|| black_box(p.build_model().expect("model builds")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ordering);
criterion_main!(benches);
