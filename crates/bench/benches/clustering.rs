//! Criterion bench for E8: k-means template clustering and forecast
//! generation with and without workload compression.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use smdb_common::{Cost, LogicalTime, TableId};
use smdb_forecast::analyzers::MovingAverage;
use smdb_forecast::cluster::cluster_templates;
use smdb_forecast::{PredictorConfig, WorkloadHistory, WorkloadPredictor};
use smdb_query::{PlanCache, Query};
use smdb_storage::ScanPredicate;

fn history(templates: usize, buckets: u64) -> WorkloadHistory {
    let mut cache = PlanCache::new(templates * 2);
    let mut hist = WorkloadHistory::new();
    for bucket in 0..buckets {
        for t in 0..templates {
            let q = Query::new(
                TableId((t % 5) as u32),
                format!("t{}", t % 5),
                vec![ScanPredicate::eq(
                    smdb_common::ColumnId((t % 7) as u16),
                    t as i64,
                )],
                None,
                format!("q{t}"),
            );
            for _ in 0..(1 + t % 4) {
                cache.record(&q, Cost(1.0), LogicalTime(bucket));
            }
        }
        hist.observe(LogicalTime(bucket), &cache.snapshot());
    }
    hist
}

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering");
    let hist = history(200, 10);

    for k in [8usize, 32] {
        group.bench_with_input(BenchmarkId::new("kmeans", k), &k, |b, &k| {
            b.iter(|| black_box(cluster_templates(&hist, k, 42)));
        });
    }
    group.bench_function("predict_uncompressed", |b| {
        let p = WorkloadPredictor::new(
            Box::new(MovingAverage::new(4)),
            PredictorConfig {
                clusters: None,
                samples: 0,
                ..PredictorConfig::default()
            },
        );
        b.iter(|| black_box(p.predict(&hist)));
    });
    group.bench_function("predict_compressed_16", |b| {
        let p = WorkloadPredictor::new(
            Box::new(MovingAverage::new(4)),
            PredictorConfig {
                clusters: Some(16),
                samples: 0,
                ..PredictorConfig::default()
            },
        );
        b.iter(|| black_box(p.predict(&hist)));
    });
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
