//! Criterion bench for E5: selector runtimes on a 120-candidate
//! selection instance.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rand::RngExt;
use smdb_common::{seeded_rng, Cost};
use smdb_core::candidate::{Assessment, Candidate, SelectionInput};
use smdb_core::selectors::{
    GeneticSelector, GreedySelector, OptimalSelector, RiskCriterion, RobustSelector, Selector,
};
use smdb_storage::{ConfigAction, IndexKind};

fn instance(n: usize) -> (Vec<Candidate>, Vec<Assessment>, i64) {
    let mut rng = seeded_rng(42);
    let mut candidates = Vec::with_capacity(n);
    let mut assessments = Vec::with_capacity(n);
    for i in 0..n {
        candidates.push(Candidate::new(
            ConfigAction::CreateIndex {
                target: smdb_common::ChunkColumnRef::new(0, (i % 8) as u16, (i / 8) as u32),
                kind: IndexKind::Hash,
            },
            None,
        ));
        let d1 = rng.random::<f64>() * 20.0 - 2.0;
        let d2 = rng.random::<f64>() * 20.0 - 2.0;
        assessments.push(Assessment {
            candidate: i,
            per_scenario: vec![d1, d2],
            probabilities: vec![0.6, 0.4],
            confidence: 0.9,
            permanent_bytes: 100 + (rng.random::<f64>() * 900.0) as i64,
            one_time_cost: Cost(1.0),
        });
    }
    let budget: i64 = assessments
        .iter()
        .map(|a| a.budget_weight() as i64)
        .sum::<i64>()
        / 3;
    (candidates, assessments, budget)
}

fn bench_selectors(c: &mut Criterion) {
    let (candidates, assessments, budget) = instance(120);
    let input = SelectionInput {
        candidates: &candidates,
        assessments: &assessments,
        memory_budget_bytes: Some(budget),
        scenario_base_costs: None,
    };
    let mut group = c.benchmark_group("selectors");
    group.bench_function("greedy_120", |b| {
        b.iter(|| black_box(GreedySelector.select(&input).unwrap()))
    });
    group.bench_function("optimal_120", |b| {
        b.iter(|| black_box(OptimalSelector.select(&input).unwrap()))
    });
    group.bench_function("robust_worst_case_120", |b| {
        let s = RobustSelector::new(RiskCriterion::WorstCase);
        b.iter(|| black_box(s.select(&input).unwrap()))
    });
    group.bench_function("robust_cvar_120", |b| {
        let s = RobustSelector::new(RiskCriterion::Cvar { alpha: 0.3 });
        b.iter(|| black_box(s.select(&input).unwrap()))
    });
    group.sample_size(10);
    group.bench_function("genetic_120", |b| {
        let s = GeneticSelector::default();
        b.iter(|| black_box(s.select(&input).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_selectors);
criterion_main!(benches);
