//! Criterion bench for the vectorized scan kernels: per-encoding driving
//! filters, residual refinement and (grouped) aggregation, each measured
//! with the kernel layer on and off over the same engine. The calibrate
//! bin derives per-row µs from the same primitives; this bench is the
//! quick interactive view (`cargo bench --bench scan_kernels`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use smdb_common::{ChunkColumnRef, ColumnId};
use smdb_storage::{
    Aggregate, AggregateOp, ColumnDef, ConfigAction, DataType, EncodingKind, PredicateOp,
    ScanPredicate, Schema, StorageEngine, Table,
};

const ROWS: usize = 40_000;
const CHUNK: usize = 4_000;

/// One table exercising every encoding-relevant shape: `k` (1000
/// distinct ints, dictionary/FoR-friendly), `r` (runs of 40, RLE-
/// friendly), `f` (floats), `g` (8 distinct group keys).
fn build() -> (StorageEngine, smdb_common::TableId) {
    let schema = Schema::new(vec![
        ColumnDef::new("k", DataType::Int),
        ColumnDef::new("r", DataType::Int),
        ColumnDef::new("f", DataType::Float),
        ColumnDef::new("g", DataType::Int),
    ])
    .unwrap();
    let table = Table::from_columns(
        "kernel_bench",
        schema,
        vec![
            smdb_storage::value::ColumnValues::Int((0..ROWS as i64).map(|i| i % 1000).collect()),
            smdb_storage::value::ColumnValues::Int((0..ROWS as i64).map(|i| i / 40).collect()),
            smdb_storage::value::ColumnValues::Float((0..ROWS).map(|i| i as f64 * 0.5).collect()),
            smdb_storage::value::ColumnValues::Int((0..ROWS as i64).map(|i| i % 8).collect()),
        ],
        CHUNK,
    )
    .unwrap();
    let mut engine = StorageEngine::default();
    let t = engine.create_table(table).unwrap();
    (engine, t)
}

fn encode_column(
    engine: &mut StorageEngine,
    t: smdb_common::TableId,
    col: u16,
    kind: EncodingKind,
) {
    for chunk in 0..(ROWS / CHUNK) as u32 {
        engine
            .apply_action(&ConfigAction::SetEncoding {
                target: ChunkColumnRef::new(t.0, col, chunk),
                kind,
            })
            .unwrap();
    }
}

fn bench_pair(
    c: &mut Criterion,
    name: &str,
    engine: &mut StorageEngine,
    run: impl Fn(&StorageEngine),
) {
    let mut group = c.benchmark_group("scan_kernels");
    group.sample_size(30);
    engine.set_kernels_enabled(true);
    group.bench_function(format!("{name}/kernel"), |b| b.iter(|| run(engine)));
    engine.set_kernels_enabled(false);
    group.bench_function(format!("{name}/scalar"), |b| b.iter(|| run(engine)));
    engine.set_kernels_enabled(true);
    group.finish();
}

fn bench_scan_kernels(c: &mut Criterion) {
    let pred_k = ScanPredicate::between(ColumnId(0), 100i64, 299i64);
    let pred_r = ScanPredicate::between(ColumnId(1), 100i64, 299i64);
    let pred_f = ScanPredicate::cmp(ColumnId(2), PredicateOp::Lt, 10_000.0);

    // Driving filter per encoding of the predicate column.
    for (label, col, kind, pred) in [
        ("filter_raw", 0u16, None, &pred_k),
        ("filter_dict", 0, Some(EncodingKind::Dictionary), &pred_k),
        (
            "filter_for",
            0,
            Some(EncodingKind::FrameOfReference),
            &pred_k,
        ),
        ("filter_rle", 1, Some(EncodingKind::RunLength), &pred_r),
    ] {
        let (mut engine, t) = build();
        if let Some(kind) = kind {
            encode_column(&mut engine, t, col, kind);
        }
        let preds = [pred.clone()];
        bench_pair(c, label, &mut engine, |e| {
            black_box(e.scan(t, &preds, None).unwrap());
        });
    }

    // Residual refinement: float column refined after the driving filter.
    {
        let (mut engine, t) = build();
        let preds = [pred_k.clone(), pred_f.clone()];
        bench_pair(c, "refine_float", &mut engine, |e| {
            black_box(e.scan(t, &preds, None).unwrap());
        });
    }

    // Ungrouped SUM and grouped SUM over the float column.
    {
        let (mut engine, t) = build();
        let preds = [pred_k.clone()];
        let sum = Aggregate::new(AggregateOp::Sum, ColumnId(2));
        bench_pair(c, "agg_sum", &mut engine, |e| {
            black_box(e.scan(t, &preds, Some(&sum)).unwrap());
        });
        let sum2 = Aggregate::new(AggregateOp::Sum, ColumnId(2));
        bench_pair(c, "group_sum", &mut engine, |e| {
            black_box(
                e.scan_grouped(t, &preds, Some(&sum2), Some(ColumnId(3)))
                    .unwrap(),
            );
        });
    }
}

criterion_group!(benches, bench_scan_kernels);
criterion_main!(benches);
