//! Criterion bench for E2: per-query cost with and without monitoring
//! (plan-cache recording + KPI collection).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use smdb_bench::setup::{build_database, sample_queries, DEFAULT_SEED};

fn bench_overhead(c: &mut Criterion) {
    let (db, templates) = build_database(20_000, 2_000, DEFAULT_SEED);
    let mix = smdb_workload::generators::point_heavy_mix();
    let queries = sample_queries(&templates, &mix, 256, DEFAULT_SEED);

    let mut group = c.benchmark_group("overhead");
    group.bench_function("query_monitoring_off", |b| {
        db.set_monitoring(false);
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(db.run_query(q).unwrap())
        });
    });
    group.bench_function("query_monitoring_on", |b| {
        db.set_monitoring(true);
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(db.run_query(q).unwrap())
        });
    });
    group.bench_function("plan_cache_record_only", |b| {
        let mut cache = smdb_query::PlanCache::default();
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            cache.record(q, smdb_common::Cost(1.0), smdb_common::LogicalTime(0));
            black_box(cache.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
