//! Property tests for the vectorized kernel layer.
//!
//! Three invariants the kernels PR rests on:
//!
//! 1. **Bitwise equivalence** — scalar and vectorized execution produce
//!    identical results (match counts, aggregate bits, group bits,
//!    simulated cost bits) for random data, predicates and aggregates,
//!    across every thread-count × morsel-size combination.
//! 2. **Dictionary code-domain translation** — the dictionary filter
//!    kernel, which lowers value predicates into the sorted code
//!    domain, agrees with the scalar dictionary filter position-for-
//!    position for every `PredicateOp`, including `Between` straddling
//!    dictionary boundaries and values absent from the dictionary.
//! 3. **Fit reproducibility** — the calibration fit is a deterministic
//!    function of its observation set: same seed, same weights, bit for
//!    bit.

use proptest::prelude::*;
use smdb_common::rng::seeded_rng;
use smdb_common::{ChunkColumnRef, ColumnId, Cost, TableId};
use smdb_cost::features::ConfigContext;
use smdb_cost::CalibratedCostModel;
use smdb_query::Query;
use smdb_storage::value::ColumnValues;
use smdb_storage::{
    Aggregate, AggregateOp, ColumnDef, ConfigAction, DataType, EncodingKind, PredicateOp, ScanPool,
    ScanPredicate, Schema, StorageEngine, Table,
};

use rand::RngExt;

const ROWS: usize = 4_096;
const CHUNK: usize = 512;

/// Random five-column table covering every encoding: unencoded int,
/// dictionary, frame-of-reference, run-length, and an unencoded float.
fn random_engine(seed: u64) -> (StorageEngine, TableId) {
    let mut rng = seeded_rng(seed);
    let schema = Schema::new(vec![
        ColumnDef::new("u", DataType::Int),
        ColumnDef::new("d", DataType::Int),
        ColumnDef::new("o", DataType::Int),
        ColumnDef::new("r", DataType::Int),
        ColumnDef::new("f", DataType::Float),
    ])
    .expect("schema builds");
    let mut run_value = 0i64;
    let columns = vec![
        ColumnValues::Int((0..ROWS).map(|_| rng.random_range(0i64..1000)).collect()),
        ColumnValues::Int((0..ROWS).map(|_| rng.random_range(0i64..40)).collect()),
        ColumnValues::Int(
            (0..ROWS)
                .map(|_| 100_000 + rng.random_range(0i64..256))
                .collect(),
        ),
        ColumnValues::Int(
            (0..ROWS)
                .map(|_| {
                    if rng.random_range(0u32..16) == 0 {
                        run_value += 1;
                    }
                    run_value
                })
                .collect(),
        ),
        ColumnValues::Float(
            (0..ROWS)
                .map(|_| rng.random_range(0i64..500) as f64)
                .collect(),
        ),
    ];
    let table = Table::from_columns("props", schema, columns, CHUNK).expect("table builds");
    let mut engine = StorageEngine::default();
    let t = engine.create_table(table).expect("create succeeds");
    for (col, kind) in [
        (1u16, EncodingKind::Dictionary),
        (2, EncodingKind::FrameOfReference),
        (3, EncodingKind::RunLength),
    ] {
        for chunk in 0..(ROWS / CHUNK) as u32 {
            engine
                .apply_action(&ConfigAction::SetEncoding {
                    target: ChunkColumnRef::new(t.0, col, chunk),
                    kind,
                })
                .expect("encoding applies");
        }
    }
    (engine, t)
}

fn predicate(col: u16, op: usize, a: i64, b: i64) -> ScanPredicate {
    let column = ColumnId(col);
    match op {
        0 => ScanPredicate::eq(column, a),
        1 => ScanPredicate::cmp(column, PredicateOp::Lt, a),
        2 => ScanPredicate::cmp(column, PredicateOp::Le, a),
        3 => ScanPredicate::cmp(column, PredicateOp::Gt, a),
        4 => ScanPredicate::cmp(column, PredicateOp::Ge, a),
        _ => ScanPredicate::between(column, a.min(b), a.max(b)),
    }
}

/// Everything in a [`smdb_storage::ScanOutput`] that must be invariant
/// across execution strategies, floats as raw bits.
type Fingerprint = (u64, u64, Option<u64>, Option<Vec<(String, u64)>>, u64);

fn fingerprint(out: &smdb_storage::ScanOutput) -> Fingerprint {
    (
        out.rows_matched,
        out.rows_scanned,
        out.agg_value.map(f64::to_bits),
        out.groups.as_ref().map(|groups| {
            groups
                .iter()
                .map(|(k, v)| (format!("{k:?}"), v.to_bits()))
                .collect()
        }),
        out.sim_cost.ms().to_bits(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn scalar_and_vectorized_agree_across_all_configs(
        seed in 0u64..1_000_000,
        col in 0u16..4,
        op in 0usize..6,
        a in -50i64..100_300,
        b in -50i64..100_300,
        residual in 0usize..3,
        shape in 0usize..3,
    ) {
        let (mut engine, t) = random_engine(seed);
        let mut preds = vec![predicate(col, op, a, b)];
        match residual {
            1 => preds.push(ScanPredicate::cmp(ColumnId(4), PredicateOp::Lt, 250.0)),
            2 => preds.push(predicate((col + 1) % 4, (op + 3) % 6, a / 2, b / 2)),
            _ => {}
        }
        let agg = match shape {
            0 => None,
            _ => Some(Aggregate::new(AggregateOp::Sum, ColumnId(4))),
        };
        let group = (shape == 2).then_some(ColumnId(1));

        engine.set_kernels_enabled(false);
        let reference = fingerprint(
            &engine
                .scan_grouped(t, &preds, agg.as_ref(), group)
                .expect("scalar scan runs"),
        );

        engine.set_kernels_enabled(true);
        for threads in [1usize, 2, 4] {
            for morsel_chunks in [1usize, 16, 0] {
                let out = if threads == 1 {
                    engine.scan_grouped(t, &preds, agg.as_ref(), group)
                } else {
                    let pool = ScanPool::new(threads);
                    engine.scan_grouped_parallel(
                        t,
                        &preds,
                        agg.as_ref(),
                        group,
                        &pool,
                        morsel_chunks,
                    )
                }
                .expect("vectorized scan runs");
                prop_assert_eq!(
                    fingerprint(&out),
                    reference.clone(),
                    "kernels diverged from scalar at {} threads, {} chunks/morsel",
                    threads,
                    morsel_chunks
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dictionary_code_domain_translation_matches_scalar(
        op in 0usize..6,
        k in 0i64..100,
        delta in -1i64..2,
        k2 in 0i64..100,
        delta2 in -1i64..2,
    ) {
        // Dictionary over the multiples of ten 0..=990: `k * 10 + delta`
        // lands exactly on a dictionary boundary, one off it, below the
        // minimum, or above the maximum.
        let schema = Schema::new(vec![ColumnDef::new("d", DataType::Int)]).expect("schema");
        let table = Table::from_columns(
            "dict",
            schema,
            vec![ColumnValues::Int((0..1000i64).map(|i| (i % 100) * 10).collect())],
            250,
        )
        .expect("table builds");
        let mut engine = StorageEngine::default();
        let t = engine.create_table(table).expect("create succeeds");
        for chunk in 0..4 {
            engine
                .apply_action(&ConfigAction::SetEncoding {
                    target: ChunkColumnRef::new(t.0, 0, chunk),
                    kind: EncodingKind::Dictionary,
                })
                .expect("encoding applies");
        }
        let pred = predicate(0, op, k * 10 + delta, k2 * 10 + delta2);

        // Segment level: the kernel's code-domain filter emits exactly
        // the positions of the scalar per-value filter.
        let table = engine.table(t).expect("table exists");
        for (_, chunk) in table.chunks() {
            let seg = chunk.segment(ColumnId(0)).expect("segment exists");
            let mut scalar = Vec::new();
            seg.filter(&pred, &mut scalar);
            let mut kernel = Vec::new();
            prop_assert!(
                smdb_storage::kernels::filter(seg, &pred, &mut kernel),
                "dictionary segments must be fully covered"
            );
            prop_assert_eq!(&kernel, &scalar, "positions diverged for {:?}", &pred);
        }

        // Engine level: the same query end to end, kernels on vs off.
        engine.set_kernels_enabled(false);
        let scalar = engine
            .scan_grouped(t, std::slice::from_ref(&pred), None, None)
            .expect("scalar scan runs");
        engine.set_kernels_enabled(true);
        let kernel = engine
            .scan_grouped(t, std::slice::from_ref(&pred), None, None)
            .expect("kernel scan runs");
        prop_assert_eq!(fingerprint(&kernel), fingerprint(&scalar));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn calibration_fit_is_reproducible_under_fixed_seed(seed in 0u64..1_000_000) {
        // Two fresh models fed the identical seeded observation set must
        // fit identical weights, bit for bit — fit determinism is what
        // makes a gated calibration error reproducible at all.
        let fit = || -> Vec<u64> {
            let (engine, t) = random_engine(seed);
            let config = engine.current_config();
            let ctx = ConfigContext::new(&engine, &config);
            let model = CalibratedCostModel::new();
            let mut rng = seeded_rng(seed ^ 0xC0FFEE);
            for _ in 0..24 {
                let col: u16 = rng.random_range(0u16..4);
                let op: usize = rng.random_range(0usize..6);
                let a: i64 = rng.random_range(-50i64..100_300);
                let b: i64 = rng.random_range(-50i64..100_300);
                let q = Query::new(t, "props", vec![predicate(col, op, a, b)], None, "cal");
                let cost = Cost(rng.random_range(1i64..1000) as f64 * 0.01);
                model
                    .observe_with_ctx(&engine, &ctx, &q, &config, cost)
                    .expect("observation absorbs");
            }
            model.refit().expect("refit succeeds");
            model
                .weights()
                .expect("fit produced weights")
                .into_iter()
                .map(f64::to_bits)
                .collect()
        };
        prop_assert_eq!(fit(), fit());
    }
}
