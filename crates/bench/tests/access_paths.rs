//! Predicted vs executed access paths over the soak query stream.
//!
//! `StorageEngine::predict_access_paths` claims to mirror the
//! executor's per-chunk decision sequence exactly. This test replays
//! the seeded soak stream — the same generator the `soak` binary
//! serves — and asserts the predicted partition (pruned / index /
//! kernel / scalar) equals the executed one on *every* query, across
//! several storage configurations and with the kernel layer both on
//! and off.

use smdb_common::ChunkColumnRef;
use smdb_runtime::{events_database, generate, StreamConfig};
use smdb_storage::{ConfigAction, EncodingKind, IndexKind};

#[test]
fn predicted_paths_match_executed_on_every_soak_query() {
    let (db, table) = events_database(24, 1_000).expect("fixture builds");
    let plan = generate(
        table,
        24_000,
        &StreamConfig {
            seed: 42,
            buckets: 12,
            ..StreamConfig::default()
        },
    );

    // Reconfigurations applied between buckets, shifting chunks across
    // the index / kernel / scalar buckets mid-stream the way the online
    // tuner does: hash indexes on part of `k`, dictionary and run-length
    // encodings elsewhere, and finally the kernel layer switched off.
    let reconfigure = |bucket: usize| -> Vec<ConfigAction> {
        match bucket {
            3 => (0..8)
                .map(|c| ConfigAction::CreateIndex {
                    target: ChunkColumnRef::new(table.0, 0, c),
                    kind: IndexKind::Hash,
                })
                .collect(),
            6 => (8..16)
                .map(|c| ConfigAction::SetEncoding {
                    target: ChunkColumnRef::new(table.0, 0, c),
                    kind: EncodingKind::Dictionary,
                })
                .chain((0..8).map(|c| ConfigAction::SetEncoding {
                    target: ChunkColumnRef::new(table.0, 2, c),
                    kind: EncodingKind::RunLength,
                }))
                .collect(),
            _ => Vec::new(),
        }
    };

    let mut checked = 0usize;
    for (bi, bucket) in plan.iter().enumerate() {
        let actions = reconfigure(bi);
        if !actions.is_empty() {
            db.apply_config(&actions).expect("reconfiguration applies");
        }
        if bi == 9 {
            db.engine_mut().set_kernels_enabled(false);
        }
        for q in &bucket.queries {
            let predicted = db
                .engine()
                .predict_access_paths(q.table(), q.predicates())
                .expect("prediction runs");
            let out = db.run_query(q).expect("query runs").output;
            let executed = (
                out.chunks_pruned,
                out.index_probes,
                out.chunks_kernel,
                out.chunks_scalar,
            );
            assert_eq!(
                (
                    predicted.pruned,
                    predicted.index,
                    predicted.kernel,
                    predicted.scalar
                ),
                executed,
                "bucket {bi}, query {q:?}: predicted != executed (pruned, index, kernel, scalar)"
            );
            checked += 1;
        }
    }
    assert!(checked > 100, "stream produced only {checked} queries");

    // The cumulative partition in scan_stats is the sum of the per-query
    // partitions, and every visited chunk landed in exactly one bucket.
    let stats = db.scan_stats();
    assert_eq!(
        stats.chunks_index + stats.chunks_kernel + stats.chunks_scalar + stats.chunks_pruned,
        checked as u64 * 24,
        "every (query, chunk) pair must be classified exactly once"
    );
    assert!(stats.chunks_kernel > 0, "kernel path never taken");
    assert!(stats.chunks_scalar > 0, "scalar path never taken");
    assert!(stats.chunks_index > 0, "index path never taken");
    assert!(stats.chunks_pruned > 0, "pruning never happened");
}
