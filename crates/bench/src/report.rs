//! Machine-readable experiment metrics.
//!
//! Experiments print human-readable tables; CI additionally wants
//! numbers it can diff and plot. Experiments push key metrics into this
//! process-global sink via [`record`]; the `experiments` binary stamps
//! per-experiment wall time and, when `--json PATH` is given, writes the
//! whole sink as `BENCH_tuning.json`:
//!
//! ```json
//! {"experiments": [{"id": "e5", "wall_ms": 1234.5,
//!                   "cache_hit_rate": 0.93, ...}]}
//! ```
//!
//! Keys within one experiment keep insertion order; recording the same
//! key twice overwrites (an experiment's final number wins).

use std::sync::Mutex;

use smdb_common::json::Json;

static SINK: Mutex<Vec<(String, Vec<(String, Json)>)>> = Mutex::new(Vec::new());

/// Records one metric for an experiment (e.g. `record("e5",
/// "cache_hit_rate", 0.93.into())`).
pub fn record(experiment: &str, key: &str, value: Json) {
    let mut sink = SINK.lock().expect("report sink poisoned");
    let entry = match sink.iter_mut().find(|(id, _)| id == experiment) {
        Some(entry) => entry,
        None => {
            sink.push((experiment.to_string(), Vec::new()));
            sink.last_mut().expect("just pushed")
        }
    };
    match entry.1.iter_mut().find(|(k, _)| k == key) {
        Some(slot) => slot.1 = value,
        None => entry.1.push((key.to_string(), value)),
    }
}

/// Renders everything recorded so far as the `BENCH_tuning.json`
/// document (experiments in first-recorded order).
pub fn to_json() -> Json {
    let sink = SINK.lock().expect("report sink poisoned");
    let experiments = sink
        .iter()
        .map(|(id, metrics)| {
            let mut pairs = vec![("id".to_string(), Json::Str(id.clone()))];
            pairs.extend(metrics.iter().cloned());
            Json::Obj(pairs)
        })
        .collect();
    Json::Obj(vec![("experiments".to_string(), Json::Arr(experiments))])
}

/// Drops all recorded metrics (test isolation).
pub fn reset() {
    SINK.lock().expect("report sink poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_render_round_trip() {
        reset();
        record("e5", "wall_ms", 12.5.into());
        record("e5", "cache_hit_rate", 0.9.into());
        record("e4", "warm_nodes", 7u64.into());
        record("e5", "wall_ms", 13.0.into()); // overwrite wins
        let doc = to_json();
        let exps = doc.get("experiments").unwrap().as_array().unwrap();
        assert_eq!(exps.len(), 2);
        assert_eq!(exps[0].get("id").unwrap().as_str(), Some("e5"));
        assert_eq!(exps[0].get("wall_ms").unwrap().as_f64(), Some(13.0));
        assert_eq!(exps[0].get("cache_hit_rate").unwrap().as_f64(), Some(0.9));
        assert_eq!(exps[1].get("warm_nodes").unwrap().as_u64(), Some(7));
        // Parses back as valid JSON.
        let text = doc.to_string_pretty();
        assert!(smdb_common::json::parse(&text).is_ok());
        reset();
    }
}
