//! Shared experiment setup: database construction, model training,
//! forecast materialisation and workload evaluation.

use std::sync::Arc;

use smdb_common::{seeded_rng, Cost, Result};
use smdb_cost::features::ConfigContext;
use smdb_cost::{CalibratedCostModel, CostEstimator, WhatIf};
use smdb_forecast::{ForecastSet, ScenarioKind, WorkloadScenario};
use smdb_query::{Database, Query, Workload};
use smdb_storage::{ConfigAction, ConfigInstance, StorageEngine};
use smdb_workload::tpch::{build_catalog, TpchTemplates, NUM_TEMPLATES};
use smdb_workload::{MixSchedule, WorkloadGenerator};

/// Standard experiment scale (lineitem rows).
pub const DEFAULT_ROWS: usize = 40_000;
/// Standard chunk size.
pub const DEFAULT_CHUNK: usize = 4_000;
/// Standard seed.
pub const DEFAULT_SEED: u64 = 0x5EED_2019;

/// Builds the TPC-H-flavoured engine + templates.
pub fn build_engine(rows: usize, chunk: usize, seed: u64) -> (StorageEngine, TpchTemplates) {
    let mut engine = StorageEngine::default();
    let catalog = build_catalog(&mut engine, rows, chunk, seed).expect("catalog builds");
    (engine, TpchTemplates::new(catalog))
}

/// Builds a [`Database`] over the standard engine.
pub fn build_database(rows: usize, chunk: usize, seed: u64) -> (Arc<Database>, TpchTemplates) {
    let (engine, templates) = build_engine(rows, chunk, seed);
    (Database::new(engine), templates)
}

/// Trains a calibrated cost model on `n` mixed queries, split across the
/// engine's current configuration *and* a physically diverse variant
/// (indexes of both kinds, alternative encodings, tier moves). Without
/// the variant the regression never observes probe or encoded-scan work
/// and extrapolates blindly — the paper's point that the model must keep
/// learning "during further database operation" as configurations change.
pub fn train_calibrated(
    engine: &StorageEngine,
    templates: &TpchTemplates,
    n: usize,
    seed: u64,
) -> Result<Arc<CalibratedCostModel>> {
    let model = Arc::new(CalibratedCostModel::new());
    let mut rng = seeded_rng(seed);

    // Phase 1: the engine as-is.
    let config = engine.current_config();
    let ctx = smdb_cost::features::ConfigContext::new(engine, &config);
    for i in 0..n / 2 {
        let q = templates.sample(i % NUM_TEMPLATES, &mut rng);
        let out = engine.scan(q.table(), q.predicates(), q.aggregate())?;
        model.observe_with_ctx(engine, &ctx, &q, &config, out.sim_cost)?;
    }

    // Phase 2: a diversified clone exercising every cost path.
    let mut variant = engine.clone();
    for (tid, table) in engine.tables() {
        let chunks = table.chunk_count() as u32;
        for (col, def) in table.schema().iter() {
            if def.data_type == smdb_storage::DataType::Text {
                continue;
            }
            for chunk in 0..chunks.min(4) {
                let target = smdb_common::ChunkColumnRef {
                    table: tid,
                    column: col,
                    chunk: smdb_common::ChunkId(chunk),
                };
                let _ = match chunk % 4 {
                    0 => variant.apply_action(&smdb_storage::ConfigAction::CreateIndex {
                        target,
                        kind: smdb_storage::IndexKind::Hash,
                    }),
                    1 => variant.apply_action(&smdb_storage::ConfigAction::CreateIndex {
                        target,
                        kind: smdb_storage::IndexKind::BTree,
                    }),
                    2 => variant.apply_action(&smdb_storage::ConfigAction::SetEncoding {
                        target,
                        kind: smdb_storage::EncodingKind::Dictionary,
                    }),
                    _ => variant.apply_action(&smdb_storage::ConfigAction::SetEncoding {
                        target,
                        kind: smdb_storage::EncodingKind::RunLength,
                    }),
                };
            }
        }
        if chunks > 4 {
            let _ = variant.apply_action(&smdb_storage::ConfigAction::SetPlacement {
                table: tid,
                chunk: smdb_common::ChunkId(chunks - 1),
                tier: smdb_storage::Tier::Warm,
            });
        }
    }
    let variant_config = variant.current_config();
    let variant_ctx = smdb_cost::features::ConfigContext::new(&variant, &variant_config);
    for i in 0..n.div_ceil(2) {
        let q = templates.sample(i % NUM_TEMPLATES, &mut rng);
        let out = variant.scan(q.table(), q.predicates(), q.aggregate())?;
        model.observe_with_ctx(&variant, &variant_ctx, &q, &variant_config, out.sim_cost)?;
    }
    model.refit()?;
    Ok(model)
}

/// Materialises a single-scenario forecast from a mix: expected
/// per-template weights with one representative query each.
pub fn forecast_from_mix(
    templates: &TpchTemplates,
    mix: &[f64],
    total_queries: f64,
    seed: u64,
) -> ForecastSet {
    let mut rng = seeded_rng(seed);
    let total: f64 = mix.iter().sum();
    let mut workload = Workload::default();
    for (id, &m) in mix.iter().enumerate() {
        let weight = m / total * total_queries;
        if weight > 0.0 {
            workload.push(templates.sample(id, &mut rng), weight);
        }
    }
    ForecastSet {
        scenarios: vec![WorkloadScenario {
            kind: ScenarioKind::Expected,
            name: "expected".into(),
            probability: 1.0,
            workload,
        }],
    }
}

/// Materialises a multi-scenario forecast from several
/// `(mix, probability, total_queries)` triples (first is the expected
/// scenario). Scenario volume is controlled by the per-scenario total.
pub fn forecast_from_mixes(
    templates: &TpchTemplates,
    mixes: &[(Vec<f64>, f64, f64)],
    seed: u64,
) -> ForecastSet {
    let mut scenarios = Vec::new();
    for (i, (mix, p, total_queries)) in mixes.iter().enumerate() {
        let single = forecast_from_mix(templates, mix, *total_queries, seed + i as u64);
        scenarios.push(WorkloadScenario {
            kind: if i == 0 {
                ScenarioKind::Expected
            } else {
                ScenarioKind::Sampled
            },
            name: format!("scenario_{i}"),
            probability: *p,
            workload: single.scenarios[0].workload.clone(),
        });
    }
    let mut set = ForecastSet { scenarios };
    set.normalize();
    set
}

/// Applies tier pressure: the second half of `lineitem`'s chunks start on
/// the cold tier with the buffer pool off — an inherited, misconfigured
/// state that gives the placement and buffer-pool features real work.
/// Returns a hot-tier capacity that lets placement bring back only part
/// of the cold data (so the constraint binds).
pub fn apply_pressure(engine: &mut StorageEngine, templates: &TpchTemplates) -> i64 {
    let lineitem = templates.catalog().lineitem;
    let chunks = engine.table(lineitem).unwrap().chunk_count() as u32;
    for chunk in chunks / 2..chunks {
        engine
            .apply_action(&smdb_storage::ConfigAction::SetPlacement {
                table: lineitem,
                chunk: smdb_common::ChunkId(chunk),
                tier: smdb_storage::Tier::Cold,
            })
            .unwrap();
    }
    engine
        .apply_action(&smdb_storage::ConfigAction::SetKnob {
            knob: smdb_storage::KnobKind::BufferPoolMb,
            value: 0.0,
        })
        .unwrap();
    let report = engine.memory_report();
    // Room for roughly a third of the cold data to come back hot.
    (report.hot_bytes() + report.nonhot_bytes() / 3) as i64
}

/// Ground-truth cost of a weighted workload on an engine: executes each
/// representative query once and multiplies by its weight.
pub fn ground_truth_cost(engine: &StorageEngine, workload: &Workload) -> Result<Cost> {
    let mut total = Cost::ZERO;
    for wq in workload.queries() {
        let out = engine.scan(
            wq.query.table(),
            wq.query.predicates(),
            wq.query.aggregate(),
        )?;
        total += out.sim_cost * wq.weight;
    }
    Ok(total)
}

/// Ground-truth cost of a workload under a hypothetical configuration:
/// clones the engine, applies the diff, executes.
pub fn ground_truth_cost_under(
    engine: &StorageEngine,
    workload: &Workload,
    config: &ConfigInstance,
) -> Result<Cost> {
    let mut clone = engine.clone();
    let actions = clone.current_config().diff(config);
    clone.apply_all(&actions)?;
    ground_truth_cost(&clone, workload)
}

/// The textbook what-if assessment baseline: re-cost *every* query of
/// every scenario under every candidate's hypothetical configuration —
/// no footprints, no cache, a fresh catalog walk per candidate. This is
/// what `WhatIfAssessor` did before delta-aware costing; E5 and the
/// `what_if_cache` bench measure the new path against it. Returns
/// per-candidate per-scenario benefits `Σ w·(base − hypo)` accumulated
/// in workload order (bit-compatible with the delta path).
pub fn full_recompute_benefits(
    engine: &StorageEngine,
    base: &ConfigInstance,
    scenarios: &ForecastSet,
    actions: &[ConfigAction],
    estimator: Arc<dyn CostEstimator>,
) -> Result<Vec<Vec<f64>>> {
    let what_if = WhatIf::uncached(estimator);
    let base_ctx = ConfigContext::new(engine, base);
    let mut base_rows: Vec<Vec<f64>> = Vec::with_capacity(scenarios.len());
    for s in scenarios.iter() {
        let mut rows = Vec::with_capacity(s.workload.queries().len());
        for wq in s.workload.queries() {
            rows.push(what_if.query_cost(engine, &base_ctx, &wq.query, base)?.ms());
        }
        base_rows.push(rows);
    }
    let mut out = Vec::with_capacity(actions.len());
    for action in actions {
        let mut hypo = base.clone();
        hypo.apply(action);
        let hypo_ctx = ConfigContext::new(engine, &hypo);
        let mut per_scenario = Vec::with_capacity(scenarios.len());
        for (s, rows) in scenarios.iter().zip(&base_rows) {
            let mut benefit = 0.0;
            for (wq, &b) in s.workload.queries().iter().zip(rows) {
                let h = what_if
                    .query_cost(engine, &hypo_ctx, &wq.query, &hypo)?
                    .ms();
                benefit += (b - h) * wq.weight;
            }
            per_scenario.push(benefit);
        }
        out.push(per_scenario);
    }
    Ok(out)
}

/// Samples `count` concrete queries from a stationary mix.
pub fn sample_queries(
    templates: &TpchTemplates,
    mix: &[f64],
    count: usize,
    seed: u64,
) -> Vec<Query> {
    let generator = WorkloadGenerator::new(
        templates.clone(),
        MixSchedule::Stationary(mix.to_vec()),
        seed,
    );
    generator.bucket_queries(0, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_cost::{CostEstimator, LogicalCostModel};

    #[test]
    fn standard_setup_builds() {
        let (engine, templates) = build_engine(4_000, 500, 1);
        assert_eq!(
            engine.table(templates.catalog().lineitem).unwrap().rows(),
            4_000
        );
    }

    #[test]
    fn forecast_from_mix_weights_sum() {
        let (_, templates) = build_engine(2_000, 500, 1);
        let mix = vec![1.0; NUM_TEMPLATES];
        let f = forecast_from_mix(&templates, &mix, 120.0, 7);
        let w = f.expected().unwrap().workload.total_weight();
        assert!((w - 120.0).abs() < 1e-9);
    }

    #[test]
    fn ground_truth_under_config_does_not_mutate() {
        let (engine, templates) = build_engine(2_000, 500, 1);
        let mix = vec![1.0; NUM_TEMPLATES];
        let f = forecast_from_mix(&templates, &mix, 10.0, 7);
        let workload = &f.expected().unwrap().workload;
        let before = engine.current_config();
        let mut config = before.clone();
        config.indexes.insert(
            smdb_common::ChunkColumnRef::new(templates.catalog().lineitem.0, 1, 0),
            smdb_storage::IndexKind::Hash,
        );
        let base = ground_truth_cost(&engine, workload).unwrap();
        let tuned = ground_truth_cost_under(&engine, workload, &config).unwrap();
        assert!(tuned.ms() < base.ms());
        assert_eq!(engine.current_config(), before);
    }

    #[test]
    fn calibrated_training_converges_reasonably() {
        let (engine, templates) = build_engine(4_000, 500, 1);
        let model = train_calibrated(&engine, &templates, 120, 3).unwrap();
        let config = engine.current_config();
        let ctx = smdb_cost::features::ConfigContext::new(&engine, &config);
        let mut rng = seeded_rng(99);
        let mut rel_err_sum = 0.0;
        let mut n = 0;
        for id in 0..NUM_TEMPLATES {
            let q = templates.sample(id, &mut rng);
            let actual = engine
                .scan(q.table(), q.predicates(), q.aggregate())
                .unwrap()
                .sim_cost;
            let pred = model.query_cost(&engine, &ctx, &q, &config).unwrap();
            if actual.ms() > 0.1 {
                rel_err_sum += ((pred.ms() - actual.ms()) / actual.ms()).abs();
                n += 1;
            }
        }
        let mean_rel_err = rel_err_sum / n as f64;
        // Selectivity estimation noise keeps this from being tiny, but
        // the calibrated model should be in the right ballpark.
        assert!(mean_rel_err < 0.8, "mean rel err {mean_rel_err}");

        // And it must beat the logical model on encodings-blind cases.
        let logical = LogicalCostModel::default();
        let _ = logical; // compared in experiment E9
    }
}
