//! The experiment suite E1–E11 (see `DESIGN.md` §5 and
//! `EXPERIMENTS.md`). Each module prints the table(s) for one
//! experiment; `run` dispatches by id.

pub mod calibration;
pub mod e10_stability;
pub mod e1_end_to_end;
pub mod e2_overhead;
pub mod e3_dependence;
pub mod e4_lp_ordering;
pub mod e5_selectors;
pub mod e6_robustness;
pub mod e7_chunking;
pub mod e8_clustering;
pub mod e9_cost_models;

/// All experiment ids in order. `calibration` (E11) runs last: it
/// measures wall-clock, so it benefits from a warmed process.
pub const ALL: [&str; 11] = [
    "e1",
    "e2",
    "e3",
    "e4",
    "e5",
    "e6",
    "e7",
    "e8",
    "e9",
    "e10",
    "calibration",
];

/// Runs one experiment by id. Returns `false` for unknown ids.
pub fn run(id: &str) -> bool {
    match id {
        "calibration" => calibration::run(),
        "e1" => e1_end_to_end::run(),
        "e2" => e2_overhead::run(),
        "e3" => e3_dependence::run(),
        "e4" => e4_lp_ordering::run(),
        "e5" => e5_selectors::run(),
        "e6" => e6_robustness::run(),
        "e7" => e7_chunking::run(),
        "e8" => e8_clustering::run(),
        "e9" => e9_cost_models::run(),
        "e10" => e10_stability::run(),
        _ => return false,
    }
    true
}
