//! E11 — measured cost-model calibration (Section V: "at database
//! system start, a minimal set of queries is run to create training
//! data"). Times the per-term probe grid wall-clock, fits the
//! calibrated model on the measurements, and prints the per-term
//! weights and sim-vs-measured errors. The recorded
//! `sim_vs_measured_err_*` metrics are bound-gated at ≤ 30 %.

use crate::calibrate::{self, DEFAULT_REPEATS};
use crate::table::TableBuilder;

fn f3(v: f64) -> String {
    format!("{v:.3}")
}

pub fn run() {
    println!("\n=== E11: measured cost-model calibration ===\n");
    let report = calibrate::run_calibration(DEFAULT_REPEATS).expect("calibration runs");

    let mut table =
        TableBuilder::new(&["term", "weight (ms/unit)", "sim-vs-measured err", "samples"]);
    for term in &report.terms {
        table.row(vec![
            term.term.to_string(),
            format!("{:.6}", term.weight_ms_per_unit),
            f3(term.median_rel_err),
            term.samples.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "{} observations, max term err {:.3}, estimator version {} -> {}, \
         what-if cache {} -> {} entries after refit ({})",
        report.observations,
        report.max_term_err,
        report.version_before,
        report.version_after,
        report.cache_entries_warm,
        report.cache_entries_after_refit,
        if report.cache_flushed() {
            "flushed"
        } else {
            "NOT FLUSHED"
        },
    );
    calibrate::record_report(&report);
}
