//! E6 — robust configurations under workload uncertainty (Sections II-C,
//! II-D(c)): risk-averse selectors sacrifice a little expected-case
//! performance to bound the worst case across forecast scenarios.

use smdb_common::Result;
use smdb_core::enumerator::IndexEnumerator;
use smdb_core::selectors::{GreedySelector, RiskCriterion, RobustSelector, Selector};

/// The true expected-case baseline: scores candidates by their
/// desirability in the *expected scenario only*, ignoring the rest of the
/// forecast distribution — what a non-robust tuner that only looks at the
/// point forecast would do.
struct ExpectedOnlyGreedy;

impl Selector for ExpectedOnlyGreedy {
    fn name(&self) -> &str {
        "expected_only"
    }
    fn select(&self, input: &smdb_core::SelectionInput<'_>) -> Result<Vec<usize>> {
        // Reuse the budget/group-aware greedy frame with a scenario-0 score.
        let mut scored: Vec<(usize, f64)> = input
            .assessments
            .iter()
            .enumerate()
            .map(|(i, a)| (i, a.per_scenario[0]))
            .filter(|&(_, d)| d > 0.0)
            .collect();
        scored.sort_by(|a, b| {
            let ra = a.1 / input.assessments[a.0].budget_weight().max(1e-9);
            let rb = b.1 / input.assessments[b.0].budget_weight().max(1e-9);
            rb.total_cmp(&ra)
        });
        let mut chosen = Vec::new();
        let mut used = 0.0;
        let mut groups = std::collections::HashSet::new();
        let budget = input.memory_budget_bytes.map(|b| b as f64);
        for (i, _) in scored {
            if let Some(g) = input.candidates[i].exclusive_group {
                if groups.contains(&g) {
                    continue;
                }
            }
            let w = input.assessments[i].budget_weight();
            if let Some(b) = budget {
                if used + w > b + 1e-6 {
                    continue;
                }
            }
            if let Some(g) = input.candidates[i].exclusive_group {
                groups.insert(g);
            }
            used += w;
            chosen.push(i);
        }
        Ok(chosen)
    }
}
use smdb_core::{Assessor, Enumerator, SelectionInput, WhatIfAssessor};
use smdb_cost::WhatIf;
use smdb_storage::ConfigInstance;
use smdb_workload::generators::{point_heavy_mix, scan_heavy_mix};

use crate::setup::{
    build_engine, forecast_from_mixes, ground_truth_cost_under, train_calibrated, DEFAULT_CHUNK,
    DEFAULT_ROWS, DEFAULT_SEED,
};
use crate::table::{f2, TableBuilder};

pub fn run() {
    println!("\n=== E6: robust vs expected-case selection under workload shift ===\n");
    let (engine, templates) = build_engine(DEFAULT_ROWS, DEFAULT_CHUNK, DEFAULT_SEED);
    let model = train_calibrated(&engine, &templates, 240, DEFAULT_SEED ^ 6).unwrap();
    let what_if = WhatIf::new(model);

    // Scenario set: the expected mix is scan-heavy, but with meaningful
    // probability the workload shifts point-heavy or doubles in volume.
    let scan = scan_heavy_mix();
    let point = point_heavy_mix();
    let forecast = forecast_from_mixes(
        &templates,
        &[
            (scan.clone(), 0.55, 300.0),
            (point.clone(), 0.25, 300.0),
            (scan.clone(), 0.20, 900.0), // 3x volume surge
        ],
        DEFAULT_SEED ^ 17,
    );
    println!(
        "Scenarios: {} (expected scan-heavy 55%, shift point-heavy 25%, surge 20%)\n",
        forecast.len()
    );

    let base = ConfigInstance::default();
    let candidates = IndexEnumerator::default()
        .enumerate(&engine, &base, &forecast)
        .unwrap();
    let assessor = WhatIfAssessor::new(what_if, 0.9);
    let assessments = assessor
        .assess(&engine, &base, &forecast, &candidates)
        .unwrap();
    let base_costs = assessor.scenario_costs(&engine, &base, &forecast).unwrap();
    let total_bytes: f64 = assessments.iter().map(|a| a.budget_weight()).sum();
    let budget = (total_bytes * 0.2) as i64;

    let selectors: Vec<(&str, Box<dyn Selector>)> = vec![
        (
            "expected-scenario-only greedy",
            Box::new(ExpectedOnlyGreedy),
        ),
        ("probability-weighted greedy", Box::new(GreedySelector)),
        (
            "robust mean-variance (λ=1)",
            Box::new(RobustSelector::new(RiskCriterion::MeanVariance {
                lambda: 1.0,
            })),
        ),
        (
            "robust worst-case",
            Box::new(RobustSelector::new(RiskCriterion::WorstCase)),
        ),
        (
            "robust CVaR(α=0.3)",
            Box::new(RobustSelector::new(RiskCriterion::Cvar { alpha: 0.3 })),
        ),
    ];

    let mut table = TableBuilder::new(&[
        "selector",
        "chosen",
        "expected-scenario cost (ms)",
        "worst-scenario cost (ms)",
        "cost std across scenarios",
    ]);

    for (name, selector) in &selectors {
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: Some(budget),
            scenario_base_costs: Some(base_costs.clone()),
        };
        let chosen = selector.select(&input).unwrap();
        let mut config = base.clone();
        for &i in &chosen {
            config.apply(&candidates[i].action);
        }
        // Ground-truth evaluation of the chosen config per scenario.
        let mut costs = Vec::new();
        for s in forecast.iter() {
            costs.push(
                ground_truth_cost_under(&engine, &s.workload, &config)
                    .unwrap()
                    .ms(),
            );
        }
        let expected_cost = costs[0];
        let worst = costs.iter().copied().fold(f64::MIN, f64::max);
        let mean = costs.iter().sum::<f64>() / costs.len() as f64;
        let std =
            (costs.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / costs.len() as f64).sqrt();
        table.row(vec![
            name.to_string(),
            chosen.len().to_string(),
            f2(expected_cost),
            f2(worst),
            f2(std),
        ]);
    }
    table.print();
    println!(
        "\n(Robust selectors should show equal-or-worse expected cost but lower worst-case\n cost / variance than the expected-case selector — the paper's robustness story.)"
    );
}
