//! E3 — automatic dependence analysis (Section III-A): impact ratios
//! `W∅/W_A` and the dependence matrix `d_{A,B}`, determined automatically
//! from what-if workload costs.

use smdb_core::tuner::standard_tuner;
use smdb_core::{ConstraintSet, FeatureKind, MultiFeatureTuner};
use smdb_cost::WhatIf;

use crate::report;
use crate::setup::{
    build_engine, forecast_from_mix, train_calibrated, DEFAULT_CHUNK, DEFAULT_ROWS, DEFAULT_SEED,
};
use crate::table::{f2, f3, TableBuilder};

pub fn run() {
    println!("\n=== E3: automatic impact & dependence analysis (Section III-A) ===\n");
    let (mut engine, templates) = build_engine(DEFAULT_ROWS, DEFAULT_CHUNK, DEFAULT_SEED);
    let hot_capacity = crate::setup::apply_pressure(&mut engine, &templates);
    let model = train_calibrated(&engine, &templates, 240, DEFAULT_SEED ^ 3).unwrap();
    let what_if = WhatIf::new(model);

    let features = [
        FeatureKind::Indexing,
        FeatureKind::Compression,
        FeatureKind::Placement,
        FeatureKind::BufferPool,
    ];
    let tuners = features
        .iter()
        .map(|&f| standard_tuner(f, what_if.clone()))
        .collect();
    let multi = MultiFeatureTuner::new(tuners, what_if.clone());

    // Blended HTAP mix: analytic scans (compression / placement /
    // buffer work) plus selective point lookups (index work).
    let mix: Vec<f64> = smdb_workload::generators::scan_heavy_mix()
        .iter()
        .zip(&smdb_workload::generators::point_heavy_mix())
        .map(|(a, b)| a + b)
        .collect();
    let forecast = forecast_from_mix(&templates, &mix, 300.0, DEFAULT_SEED ^ 9);
    let constraints = ConstraintSet {
        index_memory_bytes: Some(8 * 1024 * 1024),
        hot_tier_bytes: Some(hot_capacity),
        ..ConstraintSet::default()
    };

    // The "unoptimized" reference is the inherited (pressured) state.
    let base = engine.current_config();
    let report = multi
        .analyze(&engine, &forecast, &base, &constraints)
        .unwrap();

    println!("W_empty (no optimization): {:.2} ms\n", report.w_empty.ms());

    // All tuners share what_if's cost cache; the |S|² pair sweep is where
    // the delta-aware cache earns its keep.
    if let Some(stats) = what_if.cache_stats() {
        println!(
            "Shared what-if cache over the analysis: {} hits / {} misses ({:.1}% hit rate)\n",
            stats.hits,
            stats.misses,
            stats.hit_rate() * 100.0
        );
        report::record("e3", "cache_hits", stats.hits.into());
        report::record("e3", "cache_misses", stats.misses.into());
        report::record("e3", "cache_hit_rate", stats.hit_rate().into());
    }

    let mut t1 = TableBuilder::new(&["feature A", "W_A (ms)", "impact W_empty/W_A"]);
    for (i, f) in report.features.iter().enumerate() {
        t1.row(vec![
            f.to_string(),
            f2(report.w_single[i].ms()),
            f3(report.impact[i]),
        ]);
    }
    t1.print();

    println!("\nPairwise workload costs W_A,B (tune row feature first, column second):");
    let mut t2 = TableBuilder::new(
        &std::iter::once("A \\ B")
            .chain(report.features.iter().map(|f| f.label()))
            .collect::<Vec<_>>(),
    );
    for (a, fa) in report.features.iter().enumerate() {
        let mut row = vec![fa.to_string()];
        for b in 0..report.features.len() {
            row.push(if a == b {
                "-".into()
            } else {
                f2(report.w_pair[a][b].ms())
            });
        }
        t2.row(row);
    }
    t2.print();

    println!("\nDependence ratios d_A,B = W_B,A / W_A,B (> 1: tune A before B):");
    let mut t3 = TableBuilder::new(
        &std::iter::once("A \\ B")
            .chain(report.features.iter().map(|f| f.label()))
            .collect::<Vec<_>>(),
    );
    for (a, fa) in report.features.iter().enumerate() {
        let mut row = vec![fa.to_string()];
        for b in 0..report.features.len() {
            row.push(if a == b {
                "-".into()
            } else {
                f3(report.dependence[a][b])
            });
        }
        t3.row(row);
    }
    t3.print();

    println!("\nDetected order preferences (|d - 1| > 0.02):");
    for a in 0..report.features.len() {
        for b in (a + 1)..report.features.len() {
            let d = report.dependence[a][b];
            if (d - 1.0).abs() > 0.02 {
                let (first, second) = if d > 1.0 { (a, b) } else { (b, a) };
                println!(
                    "  {} before {}  (d_{{{},{}}} = {:.3})",
                    report.features[first],
                    report.features[second],
                    report.features[a].label(),
                    report.features[b].label(),
                    d
                );
            } else {
                println!(
                    "  {} and {} are order-insensitive (d = {:.3})",
                    report.features[a], report.features[b], d
                );
            }
        }
    }
}
