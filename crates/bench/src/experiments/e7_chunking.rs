//! E7 — per-chunk vs per-table physical design on skewed data (Section
//! II-B): "the system can decide to create indexes only on the frequently
//! accessed and most beneficial chunks to save memory. This approach is
//! especially useful for skewed data."
//!
//! Setup: an append-ordered events table with a unique clustered key
//! (so point lookups are highly selective and chunk pruning leaves
//! exactly one chunk to search) and Zipf-skewed access over *chunks* —
//! recent chunks are hot, old ones are rarely touched.

use rand::RngExt;
use smdb_common::{seeded_rng, ChunkColumnRef, ColumnId, Cost};
use smdb_query::{Query, Workload};
use smdb_storage::value::ColumnValues;
use smdb_storage::{
    ColumnDef, ConfigAction, DataType, IndexKind, ScanPredicate, Schema, StorageEngine, Table,
};
use smdb_workload::Zipf;

use crate::setup::{ground_truth_cost, DEFAULT_SEED};
use crate::table::{bytes_h, f2, TableBuilder};

const ROWS: usize = 64_000;
const CHUNK_ROWS: usize = 4_000;
const CHUNKS: usize = ROWS / CHUNK_ROWS;

fn build() -> (StorageEngine, smdb_common::TableId) {
    // Unique clustered key (an event id): pruning sends every point
    // lookup to exactly one chunk; without an index that chunk is
    // scanned, with one it is probed.
    let keys: Vec<i64> = (0..ROWS as i64).collect();
    let values: Vec<f64> = (0..ROWS).map(|i| i as f64).collect();
    let schema = Schema::new(vec![
        ColumnDef::new("key", DataType::Int),
        ColumnDef::new("payload", DataType::Float),
    ])
    .expect("schema valid");
    let table = Table::from_columns(
        "events",
        schema,
        vec![ColumnValues::Int(keys), ColumnValues::Float(values)],
        CHUNK_ROWS,
    )
    .expect("table builds");
    let mut engine = StorageEngine::default();
    let id = engine.create_table(table).expect("unique");
    (engine, id)
}

pub fn run() {
    println!("\n=== E7: per-chunk vs per-table index decisions on skewed data ===\n");
    let (engine, table_id) = build();
    let chunks = engine.table(table_id).unwrap().chunk_count() as u32;

    // Zipf-skewed access over chunks: the most recent chunk is hottest
    // ("skewed data which is often found in real-world systems"), the
    // key within a chunk is uniform.
    let mut rng = seeded_rng(DEFAULT_SEED ^ 0x77E7);
    let zipf = Zipf::new(CHUNKS, 2.0);
    let mut workload = Workload::default();
    for _ in 0..400 {
        // Zipf rank 1 = newest chunk.
        let rank = zipf.sample(&mut rng);
        let chunk = CHUNKS - rank;
        let key = chunk * CHUNK_ROWS + rng.random_range(0..CHUNK_ROWS);
        workload.push(
            Query::new(
                table_id,
                "events",
                vec![ScanPredicate::eq(ColumnId(0), key as i64)],
                None,
                "point_by_key",
            ),
            1.0,
        );
    }

    let index_chunk = |engine: &mut StorageEngine, chunk: u32| -> Cost {
        engine
            .apply_action(&ConfigAction::CreateIndex {
                target: ChunkColumnRef {
                    table: table_id,
                    column: ColumnId(0),
                    chunk: smdb_common::ChunkId(chunk),
                },
                kind: IndexKind::Hash,
            })
            .expect("index builds")
    };

    // (a) No index.
    let base_cost = ground_truth_cost(&engine, &workload).unwrap();

    // (b) Per-table: index every chunk.
    let mut full = engine.clone();
    let mut full_reconf = Cost::ZERO;
    for chunk in 0..chunks {
        full_reconf += index_chunk(&mut full, chunk);
    }
    let full_cost = ground_truth_cost(&full, &workload).unwrap();
    let full_mem = full.memory_report().index_bytes;

    // (c) Per-chunk: rank chunks by measured benefit, take until 90 % of
    // the per-table benefit is captured.
    let mut gains: Vec<(u32, f64, Cost)> = (0..chunks)
        .map(|chunk| {
            let mut one = engine.clone();
            let reconf = index_chunk(&mut one, chunk);
            let cost = ground_truth_cost(&one, &workload).unwrap();
            (chunk, base_cost.ms() - cost.ms(), reconf)
        })
        .collect();
    gains.sort_by(|a, b| b.1.total_cmp(&a.1));

    let full_benefit = base_cost.ms() - full_cost.ms();
    let mut partial = engine.clone();
    let mut partial_reconf = Cost::ZERO;
    let mut captured = 0.0;
    let mut used_chunks = 0;
    let mut largest_step = 0.0f64;
    for &(chunk, gain, reconf) in &gains {
        if captured >= 0.9 * full_benefit || gain <= 0.0 {
            break;
        }
        partial_reconf += index_chunk(&mut partial, chunk);
        largest_step = largest_step.max(reconf.ms());
        captured += gain;
        used_chunks += 1;
    }
    let partial_cost = ground_truth_cost(&partial, &workload).unwrap();
    let partial_mem = partial.memory_report().index_bytes;

    let mut table = TableBuilder::new(&[
        "strategy",
        "indexed chunks",
        "workload cost (ms)",
        "speedup",
        "index memory",
        "reconf cost (ms)",
    ]);
    table.row(vec![
        "no index".into(),
        "0".into(),
        f2(base_cost.ms()),
        "1.00x".into(),
        "0 B".into(),
        "0.00".into(),
    ]);
    table.row(vec![
        format!("per-table (all {chunks})"),
        chunks.to_string(),
        f2(full_cost.ms()),
        format!("{:.2}x", base_cost.ms() / full_cost.ms().max(1e-9)),
        bytes_h(full_mem as u64),
        f2(full_reconf.ms()),
    ]);
    table.row(vec![
        "per-chunk (hot chunks)".into(),
        used_chunks.to_string(),
        f2(partial_cost.ms()),
        format!("{:.2}x", base_cost.ms() / partial_cost.ms().max(1e-9)),
        bytes_h(partial_mem as u64),
        f2(partial_reconf.ms()),
    ]);
    table.print();

    println!(
        "\nPer-chunk captures {:.0}% of the per-table benefit with {:.0}% of its index\nmemory and {:.0}% of its reconfiguration cost ({used_chunks} of {chunks} chunks indexed).",
        (base_cost.ms() - partial_cost.ms()) / full_benefit.max(1e-9) * 100.0,
        partial_mem as f64 / full_mem.max(1) as f64 * 100.0,
        partial_reconf.ms() / full_reconf.ms().max(1e-9) * 100.0,
    );
    println!(
        "Largest single chunk-wise step: {:.2} ms vs {:.2} ms applying the whole table at once.",
        largest_step,
        full_reconf.ms()
    );
}
