//! E10 — reconfiguration costs prevent configuration thrash (Section
//! II-D(b)): "reconfiguration costs can be used to balance performance
//! improvements and reconfigurations to identify minimally invasive
//! changes".

use rand::RngExt;
use smdb_common::{seeded_rng, Cost};
use smdb_core::tuner::standard_tuner;
use smdb_core::{ConstraintSet, FeatureKind};
use smdb_cost::WhatIf;

use crate::setup::{
    build_engine, forecast_from_mix, ground_truth_cost, train_calibrated, DEFAULT_CHUNK,
    DEFAULT_ROWS, DEFAULT_SEED,
};
use crate::table::{f2, TableBuilder};

pub fn run() {
    println!("\n=== E10: reconfiguration-cost-aware tuning avoids config thrash ===\n");
    let (engine, templates) = build_engine(DEFAULT_ROWS, DEFAULT_CHUNK, DEFAULT_SEED);
    let model = train_calibrated(&engine, &templates, 240, DEFAULT_SEED ^ 10).unwrap();
    let what_if = WhatIf::new(model);

    let constraints = ConstraintSet {
        index_memory_bytes: Some(6 * 1024 * 1024),
        ..ConstraintSet::default()
    };
    // Epochs 0-3 are scan-heavy; at epoch 4 the workload genuinely
    // shifts point-heavy (worth re-tuning). Afterwards only small
    // literal drift (every 4 epochs) and per-epoch weight jitter occur —
    // marginal changes a reconfiguration-aware tuner should ride out.
    let scan_mix = smdb_workload::generators::scan_heavy_mix();
    let point_mix = smdb_workload::generators::point_heavy_mix();
    let epochs = 20u64;

    let mut table = TableBuilder::new(&[
        "reconf weight",
        "epochs w/ changes",
        "total actions",
        "total reconf cost (ms)",
        "final workload cost (ms)",
    ]);

    for (name, weight) in [
        ("0 (ignore reconf)", 0.0),
        ("4 (balanced)", 4.0),
        ("25 (conservative)", 25.0),
    ] {
        let mut live = engine.clone();
        let mut tuner = standard_tuner(FeatureKind::Indexing, what_if.clone());
        tuner.reconfiguration_weight = weight;
        tuner.benefit_horizon = 10.0; // configs persist ~10 epochs

        let mut epochs_with_changes = 0usize;
        let mut total_actions = 0usize;
        let mut total_reconf = Cost::ZERO;
        let mut rng = seeded_rng(DEFAULT_SEED ^ 0xE10);
        for epoch in 0..epochs {
            let base_mix = if epoch < 4 { &scan_mix } else { &point_mix };
            // Per-epoch weight jitter: pure noise.
            let noisy_mix: Vec<f64> = base_mix
                .iter()
                .map(|m| (m * (0.85 + rng.random::<f64>() * 0.3)).max(0.01))
                .collect();
            // Mix weights jitter every epoch (pure noise); the concrete
            // literals drift only every 4 epochs (real, modest change) —
            // except one minor template whose literals wander every epoch
            // (a marginal re-tuning opportunity the gate should ignore).
            let mut forecast =
                forecast_from_mix(&templates, &noisy_mix, 60.0, DEFAULT_SEED + epoch / 4);
            {
                let scenario = &mut forecast.scenarios[0];
                let mut wander = seeded_rng(DEFAULT_SEED ^ (epoch * 1337));
                let mut queries: Vec<_> = scenario.workload.queries().to_vec();
                for wq in &mut queries {
                    if wq.query.label() == "quantity_band" {
                        wq.query = templates.sample(6, &mut wander);
                    }
                }
                scenario.workload = smdb_query::Workload::new(queries);
            }
            let current = live.current_config();
            let proposal = tuner
                .propose(&live, &current, &forecast, &constraints)
                .unwrap();
            if proposal.accepted && !proposal.actions.is_empty() {
                epochs_with_changes += 1;
                total_actions += proposal.actions.len();
                total_reconf += live.apply_all(&proposal.actions).unwrap();
            }
        }

        let final_forecast =
            forecast_from_mix(&templates, &point_mix, 60.0, DEFAULT_SEED + epochs / 4);
        let final_cost =
            ground_truth_cost(&live, &final_forecast.expected().unwrap().workload).unwrap();
        table.row(vec![
            name.into(),
            format!("{epochs_with_changes}/{epochs}"),
            total_actions.to_string(),
            f2(total_reconf.ms()),
            f2(final_cost.ms()),
        ]);
    }
    table.print();
    println!(
        "\n(With weight 0 the tuner chases forecast noise every epoch; with a positive\n weight it converges after the first pass and only re-tunes when benefits\n genuinely outweigh reconfiguration costs — 'minimally invasive changes'.)"
    );
}
