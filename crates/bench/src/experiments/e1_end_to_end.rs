//! E1 — Figure 1 reproduced behaviourally: the full component pipeline
//! (plan cache → predictor → tuners → organizer → executor → feedback
//! loop) running end to end, with workload cost dropping after tuning.

use std::sync::Arc;

use smdb_core::driver::OrderingPolicy;
use smdb_core::{ConstraintSet, Driver, FeatureKind};
use smdb_cost::CalibratedCostModel;

use crate::setup::{build_database, sample_queries, DEFAULT_CHUNK, DEFAULT_ROWS, DEFAULT_SEED};
use crate::table::{f2, f3, TableBuilder};

pub fn run() {
    println!("\n=== E1: end-to-end self-management pipeline (Figure 1) ===\n");
    let (db, templates) = build_database(DEFAULT_ROWS, DEFAULT_CHUNK, DEFAULT_SEED);
    let model = Arc::new(CalibratedCostModel::new());
    let driver = Driver::builder(db.clone())
        .learned_estimator(model.clone())
        .features(vec![
            FeatureKind::Indexing,
            FeatureKind::Compression,
            FeatureKind::Placement,
            FeatureKind::BufferPool,
        ])
        .ordering_policy(OrderingPolicy::LpOptimized)
        .constraints(ConstraintSet {
            index_memory_bytes: Some(12 * 1024 * 1024),
            ..ConstraintSet::default()
        })
        .build();

    // Blended HTAP mix: analytic scans and selective point lookups, so
    // all four features have real work to do.
    let mix: Vec<f64> = smdb_workload::generators::scan_heavy_mix()
        .iter()
        .zip(&smdb_workload::generators::point_heavy_mix())
        .map(|(a, b)| a + b)
        .collect();
    let queries_per_bucket = 200;

    let mut table = TableBuilder::new(&[
        "bucket",
        "phase",
        "queries",
        "bucket cost (ms)",
        "mean resp (ms)",
        "plan-cache templates",
        "cost-model obs",
    ]);

    // Phase 1: observe.
    let mut pre_tune_cost = 0.0;
    for bucket in 0..4u64 {
        let queries = sample_queries(&templates, &mix, queries_per_bucket, DEFAULT_SEED + bucket);
        let report = driver.run_bucket(&queries).unwrap();
        pre_tune_cost = report.bucket_cost.ms();
        table.row(vec![
            bucket.to_string(),
            "observe".into(),
            report.queries_run.to_string(),
            f2(report.bucket_cost.ms()),
            f3(driver.kpis().mean_response().ms()),
            db.plan_cache().len().to_string(),
            model.observations().to_string(),
        ]);
    }

    // First tuning pass (forced; the organizer path is exercised in its
    // own tests). The cost model has only observed the *untuned*
    // configuration so far, so it prices encodings but cannot yet price
    // index probes on encoded data.
    let tuning = driver.force_tune().unwrap();

    // Phase 2: keep serving — the model now observes the tuned
    // configuration online (the paper's adaptive cost estimation).
    for bucket in 4..8u64 {
        let queries = sample_queries(&templates, &mix, queries_per_bucket, DEFAULT_SEED + bucket);
        let report = driver.run_bucket(&queries).unwrap();
        table.row(vec![
            bucket.to_string(),
            "tuned #1".into(),
            report.queries_run.to_string(),
            f2(report.bucket_cost.ms()),
            f3(driver.kpis().mean_response().ms()),
            db.plan_cache().len().to_string(),
            model.observations().to_string(),
        ]);
    }

    // Second pass: with post-reconfiguration observations absorbed, the
    // model can now price the remaining features (e.g. indexing on
    // dictionary-encoded chunks).
    let tuning2 = driver.force_tune().unwrap();
    let mut post_tune_cost = 0.0;
    for bucket in 8..12u64 {
        let queries = sample_queries(&templates, &mix, queries_per_bucket, DEFAULT_SEED + bucket);
        let report = driver.run_bucket(&queries).unwrap();
        post_tune_cost = report.bucket_cost.ms();
        table.row(vec![
            bucket.to_string(),
            "tuned #2".into(),
            report.queries_run.to_string(),
            f2(report.bucket_cost.ms()),
            f3(driver.kpis().mean_response().ms()),
            db.plan_cache().len().to_string(),
            model.observations().to_string(),
        ]);
    }
    table.print();

    for (pass, t) in [(1, &tuning), (2, &tuning2)] {
        println!("\nTuning pass #{pass} (trigger {:?}):", t.trigger);
        let mut t2 = TableBuilder::new(&[
            "step",
            "feature",
            "candidates",
            "chosen",
            "pred. benefit (ms)",
            "reconf cost (ms)",
            "accepted",
        ]);
        for (i, p) in t.proposals.iter().enumerate() {
            t2.row(vec![
                (i + 1).to_string(),
                p.feature.to_string(),
                p.candidates_enumerated.to_string(),
                p.chosen.to_string(),
                f2(p.predicted_benefit.ms()),
                f2(p.reconfiguration_cost.ms()),
                p.accepted.to_string(),
            ]);
        }
        t2.print();
    }

    let config = db.engine().current_config();
    println!(
        "\nFinal configuration: {} indexes, {} encodings, {} placements, buffer {} MB",
        config.indexes.len(),
        config.encodings.len(),
        config.placements.len(),
        config.knobs.buffer_pool_mb,
    );
    println!(
        "Applied actions: {} + {}   measured reconfiguration cost: {:.2} ms",
        tuning.applied_actions,
        tuning2.applied_actions,
        (tuning.reconfiguration_cost + tuning2.reconfiguration_cost).ms()
    );
    println!(
        "Bucket cost before tuning: {pre_tune_cost:.2} ms   after: {post_tune_cost:.2} ms   speedup: {:.2}x",
        pre_tune_cost / post_tune_cost.max(1e-9)
    );
    println!(
        "Stored configuration instances (feedback loop): {}",
        driver.config_storage().len()
    );
}
