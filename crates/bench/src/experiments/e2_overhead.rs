//! E2 — the ≤1 % overhead requirement (Section I).
//!
//! Industry interviews demanded "a maximum of 1 % of additional runtime
//! introduced by such capabilities". Our monitoring path is one
//! plan-cache record (hash-map update keyed by a precomputed fingerprint)
//! plus a KPI ring-buffer push per query; this experiment measures its
//! wall-clock share on a mixed workload.

use std::time::Instant;

use crate::setup::{build_database, sample_queries, DEFAULT_SEED};
use crate::table::{f2, f3, TableBuilder};

pub fn run() {
    println!("\n=== E2: self-management runtime overhead (target <= 1%) ===\n");

    let mut table = TableBuilder::new(&[
        "workload",
        "queries",
        "monitoring OFF (µs/q)",
        "monitoring ON (µs/q)",
        "overhead %",
        "meets <=1%?",
    ]);

    for (name, mix, rows) in [
        (
            "point-heavy",
            smdb_workload::generators::point_heavy_mix(),
            40_000usize,
        ),
        (
            "scan-heavy",
            smdb_workload::generators::scan_heavy_mix(),
            40_000,
        ),
        (
            "uniform",
            vec![1.0; smdb_workload::tpch::NUM_TEMPLATES],
            40_000,
        ),
    ] {
        let (db, templates) = build_database(rows, 4_000, DEFAULT_SEED);
        let n = 6_000usize;
        let queries = sample_queries(&templates, &mix, n, DEFAULT_SEED ^ 77);

        // Warm up caches and branch predictors.
        for q in queries.iter().take(1_000) {
            db.run_query(q).unwrap();
        }

        // Interleave many small OFF/ON blocks and compare medians: block
        // pairs run back to back, so slow drift (frequency scaling,
        // allocator state) cancels and outlier blocks do not dominate.
        let block = 200usize;
        let mut off_blocks: Vec<f64> = Vec::new();
        let mut on_blocks: Vec<f64> = Vec::new();
        for round in 0..3 {
            for (b, chunk) in queries.chunks(block).enumerate() {
                // Alternate which mode goes first per block to cancel
                // ordering effects.
                let order = if (b + round) % 2 == 0 {
                    [false, true]
                } else {
                    [true, false]
                };
                for monitoring in order {
                    db.set_monitoring(monitoring);
                    let start = Instant::now();
                    for q in chunk {
                        db.run_query(q).unwrap();
                    }
                    let ns_per_q = start.elapsed().as_nanos() as f64 / chunk.len() as f64;
                    if monitoring {
                        on_blocks.push(ns_per_q);
                    } else {
                        off_blocks.push(ns_per_q);
                    }
                }
            }
        }
        let median = |v: &mut Vec<f64>| -> f64 {
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let off_us = median(&mut off_blocks) / 1000.0;
        let on_us = median(&mut on_blocks) / 1000.0;
        let overhead = (on_us - off_us) / off_us * 100.0;
        table.row(vec![
            name.into(),
            (6 * n).to_string(),
            f3(off_us),
            f3(on_us),
            f2(overhead),
            (overhead <= 1.0).to_string(),
        ]);
    }
    table.print();
    println!("\n(Overhead = plan-cache recording + KPI ring-buffer push per query.)");
}
