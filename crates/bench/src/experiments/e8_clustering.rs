//! E8 — workload compression via query clustering (Sections II-C,
//! III-A): clustering cuts prediction + tuning time with bounded loss in
//! cost accuracy and tuning quality.

use std::time::Instant;

use rand::RngExt;
use smdb_common::{seeded_rng, LogicalTime};
use smdb_core::tuner::standard_tuner;
use smdb_core::{ConstraintSet, FeatureKind};
use smdb_cost::WhatIf;
use smdb_forecast::analyzers::MovingAverage;
use smdb_forecast::{PredictorConfig, WorkloadHistory, WorkloadPredictor};
use smdb_query::{PlanCache, Query};
use smdb_storage::{Aggregate, AggregateOp, ConfigInstance, PredicateOp, ScanPredicate};

use crate::setup::{build_engine, train_calibrated, DEFAULT_CHUNK, DEFAULT_ROWS, DEFAULT_SEED};
use crate::table::{f2, f3, TableBuilder};

/// Builds a large, diverse template population (hundreds of distinct
/// templates across the three tables).
fn build_templates(engine: &smdb_storage::StorageEngine) -> Vec<Query> {
    let mut out = Vec::new();
    for (tid, table) in engine.tables() {
        for (col, def) in table.schema().iter() {
            if def.data_type == smdb_storage::DataType::Text {
                continue;
            }
            for op in [PredicateOp::Eq, PredicateOp::Le, PredicateOp::Between] {
                for agg in [None, Some(Aggregate::new(AggregateOp::Count, col))] {
                    let pred = match op {
                        PredicateOp::Between => ScanPredicate::between(col, 1i64, 10i64),
                        _ => ScanPredicate::cmp(col, op, 5i64),
                    };
                    out.push(Query::new(
                        tid,
                        table.name(),
                        vec![pred],
                        agg,
                        format!("{}_{}_{:?}_{}", table.name(), col, op, agg.is_some()),
                    ));
                }
            }
        }
    }
    out
}

pub fn run() {
    println!("\n=== E8: workload compression via query clustering ===\n");
    let (engine, tpch) = build_engine(DEFAULT_ROWS, DEFAULT_CHUNK, DEFAULT_SEED);
    let model = train_calibrated(&engine, &tpch, 240, DEFAULT_SEED ^ 8).unwrap();
    let what_if = WhatIf::new(model);

    // Simulate a 12-bucket history over the large template population.
    let templates = build_templates(&engine);
    println!("Distinct query templates observed: {}\n", templates.len());
    let mut cache = PlanCache::new(templates.len() * 2);
    let mut history = WorkloadHistory::new();
    let mut rng = seeded_rng(DEFAULT_SEED ^ 21);
    for bucket in 0..12u64 {
        for (i, q) in templates.iter().enumerate() {
            // Stable per-template intensity with noise.
            let base = 1.0 + (i % 7) as f64;
            let count = (base + rng.random::<f64>() * 2.0).round() as usize;
            let cost = smdb_common::Cost(0.5 + (i % 11) as f64 * 0.3);
            for _ in 0..count {
                cache.record(q, cost, LogicalTime(bucket));
            }
        }
        history.observe(LogicalTime(bucket), &cache.snapshot());
    }

    let constraints = ConstraintSet {
        index_memory_bytes: Some(8 * 1024 * 1024),
        ..ConstraintSet::default()
    };

    // Reference: uncompressed expected workload cost estimate.
    let reference_forecast = WorkloadPredictor::new(
        Box::new(MovingAverage::new(4)),
        PredictorConfig {
            clusters: None,
            samples: 0,
            ..PredictorConfig::default()
        },
    )
    .predict(&history);
    let reference_cost = what_if
        .workload_cost(
            &engine,
            &reference_forecast.expected().unwrap().workload,
            &ConfigInstance::default(),
        )
        .unwrap();

    let mut table = TableBuilder::new(&[
        "clusters k",
        "forecast queries",
        "predict (ms)",
        "tune (ms)",
        "total (ms)",
        "est. cost error %",
        "tuned-config cost (ms)",
    ]);

    for k in [None, Some(64), Some(16), Some(4)] {
        let predictor = WorkloadPredictor::new(
            Box::new(MovingAverage::new(4)),
            PredictorConfig {
                clusters: k,
                samples: 0,
                seed: DEFAULT_SEED,
                ..PredictorConfig::default()
            },
        );
        let start = Instant::now();
        let forecast = predictor.predict(&history);
        let predict_ms = start.elapsed().as_secs_f64() * 1000.0;

        let tuner = standard_tuner(FeatureKind::Indexing, what_if.clone());
        let start = Instant::now();
        let proposal = tuner
            .propose(&engine, &ConfigInstance::default(), &forecast, &constraints)
            .unwrap();
        let tune_ms = start.elapsed().as_secs_f64() * 1000.0;

        // Accuracy: expected-cost estimate of the (possibly compressed)
        // forecast vs the uncompressed reference.
        let est = what_if
            .workload_cost(
                &engine,
                &forecast.expected().unwrap().workload,
                &ConfigInstance::default(),
            )
            .unwrap();
        let err = (est.ms() - reference_cost.ms()).abs() / reference_cost.ms() * 100.0;

        // Quality: estimated cost of the *uncompressed* workload under
        // the config tuned from the compressed forecast.
        let tuned_cost = what_if
            .workload_cost(
                &engine,
                &reference_forecast.expected().unwrap().workload,
                &proposal.target,
            )
            .unwrap();

        table.row(vec![
            k.map_or("none (full)".to_string(), |k| k.to_string()),
            forecast.expected().unwrap().workload.len().to_string(),
            f3(predict_ms),
            f2(tune_ms),
            f2(predict_ms + tune_ms),
            f2(err),
            f2(tuned_cost.ms()),
        ]);
    }
    table.print();
    println!(
        "\n(Reference uncompressed estimate: {:.2} ms. Compression trades bounded accuracy\n loss for superlinear prediction+tuning speedups — Section II-C.)",
        reference_cost.ms()
    );
}
