//! E5 — selector classes (Section II-D(c)): greedy vs optimal vs genetic
//! vs robust on real index-selection instances, trading solution quality
//! against runtime exactly as the paper describes.

use std::time::Instant;

use smdb_core::enumerator::IndexEnumerator;
use smdb_core::selectors::{
    GeneticSelector, GreedySelector, OptimalSelector, RiskCriterion, RobustSelector, Selector,
};
use smdb_core::{Assessor, Enumerator, SelectionInput, WhatIfAssessor};
use smdb_cost::WhatIf;
use smdb_storage::ConfigInstance;

use crate::report;
use crate::setup::{
    build_engine, forecast_from_mix, forecast_from_mixes, train_calibrated, DEFAULT_CHUNK,
    DEFAULT_ROWS, DEFAULT_SEED,
};
use crate::table::{bytes_h, f2, TableBuilder};

pub fn run() {
    println!("\n=== E5: selector classes — quality vs runtime (Section II-D(c)) ===\n");
    let (engine, templates) = build_engine(DEFAULT_ROWS, DEFAULT_CHUNK, DEFAULT_SEED);
    let model = train_calibrated(&engine, &templates, 240, DEFAULT_SEED ^ 5).unwrap();
    let what_if = WhatIf::new(model);

    // A workload touching many columns → a large index-candidate set.
    let mix = vec![1.0; smdb_workload::tpch::NUM_TEMPLATES];
    let forecast = forecast_from_mix(&templates, &mix, 400.0, DEFAULT_SEED ^ 13);
    let base = ConfigInstance::default();

    let enumerator = IndexEnumerator::default();
    let candidates = enumerator.enumerate(&engine, &base, &forecast).unwrap();
    let assessor = WhatIfAssessor::new(what_if.clone(), 0.9);
    let assessments = assessor
        .assess(&engine, &base, &forecast, &candidates)
        .unwrap();
    let total_bytes: f64 = assessments.iter().map(|a| a.budget_weight()).sum();
    println!(
        "Index-selection instance: {} candidates, {} total candidate bytes\n",
        candidates.len(),
        bytes_h(total_bytes as u64)
    );

    let selectors: Vec<(&str, Box<dyn Selector>)> = vec![
        ("greedy", Box::new(GreedySelector)),
        ("optimal", Box::new(OptimalSelector)),
        ("genetic", Box::new(GeneticSelector::default())),
        (
            "robust(worst-case)",
            Box::new(RobustSelector::new(RiskCriterion::WorstCase)),
        ),
    ];

    let mut table = TableBuilder::new(&[
        "selector",
        "budget",
        "chosen",
        "total benefit (ms)",
        "% of optimal",
        "runtime (µs)",
        "feasible",
    ]);

    for budget_frac in [0.02, 0.05, 0.15, 0.4] {
        let budget = (total_bytes * budget_frac) as i64;
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: Some(budget),
            scenario_base_costs: None,
        };
        // Reference: optimal value.
        let optimal_value: f64 = {
            let chosen = OptimalSelector.select(&input).unwrap();
            chosen
                .iter()
                .map(|&i| assessments[i].expected_desirability())
                .sum()
        };
        for (name, selector) in &selectors {
            let start = Instant::now();
            let chosen = selector.select(&input).unwrap();
            let us = start.elapsed().as_secs_f64() * 1e6;
            let value: f64 = chosen
                .iter()
                .map(|&i| assessments[i].expected_desirability())
                .sum();
            table.row(vec![
                name.to_string(),
                format!("{:.0}%", budget_frac * 100.0),
                chosen.len().to_string(),
                f2(value),
                format!("{:.1}%", value / optimal_value.max(1e-9) * 100.0),
                f2(us),
                input.is_feasible(&chosen).to_string(),
            ]);
        }
    }
    table.print();
    println!("\n(Robust trades expected-case benefit for scenario stability; see E6.)");

    assessment_caching(&engine, &templates, &what_if);
    hard_instances();
}

/// Delta-aware what-if caching on the full assessment fan-out: the same
/// candidate set assessed by the pre-delta baseline (every query
/// re-costed per candidate) and by the delta-aware cached assessor,
/// checking bit-identical benefits.
fn assessment_caching(
    engine: &smdb_storage::StorageEngine,
    templates: &smdb_workload::tpch::TpchTemplates,
    what_if: &WhatIf,
) {
    use smdb_workload::generators::{point_heavy_mix, scan_heavy_mix};

    println!("\nDelta-aware what-if caching on candidate assessment:\n");
    let n = smdb_workload::tpch::NUM_TEMPLATES;
    let forecast = forecast_from_mixes(
        templates,
        &[
            (vec![1.0; n], 0.6, 400.0),
            (scan_heavy_mix(), 0.25, 400.0),
            (point_heavy_mix(), 0.15, 400.0),
        ],
        DEFAULT_SEED ^ 21,
    );
    let base = ConfigInstance::default();
    let candidates = IndexEnumerator::default()
        .enumerate(engine, &base, &forecast)
        .unwrap();

    let estimator = what_if.estimator().clone();
    let actions: Vec<_> = candidates.iter().map(|c| c.action.clone()).collect();
    let start = Instant::now();
    let plain = crate::setup::full_recompute_benefits(
        engine,
        &base,
        &forecast,
        &actions,
        estimator.clone(),
    )
    .unwrap();
    let uncached_ms = start.elapsed().as_secs_f64() * 1000.0;

    // Cold pass fills the cache; the warm pass is the steady state of a
    // tuning loop, which re-assesses the same candidate sets while the
    // workload and configuration drift slowly.
    let cached_what_if = WhatIf::new(estimator);
    let cached = WhatIfAssessor::new(cached_what_if.clone(), 0.9);
    let start = Instant::now();
    let delta = cached
        .assess(engine, &base, &forecast, &candidates)
        .unwrap();
    let cold_ms = start.elapsed().as_secs_f64() * 1000.0;
    let start = Instant::now();
    let warm = cached
        .assess(engine, &base, &forecast, &candidates)
        .unwrap();
    let warm_ms = start.elapsed().as_secs_f64() * 1000.0;

    let identical = plain
        .iter()
        .zip(&delta)
        .zip(&warm)
        .all(|((a, b), c)| *a == b.per_scenario && b.per_scenario == c.per_scenario);
    let stats = cached_what_if.cache_stats().expect("cache enabled");

    let mut table = TableBuilder::new(&["assessor pass", "wall (ms)"]);
    table.row(vec!["full recompute (pre-delta)".into(), f2(uncached_ms)]);
    table.row(vec!["cached, cold (fills cache)".into(), f2(cold_ms)]);
    table.row(vec!["cached, warm (steady state)".into(), f2(warm_ms)]);
    table.print();
    println!(
        "\n{} candidates x {} scenarios: warm speedup {:.1}x over uncached, \
         {} hits / {} misses overall, assessments bit-identical: {identical}",
        candidates.len(),
        forecast.len(),
        uncached_ms / warm_ms.max(1e-9),
        stats.hits,
        stats.misses,
    );
    report::record("e5", "assess_candidates", (candidates.len() as u64).into());
    report::record("e5", "assess_uncached_ms", uncached_ms.into());
    report::record("e5", "assess_cached_cold_ms", cold_ms.into());
    report::record("e5", "assess_cached_warm_ms", warm_ms.into());
    report::record(
        "e5",
        "warm_speedup",
        (uncached_ms / warm_ms.max(1e-9)).into(),
    );
    report::record("e5", "cache_hit_rate", stats.hit_rate().into());
    report::record("e5", "assessments_identical", identical.into());
}

/// Synthetic correlated knapsacks — the regime where greedy's ratio rule
/// provably loses to the exact solver and the genetic selector lands in
/// between, illustrating the paper's quality-vs-runtime trade-off.
fn hard_instances() {
    use rand::RngExt;
    use smdb_common::{seeded_rng, Cost};
    use smdb_core::candidate::{Assessment, Candidate};
    use smdb_storage::{ConfigAction, IndexKind};

    println!("\nSynthetic correlated knapsack instances (greedy's hard regime):\n");
    let mut table = TableBuilder::new(&[
        "instance",
        "items",
        "greedy % of optimal",
        "genetic % of optimal",
        "greedy (µs)",
        "optimal (µs)",
        "genetic (µs)",
    ]);
    for (label, n, seed) in [
        ("corr-30", 30usize, 1u64),
        ("corr-45", 45, 2),
        ("corr-60", 60, 3),
    ] {
        let mut rng = seeded_rng(seed);
        let mut candidates = Vec::with_capacity(n);
        let mut assessments = Vec::with_capacity(n);
        for i in 0..n {
            // Strongly correlated: value = weight + constant — the
            // classic hard family for greedy.
            let weight = 10.0 + (rng.random::<f64>() * 90.0).round();
            let value = weight + 12.0;
            candidates.push(Candidate::new(
                ConfigAction::CreateIndex {
                    target: smdb_common::ChunkColumnRef::new(0, 0, i as u32),
                    kind: IndexKind::Hash,
                },
                None,
            ));
            assessments.push(Assessment {
                candidate: i,
                per_scenario: vec![value],
                probabilities: vec![1.0],
                confidence: 1.0,
                permanent_bytes: weight as i64,
                one_time_cost: Cost(1.0),
            });
        }
        let budget = (assessments
            .iter()
            .map(|a| a.permanent_bytes as f64)
            .sum::<f64>()
            * 0.35) as i64;
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: Some(budget),
            scenario_base_costs: None,
        };
        let value_of = |chosen: &[usize]| -> f64 {
            chosen
                .iter()
                .map(|&i| assessments[i].expected_desirability())
                .sum()
        };
        let time_it = |s: &dyn Selector| -> (f64, f64) {
            let start = Instant::now();
            let chosen = s.select(&input).unwrap();
            (value_of(&chosen), start.elapsed().as_secs_f64() * 1e6)
        };
        let (gv, gt) = time_it(&GreedySelector);
        let (ov, ot) = time_it(&OptimalSelector);
        let (av, at) = time_it(&GeneticSelector::default());
        table.row(vec![
            label.into(),
            n.to_string(),
            format!("{:.2}%", gv / ov * 100.0),
            format!("{:.2}%", av / ov * 100.0),
            f2(gt),
            f2(ot),
            f2(at),
        ]);
    }
    table.print();
}
