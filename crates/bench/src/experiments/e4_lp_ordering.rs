//! E4 — LP-based order optimization (Section III-B): model sizes match
//! the paper's `2|S|²−|S|` / `2|S|²` formulas, the ILP solves in
//! interactive time ("viable"), attains the brute-force optimum, and the
//! optimized order beats naive orders on realized workload cost.

use std::time::Instant;

use rand::RngExt;
use smdb_common::seeded_rng;
use smdb_core::tuner::standard_tuner;
use smdb_core::{ConstraintSet, FeatureKind, MultiFeatureTuner};
use smdb_cost::WhatIf;
use smdb_lp::branch_bound::{solve_ilp, IlpOptions};
use smdb_lp::ordering::OrderingProblem;
use smdb_lp::permutation::brute_force_order;

use crate::report;

use crate::setup::{
    build_engine, forecast_from_mix, train_calibrated, DEFAULT_CHUNK, DEFAULT_ROWS, DEFAULT_SEED,
};
use crate::table::{f2, f3, TableBuilder};

pub fn run() {
    println!("\n=== E4: LP-based feature-order optimization (Section III-B) ===\n");
    sizes_and_scaling();
    real_feature_ordering();
}

/// Part 1: model sizes vs the paper's formulas + solve-time scaling on
/// synthetic dependence matrices, with brute-force verification. The
/// "nodes" columns contrast a cold branch-and-bound start with the
/// greedy-permutation warm start `OrderingProblem::solve` installs.
fn sizes_and_scaling() {
    println!("Model sizes and solve times (synthetic d matrices):\n");
    let mut table = TableBuilder::new(&[
        "|S|",
        "vars (model)",
        "vars (2n^2-n)",
        "constraints (model)",
        "constraints (2n^2)",
        "nodes (cold)",
        "nodes (warm)",
        "LP solve (ms)",
        "brute force (ms)",
        "permutations",
        "objective LP == brute?",
    ]);
    let mut cold_total = 0usize;
    let mut warm_total = 0usize;
    for n in 2..=8usize {
        let mut rng = seeded_rng(DEFAULT_SEED + n as u64);
        let mut d = vec![vec![1.0; n]; n];
        let mut w = vec![vec![1.0; n]; n];
        for a in 0..n {
            for b in 0..n {
                if a != b && a < b {
                    let v: f64 = 0.5 + rng.random::<f64>() * 1.5;
                    d[a][b] = v;
                    d[b][a] = 1.0 / v;
                }
                if a != b {
                    w[a][b] = 1.0 + rng.random::<f64>();
                }
            }
        }
        let problem = OrderingProblem::new(d, w).unwrap();
        let model = problem.build_model().expect("model builds");

        let start = Instant::now();
        let lp = problem.solve(&IlpOptions::default()).unwrap();
        let lp_ms = start.elapsed().as_secs_f64() * 1000.0;

        // Cold start: same model, no incumbent installed.
        let cold = solve_ilp(&model, &IlpOptions::default()).unwrap();
        cold_total += cold.nodes;
        warm_total += lp.nodes;

        let start_brute = Instant::now();
        let brute = brute_force_order(&problem).unwrap();
        let brute_ms = start_brute.elapsed().as_secs_f64() * 1000.0;

        table.row(vec![
            n.to_string(),
            model.num_vars().to_string(),
            OrderingProblem::paper_variable_count(n).to_string(),
            model.num_constraints().to_string(),
            OrderingProblem::paper_constraint_count(n).to_string(),
            cold.nodes.to_string(),
            lp.nodes.to_string(),
            f3(lp_ms),
            f3(brute_ms),
            brute.evaluated.to_string(),
            ((lp.objective - brute.objective).abs() < 1e-6).to_string(),
        ]);
    }
    table.print();
    println!(
        "\nB&B nodes over n=2..8: cold {cold_total}, warm {warm_total} \
         ({:.1}% saved by the greedy warm start)",
        100.0 * (1.0 - warm_total as f64 / cold_total.max(1) as f64)
    );
    report::record("e4", "bb_nodes_cold", (cold_total as u64).into());
    report::record("e4", "bb_nodes_warm", (warm_total as u64).into());
}

/// Part 2: order quality on the real four-feature system — LP order vs
/// brute-force, impact order, registration order and the worst order,
/// judged by the estimated workload cost after recursive tuning.
fn real_feature_ordering() {
    println!("\nRealized tuning quality by feature order (4 real features):\n");
    let (mut engine, templates) = build_engine(DEFAULT_ROWS, DEFAULT_CHUNK, DEFAULT_SEED);
    let hot_capacity = crate::setup::apply_pressure(&mut engine, &templates);
    let model = train_calibrated(&engine, &templates, 240, DEFAULT_SEED ^ 4).unwrap();
    let what_if = WhatIf::new(model);
    let features = [
        FeatureKind::Indexing,
        FeatureKind::Compression,
        FeatureKind::Placement,
        FeatureKind::BufferPool,
    ];
    let tuners = features
        .iter()
        .map(|&f| standard_tuner(f, what_if.clone()))
        .collect();
    let multi = MultiFeatureTuner::new(tuners, what_if.clone());

    // Blended HTAP mix: analytic scans (compression / placement /
    // buffer work) plus selective point lookups (index work).
    let mix: Vec<f64> = smdb_workload::generators::scan_heavy_mix()
        .iter()
        .zip(&smdb_workload::generators::point_heavy_mix())
        .map(|(a, b)| a + b)
        .collect();
    let forecast = forecast_from_mix(&templates, &mix, 300.0, DEFAULT_SEED ^ 11);
    let constraints = ConstraintSet {
        index_memory_bytes: Some(8 * 1024 * 1024),
        hot_tier_bytes: Some(hot_capacity),
        ..ConstraintSet::default()
    };
    let base = engine.current_config();

    let report = multi
        .analyze(&engine, &forecast, &base, &constraints)
        .unwrap();
    let problem = report.ordering_problem().unwrap();
    let lp = multi.lp_order(&report).unwrap();
    let brute = brute_force_order(&problem).unwrap();

    // Evaluate orders by tuning recursively and estimating final cost.
    let orders: Vec<(String, Vec<usize>)> = vec![
        ("LP-optimized".into(), lp.order.clone()),
        ("brute-force".into(), brute.order.clone()),
        ("impact-ranked".into(), report.impact_order()),
        ("registration".into(), (0..4).collect()),
        ("reversed".into(), (0..4).rev().collect()),
    ];

    let expected = forecast.expected().unwrap().workload.clone();
    let w_empty = report.w_empty;
    let mut table = TableBuilder::new(&[
        "order policy",
        "order",
        "objective",
        "est. final cost (ms)",
        "improvement vs W_empty",
    ]);
    for (name, order) in orders {
        let run = multi
            .tune_in_order(&engine, &forecast, &base, &constraints, &order)
            .unwrap();
        let final_cost = what_if
            .workload_cost(&engine, &expected, &run.final_config)
            .unwrap();
        let order_str: Vec<&str> = order.iter().map(|&i| features[i].label()).collect();
        table.row(vec![
            name,
            order_str.join(" -> "),
            f3(problem.order_objective(&order)),
            f2(final_cost.ms()),
            format!("{:.2}x", w_empty.ms() / final_cost.ms().max(1e-9)),
        ]);
    }
    table.print();
    println!(
        "\nLP objective {:.3} == brute-force objective {:.3}: {}",
        lp.objective,
        brute.objective,
        (lp.objective - brute.objective).abs() < 1e-6
    );
}
