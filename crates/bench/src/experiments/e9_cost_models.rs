//! E9 — adaptive cost estimation (Sections II-A(d), V): the calibrated
//! model converges to low error as observations accrue, while the
//! hardware-oblivious logical model stays biased — and better cost
//! models produce better tuning decisions.

use std::sync::Arc;

use smdb_common::seeded_rng;
use smdb_core::tuner::standard_tuner;
use smdb_core::{ConstraintSet, FeatureKind};
use smdb_cost::features::ConfigContext;
use smdb_cost::{CalibratedCostModel, CostEstimator, LogicalCostModel, WhatIf};
use smdb_storage::ConfigInstance;
use smdb_workload::tpch::NUM_TEMPLATES;

use crate::setup::{
    build_engine, forecast_from_mix, ground_truth_cost_under, DEFAULT_CHUNK, DEFAULT_ROWS,
    DEFAULT_SEED,
};
use crate::table::{f2, TableBuilder};

/// Mean relative error of an estimator on a held-out query set, under a
/// configuration that exercises encodings and placement (where the
/// logical model is blind).
fn mean_rel_error(
    estimator: &dyn CostEstimator,
    engine: &smdb_storage::StorageEngine,
    config: &ConfigInstance,
    queries: &[smdb_query::Query],
) -> f64 {
    // Evaluate against the ground truth on a clone with config applied.
    let mut clone = engine.clone();
    let actions = clone.current_config().diff(config);
    clone.apply_all(&actions).unwrap();
    let ctx = ConfigContext::new(engine, config);
    let mut total = 0.0;
    let mut n = 0usize;
    for q in queries {
        let actual = clone
            .scan(q.table(), q.predicates(), q.aggregate())
            .unwrap()
            .sim_cost;
        if actual.ms() < 0.05 {
            continue;
        }
        let predicted = estimator.query_cost(engine, &ctx, q, config).unwrap();
        total += ((predicted.ms() - actual.ms()) / actual.ms()).abs();
        n += 1;
    }
    total / n.max(1) as f64
}

pub fn run() {
    println!("\n=== E9: adaptive (learned) vs logical cost models ===\n");
    let (engine, templates) = build_engine(DEFAULT_ROWS, DEFAULT_CHUNK, DEFAULT_SEED);
    let base = engine.current_config();
    let ctx = ConfigContext::new(&engine, &base);

    // Held-out evaluation queries + an encoding/placement-rich config.
    let mut rng = seeded_rng(DEFAULT_SEED ^ 0x99);
    let holdout: Vec<_> = (0..3 * NUM_TEMPLATES)
        .map(|i| templates.sample(i % NUM_TEMPLATES, &mut rng))
        .collect();
    let mut rich = base.clone();
    let lineitem = templates.catalog().lineitem;
    for chunk in 0..4u32 {
        rich.encodings.insert(
            smdb_common::ChunkColumnRef::new(lineitem.0, 1, chunk),
            smdb_storage::EncodingKind::Dictionary,
        );
        rich.placements.insert(
            (lineitem, smdb_common::ChunkId(chunk + 4)),
            smdb_storage::Tier::Warm,
        );
    }

    let logical = LogicalCostModel::default();
    let logical_base_err = mean_rel_error(&logical, &engine, &base, &holdout);
    let logical_rich_err = mean_rel_error(&logical, &engine, &rich, &holdout);

    let mut table = TableBuilder::new(&[
        "model",
        "training obs",
        "rel. error (plain config) %",
        "rel. error (encoded+tiered config) %",
    ]);
    table.row(vec![
        "logical".into(),
        "-".into(),
        f2(logical_base_err * 100.0),
        f2(logical_rich_err * 100.0),
    ]);

    // Adaptive training: observations alternate between the plain engine
    // and a physically diverse variant, as they would in production where
    // the configuration keeps changing under the model.
    let mut variant = engine.clone();
    let variant_actions = base.diff(&rich);
    variant.apply_all(&variant_actions).unwrap();
    let variant_config = variant.current_config();
    let variant_ctx = ConfigContext::new(&variant, &variant_config);

    let model = Arc::new(CalibratedCostModel::new());
    let mut train_rng = seeded_rng(DEFAULT_SEED ^ 0xAA);
    let mut trained = 0usize;
    for target in [10usize, 50, 200, 1000, 5000] {
        while trained < target {
            let q = templates.sample(trained % NUM_TEMPLATES, &mut train_rng);
            if trained.is_multiple_of(2) {
                let out = engine
                    .scan(q.table(), q.predicates(), q.aggregate())
                    .unwrap();
                model
                    .observe_with_ctx(&engine, &ctx, &q, &base, out.sim_cost)
                    .unwrap();
            } else {
                let out = variant
                    .scan(q.table(), q.predicates(), q.aggregate())
                    .unwrap();
                model
                    .observe_with_ctx(&variant, &variant_ctx, &q, &variant_config, out.sim_cost)
                    .unwrap();
            }
            trained += 1;
        }
        model.refit().unwrap();
        table.row(vec![
            "calibrated".into(),
            target.to_string(),
            f2(mean_rel_error(model.as_ref(), &engine, &base, &holdout) * 100.0),
            f2(mean_rel_error(model.as_ref(), &engine, &rich, &holdout) * 100.0),
        ]);
    }
    table.print();

    // Better cost model ⇒ better tuning decisions (compression feature,
    // where the logical model is blind).
    println!("\nTuning quality by cost model (compression feature):\n");
    let mix = smdb_workload::generators::scan_heavy_mix();
    let forecast = forecast_from_mix(&templates, &mix, 300.0, DEFAULT_SEED ^ 0xBB);
    let expected = forecast.expected().unwrap().workload.clone();
    let mut t2 = TableBuilder::new(&[
        "cost model",
        "accepted actions",
        "ground-truth workload cost after tuning (ms)",
    ]);
    for (name, what_if) in [
        (
            "logical",
            WhatIf::new(Arc::new(LogicalCostModel::default()) as Arc<dyn CostEstimator>),
        ),
        (
            "calibrated (5000 obs)",
            WhatIf::new(model.clone() as Arc<dyn CostEstimator>),
        ),
    ] {
        let tuner = standard_tuner(FeatureKind::Compression, what_if);
        let proposal = tuner
            .propose(&engine, &base, &forecast, &ConstraintSet::none())
            .unwrap();
        let cost = ground_truth_cost_under(&engine, &expected, &proposal.target).unwrap();
        t2.row(vec![
            name.into(),
            proposal.actions.len().to_string(),
            f2(cost.ms()),
        ]);
    }
    t2.print();
    println!("\n(The logical model cannot see encodings, so it never proposes compression;\n the calibrated model does and realizes actual savings.)");
}
