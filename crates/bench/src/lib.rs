//! # smdb-bench — experiment harness and benchmarks
//!
//! Shared setup for the `experiments` binary (which regenerates every
//! experiment table E1–E11 listed in `DESIGN.md` §5), the `calibrate`
//! binary (measured kernel timings + cost-model calibration) and the
//! Criterion benches.

pub mod calibrate;
pub mod experiments;
pub mod gate;
pub mod report;
pub mod setup;
pub mod table;

pub use setup::*;
pub use table::TableBuilder;
