//! # smdb-bench — experiment harness and benchmarks
//!
//! Shared setup for the `experiments` binary (which regenerates every
//! experiment table E1–E10 listed in `DESIGN.md` §5) and for the
//! Criterion benches.

pub mod experiments;
pub mod gate;
pub mod report;
pub mod setup;
pub mod table;

pub use setup::*;
pub use table::TableBuilder;
