//! Fixed-width ASCII table printing for experiment output.

/// Builds and renders a padded ASCII table.
#[derive(Debug, Default)]
pub struct TableBuilder {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableBuilder {
    /// Starts a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        TableBuilder {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let sep: String = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let fmt_row = |cells: &[String]| {
            let mut s = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                s.push(' ');
                s.push_str(cell);
                s.push_str(&" ".repeat(widths[i] - cell.len() + 1));
                s.push('|');
            }
            s
        };
        let mut out = String::new();
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push_str(&sep);
        let _ = cols;
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with 3 significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats bytes as KiB/MiB.
pub fn bytes_h(b: u64) -> String {
    if b >= 1024 * 1024 {
        format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0))
    } else if b >= 1024 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TableBuilder::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long_name".into(), "1234".into()]);
        let s = t.render();
        assert!(s.contains("| name"));
        assert!(s.contains("| long_name |"));
        let widths: std::collections::HashSet<usize> = s.lines().map(|l| l.len()).collect();
        assert_eq!(widths.len(), 1, "all lines same width:\n{s}");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        TableBuilder::new(&["a"]).row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.238), "1.24");
        assert_eq!(bytes_h(512), "512 B");
        assert_eq!(bytes_h(2048), "2.0 KiB");
        assert_eq!(bytes_h(3 * 1024 * 1024), "3.0 MiB");
    }
}
