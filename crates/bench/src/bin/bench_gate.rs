//! Bench-regression gate CLI.
//!
//! ```text
//! cargo run -p smdb-bench --bin bench_gate -- \
//!     --runtime BENCH_runtime.json target/ci/BENCH_runtime.json \
//!     --tuning  BENCH_tuning.json  target/ci/BENCH_tuning.json
//! ```
//!
//! Each `--runtime` / `--tuning` flag takes a BASELINE and a CANDIDATE
//! path and checks the candidate against the committed baseline with
//! the tolerances in `smdb_bench::gate`. `--tuning` additionally checks
//! the candidate's E11 calibration errors against their absolute 30 %
//! ceiling (`gate::tuning_bounds`) — fit quality is bounded, not
//! baseline-relative. Exits non-zero if any metric regressed past its
//! tolerance, if a gated metric is missing, or if an exact metric
//! (result digest, error counters) diverged.

use smdb_bench::gate;
use smdb_common::json::{parse, Json};

fn load(path: &str) -> Json {
    let raw = match std::fs::read_to_string(path) {
        Ok(raw) => raw,
        Err(e) => {
            eprintln!("bench-gate: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match parse(&raw) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench-gate: {path} is not valid JSON: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut report = gate::GateReport::default();
    let mut compared = 0usize;
    while let Some(flag) = args.next() {
        let (label, (metrics, exact)) = match flag.as_str() {
            "--runtime" => ("runtime", gate::runtime_specs()),
            "--tuning" => ("tuning", gate::tuning_specs()),
            "--multitenant" => ("multitenant", gate::multitenant_specs()),
            "--recovery" => ("recovery", gate::recovery_specs()),
            other => {
                eprintln!(
                    "bench-gate: unknown argument {other} \
                     (usage: bench_gate [--runtime BASELINE CANDIDATE] \
                     [--tuning BASELINE CANDIDATE] [--multitenant BASELINE CANDIDATE] \
                     [--recovery BASELINE CANDIDATE])"
                );
                std::process::exit(2);
            }
        };
        let (baseline_path, candidate_path) = match (args.next(), args.next()) {
            (Some(b), Some(c)) => (b, c),
            _ => {
                eprintln!("bench-gate: --{label} requires BASELINE and CANDIDATE paths");
                std::process::exit(2);
            }
        };
        println!("{label}: {baseline_path} (baseline) vs {candidate_path} (candidate)");
        let baseline = load(&baseline_path);
        let candidate = load(&candidate_path);
        report.extend(gate::compare(&baseline, &candidate, &metrics, &exact));
        if flag == "--tuning" {
            report.extend(gate::check_bounds(&candidate, &gate::tuning_bounds()));
        }
        if flag == "--multitenant" {
            report.extend(gate::check_bounds(&candidate, &gate::multitenant_bounds()));
        }
        if flag == "--recovery" {
            report.extend(gate::check_bounds(&candidate, &gate::recovery_bounds()));
        }
        compared += 1;
    }
    if compared == 0 {
        eprintln!(
            "bench-gate: nothing to compare \
             (usage: bench_gate [--runtime BASELINE CANDIDATE] [--tuning BASELINE CANDIDATE])"
        );
        std::process::exit(2);
    }
    print!("{}", report.render_human());
    if report.failed() {
        eprintln!("bench-gate: FAILED — benchmark regression past tolerance");
        std::process::exit(1);
    }
    println!("bench-gate: passed");
}
