//! Kill-and-recover benchmark: the durability layer's RTO measurement.
//!
//! ```text
//! cargo run --release -p smdb-bench --bin recover                   # defaults
//! cargo run --release -p smdb-bench --bin recover -- --kill-bucket 27
//! cargo run --release -p smdb-bench --bin recover -- --dir target/ci/recover_store
//! cargo run --release -p smdb-bench --bin recover -- --json BENCH_recovery.json
//! ```
//!
//! Runs the soak fixture durably twice: once uninterrupted (the
//! reference digest and the write-amplification KPI), once hard-stopped
//! mid-bucket and then recovered and resumed. Prints a summary and,
//! with `--json PATH`, writes the machine-readable `BENCH_recovery.json`
//! (recovery time, replayed/dropped WAL records, digest match) that
//! `bench_gate --recovery` checks against the committed baseline.
//!
//! With `--dir PATH` the durable store is a real directory (fsynced
//! appends); the default is in-memory. The directory is wiped first so
//! runs are hermetic.

use std::sync::Arc;
use std::time::Instant;

use smdb_bench::report;
use smdb_common::Cost;
use smdb_core::{DurabilityConfig, DurabilityManager};
use smdb_durable::{DirPersistence, MemPersistence, Persistence};
use smdb_query::Database;
use smdb_runtime::{
    events_database, generate, recover_and_resume, BucketPlan, KillSpec, Runtime, RuntimeConfig,
    StreamConfig,
};

struct Args {
    workers: usize,
    seed: u64,
    buckets: usize,
    kill_bucket: usize,
    kill_after: usize,
    snapshot_every: u64,
    dir: Option<String>,
    json_path: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        workers: 4,
        seed: 42,
        buckets: 40,
        kill_bucket: 27,
        kill_after: 100,
        snapshot_every: 8,
        dir: None,
        json_path: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            }
        };
        match arg.as_str() {
            "--workers" => parsed.workers = parse_num(&take("--workers"), "--workers"),
            "--seed" => parsed.seed = parse_num(&take("--seed"), "--seed"),
            "--buckets" => parsed.buckets = parse_num(&take("--buckets"), "--buckets"),
            "--kill-bucket" => {
                parsed.kill_bucket = parse_num(&take("--kill-bucket"), "--kill-bucket");
            }
            "--kill-after" => {
                parsed.kill_after = parse_num(&take("--kill-after"), "--kill-after");
            }
            "--snapshot-every" => {
                parsed.snapshot_every = parse_num(&take("--snapshot-every"), "--snapshot-every");
            }
            "--dir" => parsed.dir = Some(take("--dir")),
            "--json" => parsed.json_path = Some(take("--json")),
            other => {
                eprintln!(
                    "unknown argument {other} (valid: --workers N --seed N --buckets N \
                     --kill-bucket N --kill-after N --snapshot-every N --dir PATH --json PATH)"
                );
                std::process::exit(2);
            }
        }
    }
    parsed
}

fn parse_num<T: std::str::FromStr>(value: &str, name: &str) -> T {
    match value.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("{name}: invalid number {value}");
            std::process::exit(2);
        }
    }
}

fn fixture(args: &Args) -> (Arc<Database>, Vec<BucketPlan>) {
    let stream = StreamConfig {
        seed: args.seed,
        buckets: args.buckets,
        ..StreamConfig::default()
    };
    let (db, table) = match events_database(24, 1_000) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("fixture failed: {e}");
            std::process::exit(1);
        }
    };
    (db, generate(table, 24_000, &stream))
}

/// No injected apply faults: the tuner's rollback cooldown is
/// thread-local and not part of the boundary record (see
/// `smdb_runtime::recover`), so the kill-and-recover equality contract
/// only holds on the fault-free path.
fn config(args: &Args) -> RuntimeConfig {
    RuntimeConfig {
        workers: args.workers,
        bucket_capacity: Cost(800.0),
        slice_budget: 6,
        sla_p95: Some(Cost(1.0)),
        ..RuntimeConfig::default()
    }
}

fn durable_runtime(db: Arc<Database>, store: Arc<dyn Persistence>, args: &Args) -> Runtime {
    let dconfig = DurabilityConfig {
        snapshot_every_buckets: args.snapshot_every,
    };
    Runtime::new_durable(
        db,
        config(args),
        Arc::new(DurabilityManager::new(store, dconfig)),
    )
}

fn open_store(args: &Args) -> Arc<dyn Persistence> {
    match &args.dir {
        None => Arc::new(MemPersistence::new()),
        Some(dir) => {
            // Hermetic: a stale store from a previous run must not leak
            // into this one's recovery.
            let _ = std::fs::remove_dir_all(dir);
            match DirPersistence::open(dir) {
                Ok(p) => Arc::new(p),
                Err(e) => {
                    eprintln!("cannot open store dir {dir}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}

fn main() {
    let args = parse_args();
    if args.kill_bucket >= args.buckets {
        eprintln!(
            "--kill-bucket {} must lie inside the {}-bucket plan",
            args.kill_bucket, args.buckets
        );
        std::process::exit(2);
    }

    // Uninterrupted durable run: the reference digest and the
    // write-amplification KPI of the chosen snapshot cadence.
    let (db, plan) = fixture(&args);
    let reference = durable_runtime(db, Arc::new(MemPersistence::new()), &args);
    reference.driver().flight_recorder().set_auto_dump(false);
    let expected = match reference.run(&plan) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("reference soak failed: {e}");
            std::process::exit(1);
        }
    };
    let durability = expected.durability.clone().expect("durable run has stats");
    println!(
        "reference: {} queries, digest {:#018x}; wal {} records / {} bytes, \
         {} snapshots / {} bytes (write amplification {:.2})",
        expected.stats.queries,
        expected.stats.result_digest,
        durability.wal_records,
        durability.wal_bytes,
        durability.snapshots_taken,
        durability.snapshot_bytes,
        durability.write_amplification
    );

    // The dying run: hard-stopped mid-bucket.
    let (db, _) = fixture(&args);
    let store = open_store(&args);
    let dying = durable_runtime(db, Arc::clone(&store), &args);
    dying.driver().flight_recorder().set_auto_dump(false);
    let kill = KillSpec {
        bucket: args.kill_bucket,
        after_queries: args.kill_after,
    };
    if let Err(e) = dying.run_killed(&plan, kill) {
        eprintln!("killed run failed: {e}");
        std::process::exit(1);
    }
    drop(dying);

    // Recover and resume.
    let dconfig = DurabilityConfig {
        snapshot_every_buckets: args.snapshot_every,
    };
    let start = Instant::now();
    let recovered = match recover_and_resume(store, dconfig, config(&args), &plan) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("recovery failed: {e}");
            std::process::exit(1);
        }
    };
    let total_ms = start.elapsed().as_secs_f64() * 1e3;
    let recovery_ms = recovered.recovery_micros as f64 / 1e3;
    let digest_match = recovered.outcome.stats.result_digest == expected.stats.result_digest;

    println!(
        "killed in bucket {} after {} queries; recovered to bucket {} in {:.2} ms \
         ({} records replayed, {} dropped), resumed tail in {:.0} ms",
        args.kill_bucket,
        args.kill_after,
        recovered.resumed_at_bucket,
        recovery_ms,
        recovered.replayed_records,
        recovered.dropped_records,
        total_ms - recovery_ms
    );
    println!(
        "resumed: {} queries, {} errors, {} wrong results, digest match: {}",
        recovered.outcome.stats.queries,
        recovered.outcome.stats.errors,
        recovered.outcome.stats.wrong_results,
        digest_match
    );
    if !digest_match {
        eprintln!(
            "recovered digest {:#018x} != reference {:#018x}",
            recovered.outcome.stats.result_digest, expected.stats.result_digest
        );
    }

    report::record("recover", "seed", args.seed.into());
    report::record("recover", "workers", (args.workers as u64).into());
    report::record("recover", "buckets", (args.buckets as u64).into());
    report::record("recover", "kill_bucket", (args.kill_bucket as u64).into());
    report::record(
        "recover",
        "kill_after_queries",
        (args.kill_after as u64).into(),
    );
    report::record("recover", "snapshot_every", args.snapshot_every.into());
    report::record(
        "recover",
        "store",
        if args.dir.is_some() { "dir" } else { "mem" }.into(),
    );
    report::record(
        "recover",
        "resumed_at_bucket",
        recovered.resumed_at_bucket.into(),
    );
    report::record("recover", "recovery_ms", recovery_ms.into());
    report::record(
        "recover",
        "replayed_records",
        recovered.replayed_records.into(),
    );
    report::record(
        "recover",
        "dropped_records",
        recovered.dropped_records.into(),
    );
    report::record("recover", "digest_match", u64::from(digest_match).into());
    report::record("recover", "queries", recovered.outcome.stats.queries.into());
    report::record("recover", "errors", recovered.outcome.stats.errors.into());
    report::record(
        "recover",
        "wrong_results",
        recovered.outcome.stats.wrong_results.into(),
    );
    report::record("recover", "wal_records", durability.wal_records.into());
    report::record("recover", "wal_bytes", durability.wal_bytes.into());
    report::record(
        "recover",
        "snapshots_taken",
        durability.snapshots_taken.into(),
    );
    report::record(
        "recover",
        "snapshot_bytes",
        durability.snapshot_bytes.into(),
    );
    report::record(
        "recover",
        "write_amplification",
        durability.write_amplification.into(),
    );

    if let Some(path) = args.json_path {
        let doc = report::to_json().to_string_pretty();
        if let Err(e) = std::fs::write(&path, doc + "\n") {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote metrics to {path}");
    }
    if !digest_match {
        std::process::exit(1);
    }
}
