//! Experiment harness: regenerates every experiment table (E1–E10).
//!
//! ```text
//! cargo run --release -p smdb-bench --bin experiments            # all
//! cargo run --release -p smdb-bench --bin experiments e4 e5     # subset
//! cargo run --release -p smdb-bench --bin experiments e5 --json BENCH_tuning.json
//! ```
//!
//! `--json PATH` additionally writes the machine-readable metrics every
//! experiment recorded (per-experiment wall time, cache hit rates, B&B
//! node counts, …) as a JSON document.

use std::time::Instant;

use smdb_bench::{experiments, report};

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            match args.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires a file path");
                    std::process::exit(2);
                }
            }
        } else {
            ids.push(arg);
        }
    }
    if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ids = experiments::ALL.iter().map(|s| s.to_string()).collect();
    }

    let mut unknown = Vec::new();
    for id in &ids {
        let start = Instant::now();
        if !experiments::run(id) {
            unknown.push(id.clone());
            continue;
        }
        report::record(
            id,
            "wall_ms",
            (start.elapsed().as_secs_f64() * 1000.0).into(),
        );
    }
    if let Some(path) = json_path {
        let doc = report::to_json().to_string_pretty();
        if let Err(e) = std::fs::write(&path, doc + "\n") {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote metrics to {path}");
    }
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiment id(s): {} (valid: {} or 'all')",
            unknown.join(", "),
            experiments::ALL.join(", ")
        );
        std::process::exit(2);
    }
}
