//! Experiment harness: regenerates every experiment table (E1–E10).
//!
//! ```text
//! cargo run --release -p smdb-bench --bin experiments            # all
//! cargo run --release -p smdb-bench --bin experiments e4 e5     # subset
//! ```

use smdb_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        experiments::ALL.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };
    let mut unknown = Vec::new();
    for id in &ids {
        if !experiments::run(id) {
            unknown.push(id.clone());
        }
    }
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiment id(s): {} (valid: {} or 'all')",
            unknown.join(", "),
            experiments::ALL.join(", ")
        );
        std::process::exit(2);
    }
}
