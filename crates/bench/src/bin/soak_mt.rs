//! Multi-tenant sharded soak: the scatter-gather benchmark.
//!
//! ```text
//! cargo run --release -p smdb-bench --bin soak_mt                   # defaults
//! cargo run --release -p smdb-bench --bin soak_mt -- --shards 8 --tenants 2000
//! cargo run --release -p smdb-bench --bin soak_mt -- --zipf 1.4 --workers 4
//! cargo run --release -p smdb-bench --bin soak_mt -- --json BENCH_multitenant.json
//! cargo run --release -p smdb-bench --bin soak_mt -- --trail TRAIL_mt.json
//! ```
//!
//! Serves Zipf-skewed traffic from thousands of seeded tenants against
//! a sharded engine: tenant queries route to their home shard, global
//! queries scatter-gather, every shard tunes itself off shard-local KPI
//! snapshots, and a global arbiter re-splits one index-memory budget
//! across the shard drivers each bucket. Prints a summary and, with
//! `--json PATH`, writes `BENCH_multitenant.json` (aggregate qps,
//! per-tenant p95, noisy-neighbor delta, per-shard tuning actions,
//! budget compliance). `--trail PATH` writes the merged smdb-trail/v2
//! decision trail (per-shard tuning + global `budget_rebalanced`
//! events).

use smdb_bench::report;
use smdb_query::result_hash;
use smdb_runtime::{MtSoakConfig, MtSoakOutcome, ShardedRuntime};
use smdb_shard::{build_sharded, MultiTenantConfig, ShardSpec, TenantQuery};

/// Tenants must clear this many queries before their p95 is aggregated.
const P95_MIN_QUERIES: u64 = 20;
/// Queries replayed against a 1-shard build for the digest-invariance
/// witness.
const DIGEST_CHECK_QUERIES: usize = 1_000;

struct Args {
    shards: usize,
    tenants: usize,
    zipf: f64,
    workers: usize,
    buckets: usize,
    seed: u64,
    json_path: Option<String>,
    trail_path: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        shards: 4,
        tenants: 1200,
        zipf: 1.1,
        workers: 2,
        buckets: 10,
        seed: 42,
        json_path: None,
        trail_path: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            }
        };
        match arg.as_str() {
            "--shards" => parsed.shards = parse_num(&take("--shards"), "--shards"),
            "--tenants" => parsed.tenants = parse_num(&take("--tenants"), "--tenants"),
            "--zipf" => parsed.zipf = parse_num(&take("--zipf"), "--zipf"),
            "--workers" => parsed.workers = parse_num(&take("--workers"), "--workers"),
            "--buckets" => parsed.buckets = parse_num(&take("--buckets"), "--buckets"),
            "--seed" => parsed.seed = parse_num(&take("--seed"), "--seed"),
            "--json" => parsed.json_path = Some(take("--json")),
            "--trail" => parsed.trail_path = Some(take("--trail")),
            other => {
                eprintln!(
                    "unknown argument {other} (valid: --shards N --tenants N --zipf S \
                     --workers N --buckets N --seed N --json PATH --trail PATH)"
                );
                std::process::exit(2);
            }
        }
    }
    if parsed.shards == 0 {
        eprintln!("--shards must be at least 1");
        std::process::exit(2);
    }
    parsed
}

fn parse_num<T: std::str::FromStr>(value: &str, name: &str) -> T {
    match value.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("{name}: invalid number {value}");
            std::process::exit(2);
        }
    }
}

/// The noisy-neighbor probe: among *quiet* tenants (at or below the
/// median query count), how much worse is p95 for those homed on the
/// hottest tenant's shard than for those homed elsewhere? Positive
/// means the hot shard's neighbors pay; ~0 means per-shard tuning and
/// the budget split kept them whole. `None` when the hot tenant has no
/// unique home shard (hash partitioning) or a side has no tenants.
fn noisy_neighbor_delta_ms(runtime: &ShardedRuntime, outcome: &MtSoakOutcome) -> Option<f64> {
    let hot = outcome
        .tenant_stats
        .iter()
        .max_by_key(|&(&tenant, stats)| (stats.queries, std::cmp::Reverse(tenant)))
        .map(|(&tenant, _)| tenant)?;
    let router = runtime.database().router();
    let hot_shard = router.unique_shard_for_tenant(hot)?;
    let mut counts: Vec<u64> = outcome.tenant_stats.values().map(|s| s.queries).collect();
    counts.sort_unstable();
    let median = counts[counts.len() / 2];
    let (mut on, mut off): (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());
    for (&tenant, stats) in &outcome.tenant_stats {
        if tenant == hot || stats.queries > median {
            continue;
        }
        match router.unique_shard_for_tenant(tenant) {
            Some(s) if s == hot_shard => on.push(stats.p95_ms),
            Some(_) => off.push(stats.p95_ms),
            None => {}
        }
    }
    if on.is_empty() || off.is_empty() {
        return None;
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    Some(mean(&on) - mean(&off))
}

/// Replays a sample of the plan against a 1-shard build and the soaked
/// N-shard database; equal digest sums are the shard-count-invariance
/// witness the gate pins exactly.
fn digest_invariant(
    runtime: &ShardedRuntime,
    cfg: &MultiTenantConfig,
    sample: &[TenantQuery],
) -> bool {
    let single = match build_sharded(cfg, &ShardSpec::range(1)) {
        Ok(db) => db,
        Err(_) => return false,
    };
    let mut a = 0u64;
    let mut b = 0u64;
    for tq in sample {
        let Ok(one) = single.run_query(&tq.query) else {
            return false;
        };
        let Ok(many) = runtime.database().run_query(&tq.query) else {
            return false;
        };
        a = a.wrapping_add(result_hash(&tq.query, &one.output));
        b = b.wrapping_add(result_hash(&tq.query, &many.output));
    }
    a == b
}

fn main() {
    let args = parse_args();
    let tenants = MultiTenantConfig {
        tenants: args.tenants,
        zipf_s: args.zipf,
        seed: args.seed,
        ..MultiTenantConfig::default()
    };
    let config = MtSoakConfig {
        shards: args.shards,
        tenants: tenants.clone(),
        workers: args.workers,
        buckets: args.buckets,
        ..MtSoakConfig::default()
    };
    let budget_bytes = config.budget_bytes;
    let runtime = match ShardedRuntime::new(config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fixture failed: {e}");
            std::process::exit(1);
        }
    };
    let plan = runtime.plan();
    let planned: usize = plan.iter().map(Vec::len).sum();
    println!(
        "soak-mt: {} shards, {} tenants (zipf {}), {} buckets / {} queries, {} workers, seed {}",
        args.shards,
        args.tenants,
        args.zipf,
        plan.len(),
        planned,
        args.workers,
        args.seed
    );

    let outcome = match runtime.run(&plan) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("soak-mt failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "served {} queries in {:.2}s ({:.0} q/s), {} errors, {} wrong results",
        outcome.queries,
        outcome.wall_seconds,
        outcome.sustained_qps,
        outcome.errors,
        outcome.wrong_results
    );
    println!(
        "routing: {} routed to a single shard, {} scatter-gathered, {} morsels",
        outcome.routed, outcome.scattered, outcome.morsels
    );

    let mean_p95 = outcome.mean_tenant_p95_ms(P95_MIN_QUERIES);
    let neighbor_delta = noisy_neighbor_delta_ms(&runtime, &outcome);
    println!(
        "tenants: {} active, mean p95 {:.4} ms (>= {} queries), noisy-neighbor delta {} ms",
        outcome.tenant_stats.len(),
        mean_p95,
        P95_MIN_QUERIES,
        neighbor_delta.map_or("n/a".to_string(), |d| format!("{d:.4}")),
    );
    for (s, tuning) in outcome.shard_tuning.iter().enumerate() {
        println!(
            "shard {s}: {} tunings, {} actions applied, {} rollbacks, paused: {}",
            tuning.tunings_run, tuning.actions_applied, tuning.rollbacks, tuning.paused
        );
    }
    println!(
        "organizer: {} of {} shards tuned, budget {} B, peak configured {} B, \
         within budget every bucket: {}",
        outcome.shards_tuned,
        args.shards,
        budget_bytes,
        outcome.max_used_bytes,
        outcome.budget_ok_every_bucket
    );

    let sample: Vec<TenantQuery> = plan
        .iter()
        .flatten()
        .take(DIGEST_CHECK_QUERIES)
        .cloned()
        .collect();
    let invariant = digest_invariant(&runtime, &tenants, &sample);
    println!(
        "digest invariance vs 1 shard over {} queries: {}",
        sample.len(),
        invariant
    );

    report::record("multitenant", "shards", (args.shards as u64).into());
    report::record("multitenant", "tenants", (args.tenants as u64).into());
    report::record("multitenant", "zipf_s", args.zipf.into());
    report::record("multitenant", "workers", (args.workers as u64).into());
    report::record("multitenant", "seed", args.seed.into());
    report::record("multitenant", "buckets", (plan.len() as u64).into());
    report::record("multitenant", "queries", outcome.queries.into());
    report::record("multitenant", "errors", outcome.errors.into());
    report::record("multitenant", "wrong_results", outcome.wrong_results.into());
    report::record("multitenant", "result_digest", outcome.result_digest.into());
    report::record("multitenant", "digest_invariant", invariant.into());
    report::record("multitenant", "routed", outcome.routed.into());
    report::record("multitenant", "scattered", outcome.scattered.into());
    report::record("multitenant", "morsels", outcome.morsels.into());
    report::record("multitenant", "wall_s", outcome.wall_seconds.into());
    report::record("multitenant", "sustained_qps", outcome.sustained_qps.into());
    report::record(
        "multitenant",
        "tenants_active",
        (outcome.tenant_stats.len() as u64).into(),
    );
    report::record("multitenant", "mean_tenant_p95_ms", mean_p95.into());
    report::record(
        "multitenant",
        "noisy_neighbor_delta_ms",
        neighbor_delta.unwrap_or(0.0).into(),
    );
    report::record(
        "multitenant",
        "shards_tuned",
        (outcome.shards_tuned as u64).into(),
    );
    let mut actions_total = 0u64;
    let mut rollbacks_total = 0u64;
    for (s, tuning) in outcome.shard_tuning.iter().enumerate() {
        actions_total += tuning.actions_applied;
        rollbacks_total += tuning.rollbacks as u64;
        report::record(
            "multitenant",
            &format!("shard{s}_actions_applied"),
            tuning.actions_applied.into(),
        );
        report::record(
            "multitenant",
            &format!("shard{s}_tunings_run"),
            tuning.tunings_run.into(),
        );
    }
    report::record("multitenant", "actions_applied", actions_total.into());
    report::record("multitenant", "rollbacks", rollbacks_total.into());
    report::record("multitenant", "budget_bytes", budget_bytes.into());
    report::record(
        "multitenant",
        "max_used_bytes",
        outcome.max_used_bytes.into(),
    );
    report::record(
        "multitenant",
        "budget_ok_every_bucket",
        outcome.budget_ok_every_bucket.into(),
    );

    if let Some(path) = args.trail_path {
        let doc = outcome.trail.to_string_pretty();
        if let Err(e) = std::fs::write(&path, doc + "\n") {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote merged decision trail to {path}");
    }
    if let Some(path) = args.json_path {
        let doc = report::to_json().to_string_pretty();
        if let Err(e) = std::fs::write(&path, doc + "\n") {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote metrics to {path}");
    }
}
