//! Online serving soak: the runtime benchmark.
//!
//! ```text
//! cargo run --release -p smdb-bench --bin soak                      # defaults
//! cargo run --release -p smdb-bench --bin soak -- --workers 8
//! cargo run --release -p smdb-bench --bin soak -- --json BENCH_runtime.json
//! cargo run --release -p smdb-bench --bin soak -- --trail TRAIL_soak.json
//! ```
//!
//! Serves a seeded phased query stream with a worker pool while the
//! background tuning thread reconfigures the store online, with
//! injected apply failures exercising the rollback path. Prints a
//! summary and, with `--json PATH`, writes the machine-readable
//! `BENCH_runtime.json` (sustained qps, p95 cold vs tuned, actions
//! applied / rolled back, injected failures).

use std::sync::Arc;
use std::time::Instant;

use smdb_bench::report;
use smdb_common::Cost;
use smdb_runtime::{events_database, generate, FaultPlan, Runtime, RuntimeConfig, StreamConfig};

struct Args {
    workers: usize,
    scan_threads: usize,
    morsel_chunks: usize,
    seed: u64,
    buckets: usize,
    kernels: bool,
    json_path: Option<String>,
    trail_path: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        workers: 4,
        scan_threads: 1,
        morsel_chunks: smdb_storage::parallel::DEFAULT_MORSEL_CHUNKS,
        seed: 42,
        buckets: 40,
        kernels: true,
        json_path: None,
        trail_path: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            }
        };
        match arg.as_str() {
            "--workers" => parsed.workers = parse_num(&take("--workers"), "--workers"),
            "--scan-threads" => {
                parsed.scan_threads = parse_num(&take("--scan-threads"), "--scan-threads");
            }
            "--morsel-chunks" => {
                parsed.morsel_chunks = parse_num(&take("--morsel-chunks"), "--morsel-chunks");
            }
            "--seed" => parsed.seed = parse_num(&take("--seed"), "--seed"),
            "--buckets" => parsed.buckets = parse_num(&take("--buckets"), "--buckets"),
            "--no-kernels" => parsed.kernels = false,
            "--json" => parsed.json_path = Some(take("--json")),
            "--trail" => parsed.trail_path = Some(take("--trail")),
            other => {
                eprintln!(
                    "unknown argument {other} (valid: --workers N --scan-threads N \
                     --morsel-chunks N --seed N --buckets N --no-kernels \
                     --json PATH --trail PATH)"
                );
                std::process::exit(2);
            }
        }
    }
    parsed
}

fn parse_num<T: std::str::FromStr>(value: &str, name: &str) -> T {
    match value.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("{name}: invalid number {value}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = parse_args();
    let stream = StreamConfig {
        seed: args.seed,
        buckets: args.buckets,
        ..StreamConfig::default()
    };
    let (db, table) = match events_database(24, 1_000) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("fixture failed: {e}");
            std::process::exit(1);
        }
    };
    if !args.kernels {
        db.engine_mut().set_kernels_enabled(false);
    }
    let plan = generate(table, 24_000, &stream);
    let planned: usize = plan.iter().map(|b| b.queries.len()).sum();
    let runtime = Runtime::new(
        Arc::clone(&db),
        RuntimeConfig {
            workers: args.workers,
            bucket_capacity: Cost(800.0),
            slice_budget: 6,
            fault_plan: FaultPlan::failing_attempts([0, 1, 2]),
            sla_p95: Some(Cost(1.0)),
            scan_threads: args.scan_threads,
            morsel_chunks: args.morsel_chunks,
            ..RuntimeConfig::default()
        },
    );

    println!(
        "soak: {} buckets / {} queries, {} workers, {} scan threads (morsels of {} chunks), seed {}",
        plan.len(),
        planned,
        args.workers,
        args.scan_threads,
        args.morsel_chunks,
        args.seed
    );
    // Per-(target, name) span tallies: coarse spans only (bucket, tuning
    // tick, worker, drain), so the subscriber costs nothing per query.
    let spans = smdb_obs::CountingSubscriber::new();
    smdb_obs::trace::install(spans.clone());
    let start = Instant::now();
    let outcome = match runtime.run(&plan) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("soak failed: {e}");
            std::process::exit(1);
        }
    };
    let wall = start.elapsed().as_secs_f64();
    let qps = outcome.stats.queries as f64 / wall.max(1e-9);

    println!(
        "served {} queries in {:.2}s ({:.0} q/s), {} errors, {} wrong results",
        outcome.stats.queries, wall, qps, outcome.stats.errors, outcome.stats.wrong_results
    );
    println!(
        "latency (sim): cold mean {} p95 {} -> tuned mean {} p95 {}",
        outcome.cold_mean, outcome.cold_p95, outcome.tuned_mean, outcome.tuned_p95
    );
    println!(
        "tuning: {} runs, {} actions applied ({} deferred along the way), {} apply attempts",
        outcome.tuning.tunings_run,
        outcome.tuning.actions_applied,
        outcome.tuning.actions_deferred,
        outcome.apply_attempts
    );
    println!(
        "faults: {} injected, {} rollbacks, {} stored config instances, tuning paused: {}",
        outcome.injected_failures,
        outcome.tuning.rollbacks,
        outcome.tuning.stored_instances,
        outcome.tuning.paused
    );

    let scans = db.scan_stats();
    println!(
        "scans: {} parallel / {} inline, {} morsels dispatched",
        scans.parallel_scans, scans.inline_scans, scans.morsels
    );
    println!(
        "access paths: {} pruned / {} index / {} kernel / {} scalar chunks, {} kernel batches",
        scans.chunks_pruned,
        scans.chunks_index,
        scans.chunks_kernel,
        scans.chunks_scalar,
        scans.kernel_batches
    );

    report::record("soak", "workers", (args.workers as u64).into());
    report::record("soak", "scan_threads", (args.scan_threads as u64).into());
    report::record("soak", "morsel_chunks", (args.morsel_chunks as u64).into());
    report::record("soak", "parallel_scans", scans.parallel_scans.into());
    report::record("soak", "inline_scans", scans.inline_scans.into());
    report::record("soak", "morsels_dispatched", scans.morsels.into());
    report::record("soak", "chunks_pruned", scans.chunks_pruned.into());
    report::record("soak", "chunks_index", scans.chunks_index.into());
    report::record("soak", "chunks_kernel", scans.chunks_kernel.into());
    report::record("soak", "chunks_scalar", scans.chunks_scalar.into());
    report::record("soak", "kernel_batches", scans.kernel_batches.into());
    report::record("soak", "seed", args.seed.into());
    report::record(
        "soak",
        "buckets_served",
        (outcome.buckets_served as u64).into(),
    );
    report::record("soak", "queries", outcome.stats.queries.into());
    report::record("soak", "errors", outcome.stats.errors.into());
    report::record("soak", "wrong_results", outcome.stats.wrong_results.into());
    report::record("soak", "result_digest", outcome.stats.result_digest.into());
    report::record("soak", "wall_s", wall.into());
    report::record("soak", "sustained_qps", qps.into());
    report::record("soak", "cold_mean_ms", outcome.cold_mean.ms().into());
    report::record("soak", "cold_p95_ms", outcome.cold_p95.ms().into());
    report::record("soak", "tuned_mean_ms", outcome.tuned_mean.ms().into());
    report::record("soak", "tuned_p95_ms", outcome.tuned_p95.ms().into());
    report::record("soak", "tunings_run", outcome.tuning.tunings_run.into());
    report::record(
        "soak",
        "actions_applied",
        outcome.tuning.actions_applied.into(),
    );
    report::record(
        "soak",
        "actions_deferred",
        outcome.tuning.actions_deferred.into(),
    );
    report::record(
        "soak",
        "apply_attempts",
        (outcome.apply_attempts as u64).into(),
    );
    report::record(
        "soak",
        "apply_failures",
        outcome.tuning.apply_failures.into(),
    );
    report::record(
        "soak",
        "injected_failures",
        (outcome.injected_failures as u64).into(),
    );
    report::record(
        "soak",
        "rollbacks",
        (outcome.tuning.rollbacks as u64).into(),
    );
    report::record(
        "soak",
        "stored_instances",
        (outcome.tuning.stored_instances as u64).into(),
    );

    // Observability section: span tallies, what-if cache traffic and the
    // flight-recorder decision trail.
    smdb_obs::trace::uninstall();
    let recorder = runtime.driver().flight_recorder();
    let events = recorder.events();
    let rollback_events = events
        .iter()
        .filter(|(_, e)| e.kind() == "action_rolled_back")
        .count();
    let cache_hits = smdb_obs::metrics::counter("driver.whatif_cache_hits").get();
    let cache_misses = smdb_obs::metrics::counter("driver.whatif_cache_misses").get();
    let hit_rate = if cache_hits + cache_misses == 0 {
        0.0
    } else {
        cache_hits as f64 / (cache_hits + cache_misses) as f64
    };
    println!(
        "obs: {} spans, what-if cache {:.1}% hit ({} / {}), trail {} events ({} rollbacks)",
        spans.total(),
        hit_rate * 100.0,
        cache_hits,
        cache_misses,
        events.len(),
        rollback_events
    );
    report::record("obs", "spans_total", spans.total().into());
    for (name, count) in spans.snapshot() {
        report::record("obs", &format!("spans.{name}"), count.into());
    }
    report::record("obs", "whatif_cache_hits", cache_hits.into());
    report::record("obs", "whatif_cache_misses", cache_misses.into());
    report::record("obs", "whatif_cache_hit_rate", hit_rate.into());
    report::record("obs", "trail_events", (events.len() as u64).into());
    report::record("obs", "trail_dropped", recorder.dropped().into());
    report::record(
        "obs",
        "trail_rollback_events",
        (rollback_events as u64).into(),
    );

    if let Some(path) = args.trail_path {
        let doc = recorder.to_json().to_string_pretty();
        if let Err(e) = std::fs::write(&path, doc + "\n") {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote decision trail to {path}");
    }

    if let Some(path) = args.json_path {
        let doc = report::to_json().to_string_pretty();
        if let Err(e) = std::fs::write(&path, doc + "\n") {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote metrics to {path}");
    }
}
