//! Micro-calibration harness: measured kernel timings plus the
//! wall-clock cost-model fit.
//!
//! ```text
//! cargo run --release -p smdb-bench --bin calibrate                 # print only
//! cargo run --release -p smdb-bench --bin calibrate -- --json BENCH_kernels.json
//! cargo run --release -p smdb-bench --bin calibrate -- --repeats 15
//! ```
//!
//! Prints (a) median µs/row per kernel shape with the vectorized layer
//! on and off, and (b) the calibrated cost model's per-term fitted
//! weights and sim-vs-measured relative errors. With `--json PATH` the
//! same numbers are written machine-readable (the `BENCH_kernels.json`
//! artifact `./ci.sh calibrate` produces).

use smdb_bench::calibrate::{self, DEFAULT_REPEATS};
use smdb_bench::report;
use smdb_bench::TableBuilder;

struct Args {
    repeats: usize,
    verbose: bool,
    json_path: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        repeats: DEFAULT_REPEATS,
        verbose: false,
        json_path: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            }
        };
        match arg.as_str() {
            "--repeats" => {
                parsed.repeats = match take("--repeats").parse() {
                    Ok(v) => v,
                    Err(_) => {
                        eprintln!("--repeats: invalid number");
                        std::process::exit(2);
                    }
                }
            }
            "--json" => parsed.json_path = Some(take("--json")),
            "--verbose" => parsed.verbose = true,
            other => {
                eprintln!("unknown argument {other} (valid: --repeats N --verbose --json PATH)");
                std::process::exit(2);
            }
        }
    }
    parsed
}

fn main() {
    let args = parse_args();

    println!(
        "calibrate: {} rows/shape, {} repeats (best-of)",
        calibrate::ROWS,
        args.repeats
    );

    let timings = match calibrate::kernel_micro(args.repeats) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("kernel micro failed: {e}");
            std::process::exit(1);
        }
    };
    let mut table = TableBuilder::new(&["shape", "kernel µs/row", "scalar µs/row", "speedup"]);
    for t in &timings {
        table.row(vec![
            t.shape.to_string(),
            format!("{:.5}", t.kernel_us_per_row),
            format!("{:.5}", t.scalar_us_per_row),
            format!("{:.2}x", t.speedup()),
        ]);
    }
    println!("{}", table.render());
    calibrate::record_kernel_micro(&timings);

    let fit = match calibrate::run_calibration(args.repeats) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("calibration failed: {e}");
            std::process::exit(1);
        }
    };
    if args.verbose {
        let mut table = TableBuilder::new(&["probe", "measured ms", "predicted ms"]);
        for p in &fit.probes {
            table.row(vec![
                p.term.to_string(),
                format!("{:.5}", p.measured_ms),
                format!("{:.5}", p.predicted_ms),
            ]);
        }
        println!("{}", table.render());
    }
    let mut table = TableBuilder::new(&["term", "weight (ms/unit)", "sim-vs-measured err"]);
    for term in &fit.terms {
        table.row(vec![
            term.term.to_string(),
            format!("{:.6}", term.weight_ms_per_unit),
            format!("{:.3}", term.median_rel_err),
        ]);
    }
    println!("{}", table.render());
    println!(
        "{} observations, max term err {:.3}, estimator version {} -> {}, \
         what-if cache flushed: {}",
        fit.observations,
        fit.max_term_err,
        fit.version_before,
        fit.version_after,
        fit.cache_flushed()
    );
    calibrate::record_report(&fit);

    if let Some(path) = args.json_path {
        let doc = report::to_json().to_string_pretty();
        if let Err(e) = std::fs::write(&path, doc + "\n") {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote kernel + calibration metrics to {path}");
    }
}
