//! Bench-regression gate: compares a freshly produced benchmark report
//! (`BENCH_runtime.json` / `BENCH_tuning.json`) against the committed
//! baseline with per-metric directions and tolerances.
//!
//! The gate is deliberately dumb: it reads the same
//! `{"experiments": [{"id": ..., key: value}]}` documents the bench
//! binaries write, checks each registered metric in its improvement
//! direction (a *better* candidate never fails), and treats a missing
//! section or key as a failure — a metric silently disappearing is
//! itself a regression. Exact checks (the soak result digest, error
//! counters) must match bit-for-bit; the digest is the witness that
//! morsel-parallel scans changed nothing but latency.

use smdb_common::json::Json;

/// Which way a metric improves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Latencies, node counts: the candidate may exceed the baseline by
    /// at most the relative tolerance.
    LowerIsBetter,
    /// Throughput, hit rates: the candidate may fall short of the
    /// baseline by at most the relative tolerance.
    HigherIsBetter,
}

/// One gated numeric metric.
#[derive(Debug, Clone, Copy)]
pub struct MetricSpec {
    /// Section id inside the `experiments` array (`soak`, `obs`, `e5`…).
    pub section: &'static str,
    pub key: &'static str,
    pub direction: Direction,
    /// Allowed relative slack in the *worsening* direction
    /// (0.10 = 10 %).
    pub rel_tolerance: f64,
}

/// One metric that must match the baseline exactly (compared as JSON
/// values, so digests and booleans work unchanged).
#[derive(Debug, Clone, Copy)]
pub struct ExactSpec {
    pub section: &'static str,
    pub key: &'static str,
}

/// One metric bounded by an absolute ceiling, independent of any
/// baseline. Used for quantities with a meaningful scale of their own —
/// a calibration error of 0.4 is bad even if yesterday's was 0.5.
#[derive(Debug, Clone, Copy)]
pub struct BoundSpec {
    pub section: &'static str,
    pub key: &'static str,
    /// The candidate value must be `<= max`.
    pub max: f64,
}

/// Outcome of one check.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// `section.key`.
    pub metric: String,
    pub passed: bool,
    /// Human-readable comparison, e.g. `0.36 -> 0.48 (+33.3% > +10%)`.
    pub detail: String,
}

/// All checks of one gate run.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    pub checks: Vec<CheckResult>,
}

impl GateReport {
    /// Whether any check failed.
    pub fn failed(&self) -> bool {
        self.checks.iter().any(|c| !c.passed)
    }

    /// One line per check, failures marked.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            let mark = if c.passed { "ok  " } else { "FAIL" };
            out.push_str(&format!("{mark} {:40} {}\n", c.metric, c.detail));
        }
        let failed = self.checks.iter().filter(|c| !c.passed).count();
        out.push_str(&format!(
            "{} check(s), {} failed\n",
            self.checks.len(),
            failed
        ));
        out
    }

    /// Merges another report's checks into this one.
    pub fn extend(&mut self, other: GateReport) {
        self.checks.extend(other.checks);
    }
}

/// The runtime-soak gate (`BENCH_runtime.json`). Simulated latencies are
/// deterministic, so their tolerance only absorbs model-level drift;
/// `sustained_qps` is wall-clock and gets a wider band for noisy CI
/// machines — 25 %, tight enough that losing the vectorized kernel
/// layer (a >30 % throughput hit on the soak) cannot slip through. The
/// digest and the error counters must match exactly.
pub fn runtime_specs() -> (Vec<MetricSpec>, Vec<ExactSpec>) {
    let metrics = vec![
        MetricSpec {
            section: "soak",
            key: "cold_p95_ms",
            direction: Direction::LowerIsBetter,
            rel_tolerance: 0.10,
        },
        MetricSpec {
            section: "soak",
            key: "tuned_p95_ms",
            direction: Direction::LowerIsBetter,
            rel_tolerance: 0.10,
        },
        MetricSpec {
            section: "soak",
            key: "tuned_mean_ms",
            direction: Direction::LowerIsBetter,
            rel_tolerance: 0.10,
        },
        MetricSpec {
            section: "soak",
            key: "sustained_qps",
            direction: Direction::HigherIsBetter,
            rel_tolerance: 0.25,
        },
        MetricSpec {
            section: "obs",
            key: "whatif_cache_hit_rate",
            direction: Direction::HigherIsBetter,
            rel_tolerance: 0.05,
        },
    ];
    let exact = vec![
        ExactSpec {
            section: "soak",
            key: "result_digest",
        },
        ExactSpec {
            section: "soak",
            key: "errors",
        },
        ExactSpec {
            section: "soak",
            key: "wrong_results",
        },
    ];
    (metrics, exact)
}

/// The multi-tenant sharded-soak gate (`BENCH_multitenant.json`).
/// Simulated latencies, routing decisions and tuning traces are all
/// seed-deterministic, so their tolerances only absorb model drift;
/// `sustained_qps` is wall-clock and gets the same 25 % band as the
/// single-engine soak. The digest, the digest-invariance witness (the
/// N-shard scatter answering bit-identically to a 1-shard build) and
/// the Organizer's budget-compliance flag must match exactly.
pub fn multitenant_specs() -> (Vec<MetricSpec>, Vec<ExactSpec>) {
    let metrics = vec![
        MetricSpec {
            section: "multitenant",
            key: "sustained_qps",
            direction: Direction::HigherIsBetter,
            rel_tolerance: 0.25,
        },
        MetricSpec {
            section: "multitenant",
            key: "mean_tenant_p95_ms",
            direction: Direction::LowerIsBetter,
            rel_tolerance: 0.10,
        },
        MetricSpec {
            section: "multitenant",
            key: "shards_tuned",
            direction: Direction::HigherIsBetter,
            rel_tolerance: 0.34,
        },
        MetricSpec {
            section: "multitenant",
            key: "routed",
            direction: Direction::HigherIsBetter,
            rel_tolerance: 0.10,
        },
    ];
    let exact = vec![
        ExactSpec {
            section: "multitenant",
            key: "result_digest",
        },
        ExactSpec {
            section: "multitenant",
            key: "digest_invariant",
        },
        ExactSpec {
            section: "multitenant",
            key: "budget_ok_every_bucket",
        },
        ExactSpec {
            section: "multitenant",
            key: "errors",
        },
        ExactSpec {
            section: "multitenant",
            key: "wrong_results",
        },
    ];
    (metrics, exact)
}

/// Absolute ceiling on the noisy-neighbor probe of
/// `BENCH_multitenant.json`: quiet tenants sharing the hot tenant's
/// shard must not pay more than 0.05 ms of extra p95 versus quiet
/// tenants elsewhere. A ceiling, not a baseline comparison — tenant
/// isolation has its own scale.
pub fn multitenant_bounds() -> Vec<BoundSpec> {
    vec![BoundSpec {
        section: "multitenant",
        key: "noisy_neighbor_delta_ms",
        max: 0.05,
    }]
}

/// The kill-and-recover gate (`BENCH_recovery.json`). Everything the
/// durability layer does is seed-deterministic — the WAL replay length,
/// the bucket serving resumes at, the resumed digest — so those gate
/// exactly. Write amplification is the snapshot-cadence KPI and gets a
/// narrow band; the recovery time itself is wall-clock and is bounded
/// by an absolute RTO ceiling instead ([`recovery_bounds`]).
pub fn recovery_specs() -> (Vec<MetricSpec>, Vec<ExactSpec>) {
    let metrics = vec![MetricSpec {
        section: "recover",
        key: "write_amplification",
        direction: Direction::LowerIsBetter,
        rel_tolerance: 0.25,
    }];
    let exact = vec![
        ExactSpec {
            section: "recover",
            key: "digest_match",
        },
        ExactSpec {
            section: "recover",
            key: "errors",
        },
        ExactSpec {
            section: "recover",
            key: "wrong_results",
        },
        ExactSpec {
            section: "recover",
            key: "replayed_records",
        },
        ExactSpec {
            section: "recover",
            key: "dropped_records",
        },
        ExactSpec {
            section: "recover",
            key: "resumed_at_bucket",
        },
    ];
    (metrics, exact)
}

/// Absolute ceiling on the recovery time (read + decode + replay +
/// restore, excluding resumed serving): the measured RTO must stay
/// under 1.5 s regardless of where the baseline sits — recovery that
/// got slower along with its baseline is still a worse database.
pub fn recovery_bounds() -> Vec<BoundSpec> {
    vec![BoundSpec {
        section: "recover",
        key: "recovery_ms",
        max: 1_500.0,
    }]
}

/// The tuning-experiments gate (`BENCH_tuning.json`, quick-mode subset
/// e3/e4/e5): cache hit rates and the warm-assessment speedup must not
/// erode; branch-and-bound node counts are deterministic and get a
/// narrow band.
pub fn tuning_specs() -> (Vec<MetricSpec>, Vec<ExactSpec>) {
    let metrics = vec![
        MetricSpec {
            section: "e3",
            key: "cache_hit_rate",
            direction: Direction::HigherIsBetter,
            rel_tolerance: 0.05,
        },
        MetricSpec {
            section: "e4",
            key: "bb_nodes_warm",
            direction: Direction::LowerIsBetter,
            rel_tolerance: 0.10,
        },
        MetricSpec {
            section: "e5",
            key: "cache_hit_rate",
            direction: Direction::HigherIsBetter,
            rel_tolerance: 0.05,
        },
        MetricSpec {
            section: "e5",
            key: "warm_speedup",
            direction: Direction::HigherIsBetter,
            rel_tolerance: 0.30,
        },
    ];
    let exact = vec![ExactSpec {
        section: "e5",
        key: "assessments_identical",
    }];
    (metrics, exact)
}

/// Absolute bounds on the E11 calibration section of
/// `BENCH_tuning.json`: every cost term's sim-vs-measured relative
/// error must stay within 30 %. These are ceilings, not baseline
/// comparisons — the fit quality has its own scale, and a drifting
/// baseline must not normalise a bad fit.
pub fn tuning_bounds() -> Vec<BoundSpec> {
    [
        "sim_vs_measured_err_scan_raw",
        "sim_vs_measured_err_scan_dict",
        "sim_vs_measured_err_scan_rle",
        "sim_vs_measured_err_scan_for",
        "sim_vs_measured_err_probe",
        "sim_vs_measured_err_refine",
        "sim_vs_measured_err_agg",
        "sim_vs_measured_err_group",
    ]
    .iter()
    .map(|&key| BoundSpec {
        section: "calibration",
        key,
        max: 0.30,
    })
    .collect()
}

/// Checks every absolute bound against the candidate document alone.
/// Missing sections or keys fail the check, same as [`compare`].
pub fn check_bounds(candidate: &Json, bounds: &[BoundSpec]) -> GateReport {
    let mut report = GateReport::default();
    for spec in bounds {
        let metric = format!("{}.{}", spec.section, spec.key);
        let check = match lookup(candidate, spec.section, spec.key).and_then(|j| j.as_f64()) {
            Some(v) => CheckResult {
                metric,
                passed: v <= spec.max,
                detail: format!("{v:.4} (bound <= {:.2})", spec.max),
            },
            None => CheckResult {
                metric,
                passed: false,
                detail: "missing in candidate".to_string(),
            },
        };
        report.checks.push(check);
    }
    report
}

/// Runs every spec of `baseline` vs `candidate`. Missing sections or
/// keys fail the corresponding check rather than erroring out, so one
/// run reports everything that is wrong at once.
pub fn compare(
    baseline: &Json,
    candidate: &Json,
    metrics: &[MetricSpec],
    exact: &[ExactSpec],
) -> GateReport {
    let mut report = GateReport::default();
    for spec in metrics {
        let metric = format!("{}.{}", spec.section, spec.key);
        let (b, c) = (
            lookup(baseline, spec.section, spec.key).and_then(|j| j.as_f64()),
            lookup(candidate, spec.section, spec.key).and_then(|j| j.as_f64()),
        );
        let check = match (b, c) {
            (Some(b), Some(c)) => numeric_check(metric, b, c, spec),
            _ => CheckResult {
                metric,
                passed: false,
                detail: format!(
                    "missing in {}",
                    if b.is_none() { "baseline" } else { "candidate" }
                ),
            },
        };
        report.checks.push(check);
    }
    for spec in exact {
        let metric = format!("{}.{}", spec.section, spec.key);
        let (b, c) = (
            lookup(baseline, spec.section, spec.key),
            lookup(candidate, spec.section, spec.key),
        );
        let check = match (b, c) {
            (Some(b), Some(c)) => {
                let passed = json_eq(b, c);
                CheckResult {
                    metric,
                    passed,
                    detail: if passed {
                        format!("= {}", render(b))
                    } else {
                        format!("{} -> {} (must match exactly)", render(b), render(c))
                    },
                }
            }
            _ => CheckResult {
                metric,
                passed: false,
                detail: format!(
                    "missing in {}",
                    if b.is_none() { "baseline" } else { "candidate" }
                ),
            },
        };
        report.checks.push(check);
    }
    report
}

fn numeric_check(metric: String, baseline: f64, candidate: f64, spec: &MetricSpec) -> CheckResult {
    // Relative worsening, positive when the candidate is worse in the
    // spec's direction. Zero baselines compare absolutely.
    let scale = baseline.abs().max(1e-12);
    let worsening = match spec.direction {
        Direction::LowerIsBetter => (candidate - baseline) / scale,
        Direction::HigherIsBetter => (baseline - candidate) / scale,
    };
    let passed = worsening <= spec.rel_tolerance;
    CheckResult {
        metric,
        passed,
        detail: format!(
            "{baseline:.4} -> {candidate:.4} ({:+.1}% worse, tolerance {:.0}%)",
            worsening * 100.0,
            spec.rel_tolerance * 100.0
        ),
    }
}

/// Finds `key` inside the experiments entry whose `id` is `section`.
fn lookup<'a>(doc: &'a Json, section: &str, key: &str) -> Option<&'a Json> {
    doc.get("experiments")?
        .as_array()?
        .iter()
        .find(|e| e.get("id").and_then(|id| id.as_str()) == Some(section))?
        .get(key)
}

/// Structural equality over the JSON subset the reports use.
fn json_eq(a: &Json, b: &Json) -> bool {
    render(a) == render(b)
}

fn render(j: &Json) -> String {
    j.to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::json::parse;

    fn runtime_doc(p95: f64, digest: u64) -> Json {
        parse(&format!(
            r#"{{"experiments": [
                 {{"id": "soak", "cold_p95_ms": 2.4, "tuned_p95_ms": {p95},
                  "tuned_mean_ms": 0.3, "sustained_qps": 30000.0,
                  "result_digest": {digest}, "errors": 0, "wrong_results": 0}},
                 {{"id": "obs", "whatif_cache_hit_rate": 0.97}}]}}"#
        ))
        .expect("fixture parses")
    }

    #[test]
    fn identical_reports_pass() {
        let (m, e) = runtime_specs();
        let doc = runtime_doc(0.36, 7);
        let report = compare(&doc, &doc, &m, &e);
        assert!(!report.failed(), "{}", report.render_human());
    }

    #[test]
    fn twenty_percent_worse_p95_fails() {
        let (m, e) = runtime_specs();
        let baseline = runtime_doc(0.36, 7);
        let candidate = runtime_doc(0.36 * 1.2, 7);
        let report = compare(&baseline, &candidate, &m, &e);
        assert!(report.failed(), "{}", report.render_human());
        assert!(report.render_human().contains("soak.tuned_p95_ms"));
    }

    #[test]
    fn improvement_never_fails() {
        let (m, e) = runtime_specs();
        let baseline = runtime_doc(0.36, 7);
        let candidate = runtime_doc(0.36 / 3.0, 7);
        let report = compare(&baseline, &candidate, &m, &e);
        assert!(!report.failed(), "{}", report.render_human());
    }

    #[test]
    fn digest_must_match_exactly() {
        let (m, e) = runtime_specs();
        let report = compare(&runtime_doc(0.36, 7), &runtime_doc(0.36, 8), &m, &e);
        assert!(report.failed());
        let failed: Vec<_> = report.checks.iter().filter(|c| !c.passed).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].metric, "soak.result_digest");
    }

    #[test]
    fn qps_tolerance_is_25_percent() {
        let spec = runtime_specs()
            .0
            .into_iter()
            .find(|s| s.key == "sustained_qps")
            .expect("sustained_qps is gated");
        assert_eq!(spec.rel_tolerance, 0.25);
    }

    #[test]
    fn calibration_bounds_cover_every_term() {
        let bounds = tuning_bounds();
        assert_eq!(bounds.len(), 8);
        let doc = parse(
            r#"{"experiments": [{"id": "calibration",
                 "sim_vs_measured_err_scan_raw": 0.1,
                 "sim_vs_measured_err_scan_dict": 0.1,
                 "sim_vs_measured_err_scan_rle": 0.1,
                 "sim_vs_measured_err_scan_for": 0.1,
                 "sim_vs_measured_err_probe": 0.1,
                 "sim_vs_measured_err_refine": 0.1,
                 "sim_vs_measured_err_agg": 0.1,
                 "sim_vs_measured_err_group": 0.29}]}"#,
        )
        .expect("parses");
        assert!(!check_bounds(&doc, &bounds).failed());
    }

    #[test]
    fn calibration_error_over_bound_fails() {
        let doc = parse(
            r#"{"experiments": [{"id": "calibration",
                 "sim_vs_measured_err_scan_raw": 0.31}]}"#,
        )
        .expect("parses");
        let report = check_bounds(&doc, &tuning_bounds());
        assert!(report.failed());
        // The over-bound term fails on value, the other seven on absence.
        let raw = report
            .checks
            .iter()
            .find(|c| c.metric == "calibration.sim_vs_measured_err_scan_raw")
            .expect("raw term checked");
        assert!(!raw.passed);
        assert!(raw.detail.contains("0.3100"));
    }

    #[test]
    fn missing_metric_fails_loudly() {
        let (m, e) = runtime_specs();
        let baseline = runtime_doc(0.36, 7);
        let candidate = parse(r#"{"experiments": [{"id": "soak"}]}"#).expect("parses");
        let report = compare(&baseline, &candidate, &m, &e);
        assert!(report.failed());
        assert!(report.render_human().contains("missing in candidate"));
    }
}
