//! Measured cost-model calibration (E11).
//!
//! Two harnesses over one mixed-encoding fixture table:
//!
//! * [`kernel_micro`] times each kernel shape (driving filters per
//!   encoding, residual refinement, plain and grouped aggregation) with
//!   the vectorized kernel layer on and off, reporting best-of-repeats µs/row —
//!   the machine-readable twin of the `scan_kernels` criterion bench,
//!   written to `BENCH_kernels.json` by `./ci.sh calibrate`.
//! * [`run_calibration`] measures *wall-clock* per-query cost over a
//!   query grid that isolates each cost term (raw/dict/RLE/FoR scan
//!   units, index probes, refinement, aggregation, grouping), feeds the
//!   measurements to the [`CalibratedCostModel`] regression, refits, and
//!   reports the fitted ms-per-unit weight plus the sim-vs-measured
//!   relative error per term. The refit bumps the estimator version,
//!   which the report verifies by watching a warmed [`WhatIf`] cost
//!   cache flush on the next lookup.
//!
//! Wall-clock timings are inherently host-dependent; the *fit* given a
//! fixed observation set is deterministic (see the reproducibility test
//! in `kernel_props.rs`). The per-term errors are gated at ≤ 30 % by the
//! bench gate (`gate::tuning_bounds`), so a cost model drifting away
//! from measured reality fails CI rather than silently mistuning.

use std::sync::Arc;
use std::time::Instant;

use smdb_common::{ChunkColumnRef, ColumnId, Cost, Result};
use smdb_cost::features::{extract_features, fi, ConfigContext};
use smdb_cost::{CalibratedCostModel, CostEstimator, WhatIf};
use smdb_query::{Query, Workload};
use smdb_storage::value::ColumnValues;
use smdb_storage::{
    Aggregate, AggregateOp, ColumnDef, ConfigAction, DataType, EncodingKind, IndexKind,
    PredicateOp, ScanPredicate, Schema, StorageEngine, Table,
};

use crate::report;

/// Fixture scale: rows and chunk size of the calibration table.
pub const ROWS: usize = 40_000;
const CHUNK: usize = 4_000;

/// Default measurement repeats (minimum taken).
pub const DEFAULT_REPEATS: usize = 9;

/// Builds the calibration fixture: one table whose columns cover every
/// encoding the kernels specialize for, plus a hash-indexed probe
/// column. Column layout (`sorted` controls columns 0–2):
///
/// | col | name | data            | physical design        |
/// |-----|------|-----------------|------------------------|
/// | 0   | `u`  | `i` or `i%1000` | unencoded              |
/// | 1   | `d`  | `i` or `i%1000` | dictionary             |
/// | 2   | `o`  | `i` or `i%1000` | frame-of-reference     |
/// | 3   | `r`  | `i / 40` (runs) | run-length             |
/// | 4   | `f`  | `i * 0.5`       | unencoded float        |
/// | 5   | `g`  | `i % 8`         | unencoded (group keys) |
/// | 6   | `x`  | `i % 500`       | hash index, all chunks |
///
/// The micro harness uses the *unsorted* layout (every chunk covers the
/// full value range, so a range predicate scans the whole table — the
/// per-row number is meaningful). The calibration fit uses the *sorted*
/// layout: range predicates then prune to a controllable chunk prefix,
/// which makes each scan term's feature vary across the probe grid —
/// without that variation the regression cannot attribute
/// span-dependent wall time to the scan slots at all.
pub fn build_fixture(sorted: bool) -> Result<(StorageEngine, smdb_common::TableId)> {
    let schema = Schema::new(vec![
        ColumnDef::new("u", DataType::Int),
        ColumnDef::new("d", DataType::Int),
        ColumnDef::new("o", DataType::Int),
        ColumnDef::new("r", DataType::Int),
        ColumnDef::new("f", DataType::Float),
        ColumnDef::new("g", DataType::Int),
        ColumnDef::new("x", DataType::Int),
    ])?;
    let key = |i: i64| if sorted { i } else { i % 1000 };
    let table = Table::from_columns(
        "calibration",
        schema,
        vec![
            ColumnValues::Int((0..ROWS as i64).map(key).collect()),
            ColumnValues::Int((0..ROWS as i64).map(key).collect()),
            ColumnValues::Int((0..ROWS as i64).map(key).collect()),
            ColumnValues::Int((0..ROWS as i64).map(|i| i / 40).collect()),
            ColumnValues::Float((0..ROWS).map(|i| i as f64 * 0.5).collect()),
            ColumnValues::Int((0..ROWS as i64).map(|i| i % 8).collect()),
            ColumnValues::Int((0..ROWS as i64).map(|i| i % 500).collect()),
        ],
        CHUNK,
    )?;
    let mut engine = StorageEngine::default();
    let t = engine.create_table(table)?;
    let chunks = (ROWS / CHUNK) as u32;
    for (col, kind) in [
        (1u16, EncodingKind::Dictionary),
        (2, EncodingKind::FrameOfReference),
        (3, EncodingKind::RunLength),
    ] {
        for chunk in 0..chunks {
            engine.apply_action(&ConfigAction::SetEncoding {
                target: ChunkColumnRef::new(t.0, col, chunk),
                kind,
            })?;
        }
    }
    for chunk in 0..chunks {
        engine.apply_action(&ConfigAction::CreateIndex {
            target: ChunkColumnRef::new(t.0, 6, chunk),
            kind: IndexKind::Hash,
        })?;
    }
    Ok((engine, t))
}

/// Best (minimum) wall-clock microseconds of `f` over `repeats` runs,
/// after one untimed warm-up. The minimum, not the median: scheduler
/// and cache interference on a shared host is strictly additive, so the
/// fastest observation is the closest to the work's true cost — and the
/// calibration fit is gated, so per-query estimates must be stable
/// across noisy CI hosts.
fn best_us(repeats: usize, mut f: impl FnMut()) -> f64 {
    f();
    (0..repeats.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .fold(f64::INFINITY, f64::min)
}

/// One kernel-vs-scalar micro measurement.
#[derive(Debug, Clone)]
pub struct KernelTiming {
    /// Shape label, matching the `scan_kernels` criterion bench ids.
    pub shape: &'static str,
    /// Median µs per table row with the kernel layer enabled.
    pub kernel_us_per_row: f64,
    /// Median µs per table row with the kernel layer disabled.
    pub scalar_us_per_row: f64,
}

impl KernelTiming {
    /// Scalar-over-kernel speedup (> 1 means the kernel wins).
    pub fn speedup(&self) -> f64 {
        if self.kernel_us_per_row <= 0.0 {
            return 0.0;
        }
        self.scalar_us_per_row / self.kernel_us_per_row
    }
}

/// Times every kernel shape with the kernel layer on and off over the
/// shared fixture. µs/row is normalized by the table's total row count,
/// so shapes are comparable to each other and across runs.
pub fn kernel_micro(repeats: usize) -> Result<Vec<KernelTiming>> {
    let (mut engine, t) = build_fixture(false)?;
    let pred_u = ScanPredicate::between(ColumnId(0), 100i64, 299i64);
    let pred_d = ScanPredicate::between(ColumnId(1), 100i64, 299i64);
    let pred_o = ScanPredicate::between(ColumnId(2), 100i64, 299i64);
    let pred_r = ScanPredicate::between(ColumnId(3), 100i64, 299i64);
    let pred_f = ScanPredicate::cmp(ColumnId(4), PredicateOp::Lt, 10_000.0);
    let sum_f = Aggregate::new(AggregateOp::Sum, ColumnId(4));

    struct Shape {
        label: &'static str,
        preds: Vec<ScanPredicate>,
        agg: Option<Aggregate>,
        group: Option<ColumnId>,
    }
    let shapes = [
        Shape {
            label: "filter_raw",
            preds: vec![pred_u.clone()],
            agg: None,
            group: None,
        },
        Shape {
            label: "filter_dict",
            preds: vec![pred_d],
            agg: None,
            group: None,
        },
        Shape {
            label: "filter_for",
            preds: vec![pred_o],
            agg: None,
            group: None,
        },
        Shape {
            label: "filter_rle",
            preds: vec![pred_r],
            agg: None,
            group: None,
        },
        Shape {
            label: "refine_float",
            preds: vec![pred_u.clone(), pred_f],
            agg: None,
            group: None,
        },
        Shape {
            label: "agg_sum",
            preds: vec![pred_u.clone()],
            agg: Some(sum_f.clone()),
            group: None,
        },
        Shape {
            label: "group_sum",
            preds: vec![pred_u],
            agg: Some(sum_f),
            group: Some(ColumnId(5)),
        },
    ];

    let mut out = Vec::with_capacity(shapes.len());
    for shape in &shapes {
        let timed = |enabled: bool, engine: &mut StorageEngine| {
            engine.set_kernels_enabled(enabled);
            best_us(repeats, || {
                engine
                    .scan_grouped(t, &shape.preds, shape.agg.as_ref(), shape.group)
                    .expect("fixture scan succeeds");
            }) / ROWS as f64
        };
        let kernel_us_per_row = timed(true, &mut engine);
        let scalar_us_per_row = timed(false, &mut engine);
        engine.set_kernels_enabled(true);
        out.push(KernelTiming {
            shape: shape.label,
            kernel_us_per_row,
            scalar_us_per_row,
        });
    }
    Ok(out)
}

/// The cost terms calibration isolates, each mapped to the feature slot
/// its probe queries exercise most.
pub const TERMS: [(&str, usize); 8] = [
    ("scan_raw", fi::SCAN_RAW),
    ("scan_dict", fi::SCAN_DICT),
    ("scan_rle", fi::SCAN_RLE),
    ("scan_for", fi::SCAN_FOR),
    ("probe", fi::INDEX_PROBES),
    ("refine", fi::REFINE_ROWS),
    ("agg", fi::AGG_ROWS),
    ("group", fi::GROUP_ROWS),
];

/// The fitted model's agreement with measurement for one cost term.
#[derive(Debug, Clone)]
pub struct TermFit {
    /// Term label (see [`TERMS`]).
    pub term: &'static str,
    /// Fitted weight: ms per feature unit (row, run or probe).
    pub weight_ms_per_unit: f64,
    /// Median relative error |predicted − measured| / measured over the
    /// term's probe queries.
    pub median_rel_err: f64,
    /// Probe queries measured for this term.
    pub samples: usize,
}

/// One measured probe query: the term it isolates, its best measured
/// wall time and the fitted model's prediction.
#[derive(Debug, Clone)]
pub struct ProbeResult {
    /// Term the query was designed to exercise.
    pub term: &'static str,
    /// Median measured wall time (ms).
    pub measured_ms: f64,
    /// Fitted model prediction (ms).
    pub predicted_ms: f64,
}

/// The calibration harness result.
#[derive(Debug, Clone)]
pub struct CalibrationReport {
    /// Per-term fits, in [`TERMS`] order.
    pub terms: Vec<TermFit>,
    /// Every probe query's measured vs predicted cost, in grid order.
    pub probes: Vec<ProbeResult>,
    /// Wall-clock observations fed to the regression.
    pub observations: usize,
    /// Largest per-term median relative error.
    pub max_term_err: f64,
    /// Estimator version before the final refit.
    pub version_before: u64,
    /// Estimator version after the final refit (must be larger — this is
    /// what keys the `CostCache` flush).
    pub version_after: u64,
    /// What-if cache entries after warming, before the refit.
    pub cache_entries_warm: usize,
    /// Cache entries right after the first post-refit lookup — the
    /// version sweep must have flushed the warm entries.
    pub cache_entries_after_refit: usize,
}

impl CalibrationReport {
    /// Whether the refit demonstrably flushed the warmed what-if cache.
    pub fn cache_flushed(&self) -> bool {
        self.version_after > self.version_before
            && self.cache_entries_warm > 1
            && self.cache_entries_after_refit < self.cache_entries_warm
    }
}

/// The probe-query grid over the *sorted* fixture: each entry is
/// `(term, query)` where the query's dominant cost lives in that term's
/// feature slot. Range predicates select a prefix of `chunks` chunks
/// (the sorted key makes chunk stats prune the rest), so each scan
/// term's feature takes several distinct magnitudes across the grid —
/// the variation the regression needs to attribute wall time to the
/// slot.
fn probe_grid(t: smdb_common::TableId) -> Vec<(&'static str, Query)> {
    let chunk_prefixes: [i64; 4] = [1, 2, 4, 8];
    let hi = |chunks: i64| chunks * CHUNK as i64 - 1;
    let mut grid: Vec<(&'static str, Query)> = Vec::new();
    // Driving filters per encoding: col 0 raw, 1 dict, 2 FoR, 3 RLE.
    // `r = i / 40` is also ascending, so the same prefix rule holds with
    // bounds divided by the run length.
    for (term, col, scale) in [
        ("scan_raw", 0u16, 1i64),
        ("scan_dict", 1, 1),
        ("scan_for", 2, 1),
        ("scan_rle", 3, 40),
    ] {
        for &chunks in &chunk_prefixes {
            let pred = ScanPredicate::between(ColumnId(col), 0i64, hi(chunks) / scale);
            grid.push((term, Query::new(t, "calibration", vec![pred], None, term)));
        }
    }
    // Index probes: equality on the hash-indexed column.
    for v in [3i64, 77, 250, 444] {
        let pred = ScanPredicate::eq(ColumnId(6), v);
        grid.push((
            "probe",
            Query::new(t, "calibration", vec![pred], None, "probe"),
        ));
    }
    // Residual refinement: raw driving filter plus a float residual.
    for &chunks in &chunk_prefixes {
        let preds = vec![
            ScanPredicate::between(ColumnId(0), 0i64, hi(chunks)),
            ScanPredicate::cmp(ColumnId(4), PredicateOp::Lt, 10_000.0),
        ];
        grid.push((
            "refine",
            Query::new(t, "calibration", preds, None, "refine"),
        ));
    }
    // Aggregation and grouping over the float column.
    for &chunks in &chunk_prefixes {
        let pred = ScanPredicate::between(ColumnId(0), 0i64, hi(chunks));
        let sum = Aggregate::new(AggregateOp::Sum, ColumnId(4));
        grid.push((
            "agg",
            Query::new(
                t,
                "calibration",
                vec![pred.clone()],
                Some(sum.clone()),
                "agg",
            ),
        ));
        grid.push((
            "group",
            Query::new(t, "calibration", vec![pred], Some(sum), "group").with_group_by(ColumnId(5)),
        ));
    }
    grid
}

/// Runs the measured calibration: times the probe grid, fits the
/// [`CalibratedCostModel`] on the wall-clock timings, and reports the
/// per-term weights, sim-vs-measured errors and the cache-flush check.
pub fn run_calibration(repeats: usize) -> Result<CalibrationReport> {
    let (engine, t) = build_fixture(true)?;
    let config = engine.current_config();
    let ctx = ConfigContext::new(&engine, &config);
    let grid = probe_grid(t);

    // Measure: best-of-rounds wall-clock ms per probe query. Rounds
    // interleave the grid — round `k` runs every query once — so a
    // transient host stall slows one round of every query instead of
    // every repeat of one query; the per-query minimum then survives
    // any stall shorter than the whole measurement window. Round 0 is
    // the untimed warm-up.
    let mut measured_us = vec![f64::INFINITY; grid.len()];
    for round in 0..=repeats.max(1) {
        for (i, (_, q)) in grid.iter().enumerate() {
            let t0 = Instant::now();
            engine
                .scan_grouped(t, q.predicates(), q.aggregate(), q.group_by())
                .expect("probe scan succeeds");
            let us = t0.elapsed().as_secs_f64() * 1e6;
            if round > 0 && us < measured_us[i] {
                measured_us[i] = us;
            }
        }
    }
    let measured_ms: Vec<f64> = measured_us.iter().map(|us| us / 1e3).collect();

    // Fit: feed every (features, measured) pair, then force a refit.
    let model = Arc::new(CalibratedCostModel::new());
    for ((_, q), &ms) in grid.iter().zip(&measured_ms) {
        model.observe_with_ctx(&engine, &ctx, q, &config, Cost(ms))?;
    }

    // Warm a what-if cache on the current fit, then demonstrate that the
    // final refit's version bump flushes it on the next lookup.
    let estimator: Arc<dyn CostEstimator> = Arc::clone(&model) as Arc<dyn CostEstimator>;
    let what_if = WhatIf::new(estimator);
    let workload = Workload::uniform(grid.iter().map(|(_, q)| q.clone()).collect());
    what_if.workload_cost(&engine, &workload, &config)?;
    let cache_entries_warm = what_if.cache().expect("caching enabled").len();
    let version_before = model.version();
    model.refit()?;
    let version_after = model.version();
    what_if.query_cost(&engine, &ctx, &grid[0].1, &config)?;
    let cache_entries_after_refit = what_if.cache().expect("caching enabled").len();

    // Per-term agreement of the fitted model with the measurements.
    let weights = model.weights().expect("refit produced weights");
    let mut probes = Vec::with_capacity(grid.len());
    for ((term, q), &ms) in grid.iter().zip(&measured_ms) {
        let features = extract_features(&engine, &ctx, q, &config)?;
        let predicted_ms: f64 = weights
            .iter()
            .zip(features.as_slice())
            .map(|(w, f)| w * f)
            .sum();
        probes.push(ProbeResult {
            term,
            measured_ms: ms,
            predicted_ms,
        });
    }
    let mut terms = Vec::with_capacity(TERMS.len());
    let mut max_term_err = 0.0f64;
    for &(term, slot) in &TERMS {
        let mut errs: Vec<f64> = probes
            .iter()
            .filter(|p| p.term == term && p.measured_ms > 0.0)
            .map(|p| (p.predicted_ms - p.measured_ms).abs() / p.measured_ms)
            .collect();
        errs.sort_by(f64::total_cmp);
        let median_rel_err = errs.get(errs.len() / 2).copied().unwrap_or(f64::NAN);
        max_term_err = max_term_err.max(median_rel_err);
        terms.push(TermFit {
            term,
            weight_ms_per_unit: weights[slot],
            median_rel_err,
            samples: errs.len(),
        });
    }

    Ok(CalibrationReport {
        terms,
        probes,
        observations: model.observations(),
        max_term_err,
        version_before,
        version_after,
        cache_entries_warm,
        cache_entries_after_refit,
    })
}

/// Records the kernel micro timings under the `kernels` report section
/// (the `BENCH_kernels.json` payload).
pub fn record_kernel_micro(timings: &[KernelTiming]) {
    for t in timings {
        report::record(
            "kernels",
            &format!("{}_kernel_us_per_row", t.shape),
            t.kernel_us_per_row.into(),
        );
        report::record(
            "kernels",
            &format!("{}_scalar_us_per_row", t.shape),
            t.scalar_us_per_row.into(),
        );
        report::record(
            "kernels",
            &format!("{}_speedup", t.shape),
            t.speedup().into(),
        );
    }
}

/// Records the calibration fit under the `calibration` report section —
/// the `sim_vs_measured_err_*` keys are bound-gated (≤ 30 %) by
/// `gate::tuning_bounds`.
pub fn record_report(report: &CalibrationReport) {
    for term in &report.terms {
        report::record(
            "calibration",
            &format!("sim_vs_measured_err_{}", term.term),
            term.median_rel_err.into(),
        );
        report::record(
            "calibration",
            &format!("weight_ms_per_unit_{}", term.term),
            term.weight_ms_per_unit.into(),
        );
    }
    report::record(
        "calibration",
        "observations",
        (report.observations as u64).into(),
    );
    report::record("calibration", "max_term_err", report.max_term_err.into());
    report::record(
        "calibration",
        "estimator_version_bumped",
        (u64::from(report.version_after > report.version_before)).into(),
    );
    report::record(
        "calibration",
        "whatif_cache_flushed",
        (u64::from(report.cache_flushed())).into(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_covers_every_term_feature() {
        let (engine, t) = build_fixture(true).unwrap();
        let config = engine.current_config();
        let ctx = ConfigContext::new(&engine, &config);
        let grid = probe_grid(t);
        // Every term's probe queries put weight on that term's slot.
        for &(term, slot) in &TERMS {
            let exercised = grid.iter().filter(|(tag, _)| *tag == term).any(|(_, q)| {
                extract_features(&engine, &ctx, q, &config)
                    .unwrap()
                    .as_slice()[slot]
                    > 0.0
            });
            assert!(exercised, "term {term} never exercises feature {slot}");
        }
    }

    #[test]
    fn calibration_fits_and_flushes_the_cache() {
        // One repeat keeps the test fast; fit quality is asserted by the
        // gated bench run, not here (timings under test builds are noisy).
        let report = run_calibration(1).unwrap();
        assert_eq!(report.terms.len(), TERMS.len());
        assert!(report.observations >= report.terms.len());
        assert!(
            report.version_after > report.version_before,
            "refit must bump the estimator version"
        );
        assert!(
            report.cache_flushed(),
            "version bump must flush the warmed what-if cache \
             (warm {}, after {})",
            report.cache_entries_warm,
            report.cache_entries_after_refit
        );
        for term in &report.terms {
            assert!(term.samples > 0, "term {} has no samples", term.term);
            assert!(
                term.median_rel_err.is_finite(),
                "term {} error is not finite",
                term.term
            );
        }
    }

    #[test]
    fn kernel_micro_times_every_shape() {
        let timings = kernel_micro(1).unwrap();
        assert_eq!(timings.len(), 7);
        for t in &timings {
            assert!(t.kernel_us_per_row > 0.0, "{} kernel time", t.shape);
            assert!(t.scalar_us_per_row > 0.0, "{} scalar time", t.shape);
        }
    }
}
