//! Shared primitives for the `smdb` self-managing database framework.
//!
//! This crate is the bottom of the dependency graph. It provides the
//! vocabulary types that every other crate speaks:
//!
//! * [`Cost`] — the single cost unit (abstract milliseconds of runtime) the
//!   paper requires so that decisions are "comparable across different
//!   features" (Section II-A(d)),
//! * identifier newtypes for tables, columns and chunks,
//! * [`ChunkColumnRef`], the per-chunk tuning target of Hyrise-style
//!   chunked physical design (Section II-B),
//! * [`LogicalTime`], the discrete clock the workload history and the
//!   organizer run on,
//! * [`Error`] / [`Result`], the crate-spanning error type,
//! * deterministic RNG construction helpers,
//! * [`json`], a std-only JSON value/writer/parser used for audit-trail
//!   exports and lint reports (the build is offline; there is no serde).

pub mod cost;
pub mod error;
pub mod float;
pub mod ids;
pub mod json;
pub mod rng;
pub mod time;

pub use cost::Cost;
pub use error::{Error, Result};
pub use ids::{ChunkColumnRef, ChunkId, ColumnId, TableId};
pub use rng::{derive_seed, seeded_rng};
pub use time::LogicalTime;
