//! The crate-spanning error type.
//!
//! A single enum keeps error plumbing between the substrate crates and the
//! framework simple; variants carry enough context to be actionable in
//! tests and experiment output.

use std::fmt;

/// Errors produced anywhere in the smdb stack.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A named catalog entity (table, column) does not exist.
    NotFound { entity: &'static str, name: String },
    /// A value or argument was outside its legal domain.
    InvalidArgument(String),
    /// A configuration action could not be applied (e.g. duplicate index).
    Configuration(String),
    /// An optimization model was infeasible or unbounded.
    Optimization(String),
    /// A numeric routine failed to converge or hit a singularity.
    Numeric(String),
    /// A constraint set was violated or self-contradictory.
    Constraint(String),
}

impl Error {
    /// Convenience constructor for [`Error::NotFound`].
    pub fn not_found(entity: &'static str, name: impl Into<String>) -> Self {
        Error::NotFound {
            entity,
            name: name.into(),
        }
    }

    /// Convenience constructor for [`Error::InvalidArgument`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        Error::InvalidArgument(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound { entity, name } => write!(f, "{entity} not found: {name}"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::Configuration(m) => write!(f, "configuration error: {m}"),
            Error::Optimization(m) => write!(f, "optimization error: {m}"),
            Error::Numeric(m) => write!(f, "numeric error: {m}"),
            Error::Constraint(m) => write!(f, "constraint error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias used across all smdb crates.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = Error::not_found("table", "lineitem");
        assert_eq!(e.to_string(), "table not found: lineitem");
        let e = Error::invalid("k must be > 0");
        assert!(e.to_string().contains("k must be > 0"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            Error::not_found("table", "x"),
            Error::not_found("table", "x")
        );
        assert_ne!(Error::invalid("a"), Error::invalid("b"));
    }
}
