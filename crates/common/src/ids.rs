//! Identifier newtypes for catalog entities.
//!
//! Hyrise-style chunked column stores take physical-design decisions *per
//! chunk* of an attribute (Section II-B of the paper), so the central
//! tuning target is [`ChunkColumnRef`]: a `(table, column, chunk)` triple.

use std::fmt;

/// Identifies a table in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TableId(pub u32);

/// Identifies a column within a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ColumnId(pub u16);

/// Identifies a chunk within a table. Chunks are horizontal partitions of a
/// fixed target size; every column of a table is split at the same chunk
/// boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChunkId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// The per-chunk tuning target: one column of one chunk of one table.
///
/// Indexes, encodings and placement decisions all attach to this
/// granularity; a per-*table* decision is simply the same decision applied
/// to every chunk of the column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChunkColumnRef {
    pub table: TableId,
    pub column: ColumnId,
    pub chunk: ChunkId,
}

impl ChunkColumnRef {
    /// Creates a reference from raw index values.
    pub fn new(table: u32, column: u16, chunk: u32) -> Self {
        ChunkColumnRef {
            table: TableId(table),
            column: ColumnId(column),
            chunk: ChunkId(chunk),
        }
    }
}

impl fmt::Display for ChunkColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.table, self.column, self.chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn refs_order_lexicographically() {
        let a = ChunkColumnRef::new(0, 0, 0);
        let b = ChunkColumnRef::new(0, 0, 1);
        let c = ChunkColumnRef::new(0, 1, 0);
        let d = ChunkColumnRef::new(1, 0, 0);
        let mut set = BTreeSet::new();
        set.extend([d, c, b, a]);
        let ordered: Vec<_> = set.into_iter().collect();
        assert_eq!(ordered, vec![a, b, c, d]);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ChunkColumnRef::new(2, 3, 4).to_string(), "t2.c3.k4");
    }

    #[test]
    fn ids_hash_and_eq() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(TableId(1));
        set.insert(TableId(1));
        assert_eq!(set.len(), 1);
    }
}
