//! Float comparison seams.
//!
//! The `no-float-eq` lint bans direct `==`/`!=` against float literals in
//! the numerical crates (`crates/cost`, `crates/lp`): a raw comparison
//! hides whether the author meant a *tolerance* decision or an *exact*
//! structural test. This module is the designated seam — callers name the
//! intent and the lint stays clean.

/// Exact zero test. Use only where zero is a *structural* value (a
/// skipped tableau entry, an absent coefficient, a zero knapsack
/// weight), never as a tolerance on a computed result.
pub fn exactly_zero(x: f64) -> bool {
    // `abs` folds -0.0 into 0.0; NaN compares false, i.e. "not zero".
    x.abs() == 0.0
}

/// Tolerance comparison for computed quantities.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_test_is_exact() {
        assert!(exactly_zero(0.0));
        assert!(exactly_zero(-0.0));
        assert!(!exactly_zero(1e-300));
        assert!(!exactly_zero(-1e-300));
        assert!(!exactly_zero(f64::NAN));
    }

    #[test]
    fn approx_is_symmetric_within_tol() {
        assert!(approx_eq(1.0, 1.0 + 1e-10, 1e-9));
        assert!(approx_eq(1.0 + 1e-10, 1.0, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
        assert!(!approx_eq(f64::NAN, f64::NAN, 1.0));
    }
}
