//! Minimal JSON value, writer, and parser (std-only).
//!
//! The offline build has no `serde`/`serde_json`, so the audit-trail
//! export of the configuration storage (Section II-A(b)'s feedback loop)
//! and the `smdb-lint` machine-readable report are built on this module
//! instead. Objects preserve insertion order, so output is byte-for-byte
//! deterministic — a property the lint pass and golden tests rely on.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers are `f64`, like JavaScript; integral values are
    /// printed without a fractional part.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key → value pairs in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element lookup on arrays.
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `u64` if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, d);
                });
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

impl<T: Into<Json>> FromIterator<T> for Json {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Json {
        Json::Arr(iter.into_iter().map(Into::into).collect())
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional fallback.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document (strict enough for round-tripping our own
/// output and reading `lint.toml`-adjacent fixtures in tests).
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), String> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                expected as char, self.pos
            ))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_word("null") => Ok(Json::Null),
            Some(b't') if self.eat_word("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_word("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("invalid \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structure() {
        let doc = Json::obj([
            ("name", Json::from("smdb")),
            ("count", Json::from(3u64)),
            ("ratio", Json::from(0.5)),
            (
                "flags",
                [true, false].iter().map(|&b| Json::from(b)).collect(),
            ),
            ("missing", Json::Null),
        ]);
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            let back = parse(&text).expect("parses");
            assert_eq!(back, doc, "round-trip of {text}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from(3u64).to_string_compact(), "3");
        assert_eq!(Json::from(4.5).to_string_compact(), "4.5");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn escapes_round_trip() {
        let s = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let text = s.to_string_compact();
        assert_eq!(parse(&text).expect("parses"), s);
    }

    #[test]
    fn accessors_navigate() {
        let doc = parse(r#"{"rows":[{"id":7,"tag":"x"}],"ok":true}"#).expect("parses");
        assert_eq!(
            doc.get("rows")
                .and_then(|r| r.at(0))
                .and_then(|r| r.get("id"))
                .and_then(Json::as_u64),
            Some(7)
        );
        assert_eq!(
            doc.get("rows")
                .and_then(|r| r.at(0))
                .and_then(|r| r.get("tag"))
                .and_then(Json::as_str),
            Some("x")
        );
        assert!(doc.get("nope").is_none());
        assert_eq!(
            doc.get("rows").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "tru", "{\"a\" 1}", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
