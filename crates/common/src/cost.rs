//! The framework-wide cost unit.
//!
//! The paper (Section II-A(d)) requires that *all* decisions — workload
//! processing, one-time reconfiguration actions, permanent overheads — are
//! "estimated in the same unit, for instance, runtime". [`Cost`] is that
//! unit: an abstract millisecond of runtime. It is a thin newtype over
//! `f64` with the arithmetic the tuning pipeline needs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An amount of abstract runtime (milliseconds).
///
/// Values are non-negative by convention in most contexts (a workload
/// cost), but differences of costs (a *benefit*) may be negative, so the
/// type does not enforce a sign.
///
/// ```
/// use smdb_common::Cost;
/// let scan = Cost::from_ms(12.0);
/// let probe = Cost::from_ms(2.5);
/// let benefit = scan - probe;
/// assert_eq!(benefit.ms(), 9.5);
/// assert_eq!(scan.ratio(probe), Some(4.8));
/// let total: Cost = [scan, probe].into_iter().sum();
/// assert_eq!(total, Cost::from_ms(14.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Cost(pub f64);

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost(0.0);

    /// Creates a cost from a raw millisecond value.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        Cost(ms)
    }

    /// The raw millisecond value.
    #[inline]
    pub fn ms(self) -> f64 {
        self.0
    }

    /// Returns `true` if the value is finite (neither NaN nor infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// The smaller of two costs (total order; NaN-propagating like `f64::min`).
    #[inline]
    pub fn min(self, other: Cost) -> Cost {
        Cost(self.0.min(other.0))
    }

    /// The larger of two costs.
    #[inline]
    pub fn max(self, other: Cost) -> Cost {
        Cost(self.0.max(other.0))
    }

    /// `self / other`, returning `None` when `other` is zero.
    ///
    /// Used for the paper's impact ratios `W∅ / W_A` and dependence ratios
    /// `d_{A,B} = W_{B,A} / W_{A,B}` (Section III-A), where a zero
    /// denominator would indicate a degenerate workload.
    #[inline]
    pub fn ratio(self, other: Cost) -> Option<f64> {
        if other.0 == 0.0 {
            None
        } else {
            Some(self.0 / other.0)
        }
    }

    /// Clamps a (possibly negative) cost difference at zero.
    #[inline]
    pub fn clamp_non_negative(self) -> Cost {
        Cost(self.0.max(0.0))
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*} ms", prec, self.0)
        } else {
            write!(f, "{:.3} ms", self.0)
        }
    }
}

impl Add for Cost {
    type Output = Cost;
    #[inline]
    fn add(self, rhs: Cost) -> Cost {
        Cost(self.0 + rhs.0)
    }
}

impl AddAssign for Cost {
    #[inline]
    fn add_assign(&mut self, rhs: Cost) {
        self.0 += rhs.0;
    }
}

impl Sub for Cost {
    type Output = Cost;
    #[inline]
    fn sub(self, rhs: Cost) -> Cost {
        Cost(self.0 - rhs.0)
    }
}

impl SubAssign for Cost {
    #[inline]
    fn sub_assign(&mut self, rhs: Cost) {
        self.0 -= rhs.0;
    }
}

impl Neg for Cost {
    type Output = Cost;
    #[inline]
    fn neg(self) -> Cost {
        Cost(-self.0)
    }
}

impl Mul<f64> for Cost {
    type Output = Cost;
    #[inline]
    fn mul(self, rhs: f64) -> Cost {
        Cost(self.0 * rhs)
    }
}

impl Mul<Cost> for f64 {
    type Output = Cost;
    #[inline]
    fn mul(self, rhs: Cost) -> Cost {
        Cost(self * rhs.0)
    }
}

impl Div<f64> for Cost {
    type Output = Cost;
    #[inline]
    fn div(self, rhs: f64) -> Cost {
        Cost(self.0 / rhs)
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        Cost(iter.map(|c| c.0).sum())
    }
}

impl<'a> Sum<&'a Cost> for Cost {
    fn sum<I: Iterator<Item = &'a Cost>>(iter: I) -> Cost {
        Cost(iter.map(|c| c.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves_like_f64() {
        let a = Cost::from_ms(10.0);
        let b = Cost::from_ms(4.0);
        assert_eq!((a + b).ms(), 14.0);
        assert_eq!((a - b).ms(), 6.0);
        assert_eq!((a * 2.0).ms(), 20.0);
        assert_eq!((a / 2.0).ms(), 5.0);
        assert_eq!((-a).ms(), -10.0);
        assert_eq!((2.0 * b).ms(), 8.0);
    }

    #[test]
    fn sum_over_iterators() {
        let costs = [Cost(1.0), Cost(2.5), Cost(3.5)];
        let owned: Cost = costs.iter().copied().sum();
        let borrowed: Cost = costs.iter().sum();
        assert_eq!(owned.ms(), 7.0);
        assert_eq!(borrowed.ms(), 7.0);
    }

    #[test]
    fn ratio_guards_against_zero() {
        assert_eq!(Cost(8.0).ratio(Cost(2.0)), Some(4.0));
        assert_eq!(Cost(8.0).ratio(Cost::ZERO), None);
    }

    #[test]
    fn min_max_clamp() {
        let a = Cost(3.0);
        let b = Cost(-1.0);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
        assert_eq!(b.clamp_non_negative(), Cost::ZERO);
        assert_eq!(a.clamp_non_negative(), a);
    }

    #[test]
    fn display_formats_with_unit() {
        assert_eq!(format!("{}", Cost(1.5)), "1.500 ms");
        assert_eq!(format!("{:.1}", Cost(1.55)), "1.6 ms");
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut c = Cost::ZERO;
        c += Cost(2.0);
        c += Cost(3.0);
        c -= Cost(1.0);
        assert_eq!(c.ms(), 4.0);
    }
}
