//! Deterministic random number generation.
//!
//! All randomness in the repository (data generation, workload sampling,
//! the genetic selector, scenario perturbation) flows through seeded
//! [`rand::rngs::StdRng`] instances created here, so every experiment and
//! test is reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label.
///
/// Lets one experiment-level seed fan out into independent streams (data,
/// workload, GA, noise) without correlation between streams. Uses the
/// SplitMix64 finalizer, which is a bijection on each input.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        let xs: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derived_streams_are_distinct() {
        let s0 = derive_seed(7, 0);
        let s1 = derive_seed(7, 1);
        let s0_other_parent = derive_seed(8, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s0_other_parent);
        // Deterministic.
        assert_eq!(derive_seed(7, 0), s0);
    }
}
