//! The discrete logical clock.
//!
//! The workload history, the forecasting analyzers and the organizer all
//! operate on discrete time *buckets* (e.g. "one bucket = one minute of
//! production time"). Using a logical clock keeps every experiment
//! deterministic and independent of wall time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};

static MONOTONIC: AtomicU64 = AtomicU64::new(1);

/// Next value of the process-wide monotonic event counter.
///
/// This is the only "clock" the tracing facade (`smdb-obs`) may read:
/// it orders events without touching wall time, so traces replay
/// deterministically. Outside the obs facade and this module, calling
/// it directly is a lint violation (`obs-clock` in `smdb-lint`) —
/// instrumented code must go through `span!` / the flight recorder so
/// timestamps never leak into decision logic.
pub fn now() -> u64 {
    MONOTONIC.fetch_add(1, Ordering::Relaxed)
}

/// A discrete point in logical time (a bucket index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LogicalTime(pub u64);

impl LogicalTime {
    /// Time zero.
    pub const ZERO: LogicalTime = LogicalTime(0);

    /// Advances the clock by one bucket and returns the *previous* value,
    /// i.e. post-increment semantics.
    pub fn tick(&mut self) -> LogicalTime {
        let now = *self;
        self.0 += 1;
        now
    }

    /// The raw bucket index.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Buckets elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: LogicalTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for LogicalTime {
    type Output = LogicalTime;
    #[inline]
    fn add(self, rhs: u64) -> LogicalTime {
        LogicalTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for LogicalTime {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for LogicalTime {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: LogicalTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for LogicalTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_is_post_increment() {
        let mut t = LogicalTime::ZERO;
        assert_eq!(t.tick(), LogicalTime(0));
        assert_eq!(t.tick(), LogicalTime(1));
        assert_eq!(t, LogicalTime(2));
    }

    #[test]
    fn subtraction_saturates() {
        assert_eq!(LogicalTime(3) - LogicalTime(5), 0);
        assert_eq!(LogicalTime(5) - LogicalTime(3), 2);
        assert_eq!(LogicalTime(5).since(LogicalTime(2)), 3);
    }

    #[test]
    fn monotonic_counter_is_strictly_increasing() {
        let a = now();
        let b = now();
        let c = now();
        assert!(a < b && b < c);
    }

    #[test]
    fn addition_advances() {
        assert_eq!(LogicalTime(1) + 4, LogicalTime(5));
        let mut t = LogicalTime(1);
        t += 2;
        assert_eq!(t, LogicalTime(3));
    }
}
