//! LP/ILP model builder.

use smdb_common::{Error, Result};

/// Identifies a variable within one [`LpModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// Continuous or integer-constrained variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    Continuous,
    Integer,
}

/// Comparison direction of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    Le,
    Ge,
    Eq,
}

/// One decision variable.
#[derive(Debug, Clone)]
pub struct Variable {
    pub name: String,
    pub lower: f64,
    pub upper: f64,
    pub objective: f64,
    pub kind: VarKind,
}

/// One linear constraint `Σ coeff_i · x_i  op  rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    pub name: String,
    pub coeffs: Vec<(VarId, f64)>,
    pub op: ConstraintOp,
    pub rhs: f64,
}

/// A linear (or mixed-integer) program. The objective sense is always
/// *maximize*; minimize by negating coefficients.
#[derive(Debug, Clone, Default)]
pub struct LpModel {
    variables: Vec<Variable>,
    constraints: Vec<Constraint>,
}

impl LpModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        LpModel::default()
    }

    /// Adds a variable with bounds `[lower, upper]` and an objective
    /// coefficient.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        objective: f64,
        kind: VarKind,
    ) -> Result<VarId> {
        // Negated form deliberately rejects NaN bounds as well.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(lower <= upper) {
            return Err(Error::invalid(format!(
                "variable bounds invalid: [{lower}, {upper}]"
            )));
        }
        if !lower.is_finite() {
            return Err(Error::invalid("lower bound must be finite"));
        }
        let id = VarId(self.variables.len());
        self.variables.push(Variable {
            name: name.into(),
            lower,
            upper,
            objective,
            kind,
        });
        Ok(id)
    }

    /// Adds a binary variable (integer in `[0, 1]`). Infallible — the
    /// bounds are fixed, so this bypasses `add_var`'s validation.
    pub fn add_binary(&mut self, name: impl Into<String>, objective: f64) -> VarId {
        let id = VarId(self.variables.len());
        self.variables.push(Variable {
            name: name.into(),
            lower: 0.0,
            upper: 1.0,
            objective,
            kind: VarKind::Integer,
        });
        id
    }

    /// Adds a constraint.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        coeffs: Vec<(VarId, f64)>,
        op: ConstraintOp,
        rhs: f64,
    ) -> Result<()> {
        for (v, _) in &coeffs {
            if v.0 >= self.variables.len() {
                return Err(Error::invalid(format!("unknown variable id {}", v.0)));
            }
        }
        self.constraints.push(Constraint {
            name: name.into(),
            coeffs,
            op,
            rhs,
        });
        Ok(())
    }

    /// The variables.
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Ids of integer-constrained variables.
    pub fn integer_vars(&self) -> Vec<VarId> {
        self.variables
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Integer)
            .map(|(i, _)| VarId(i))
            .collect()
    }

    /// Objective value of a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.variables
            .iter()
            .zip(x)
            .map(|(v, &xi)| v.objective * xi)
            .sum()
    }

    /// Checks whether a point satisfies all constraints and bounds within
    /// `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.variables.len() {
            return false;
        }
        for (v, &xi) in self.variables.iter().zip(x) {
            if xi < v.lower - tol || xi > v.upper + tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.coeffs.iter().map(|(v, a)| a * x[v.0]).sum();
            let ok = match c.op {
                ConstraintOp::Le => lhs <= c.rhs + tol,
                ConstraintOp::Ge => lhs >= c.rhs - tol,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut m = LpModel::new();
        let x = m.add_var("x", 0.0, 10.0, 3.0, VarKind::Continuous).unwrap();
        let y = m.add_binary("y", 5.0);
        m.add_constraint("c", vec![(x, 1.0), (y, 2.0)], ConstraintOp::Le, 8.0)
            .unwrap();
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.integer_vars(), vec![y]);
        assert_eq!(m.objective_value(&[2.0, 1.0]), 11.0);
    }

    #[test]
    fn invalid_bounds_rejected() {
        let mut m = LpModel::new();
        assert!(m.add_var("x", 5.0, 1.0, 0.0, VarKind::Continuous).is_err());
        assert!(m
            .add_var("x", f64::NEG_INFINITY, 1.0, 0.0, VarKind::Continuous)
            .is_err());
    }

    #[test]
    fn unknown_var_in_constraint_rejected() {
        let mut m = LpModel::new();
        let r = m.add_constraint("c", vec![(VarId(3), 1.0)], ConstraintOp::Le, 1.0);
        assert!(r.is_err());
    }

    #[test]
    fn feasibility_check() {
        let mut m = LpModel::new();
        let x = m.add_var("x", 0.0, 4.0, 1.0, VarKind::Continuous).unwrap();
        m.add_constraint("c", vec![(x, 2.0)], ConstraintOp::Le, 6.0)
            .unwrap();
        assert!(m.is_feasible(&[3.0], 1e-9));
        assert!(!m.is_feasible(&[3.5], 1e-9)); // violates constraint
        assert!(!m.is_feasible(&[5.0], 1e-9)); // violates bound
        assert!(!m.is_feasible(&[], 1e-9)); // wrong arity
    }
}
