//! 0/1 knapsack: the optimization core of the *optimal* selector
//! (Section II-D(c): "optimal selectors … usually based on off-the-shelf
//! solvers").
//!
//! A specialised branch-and-bound with the fractional-knapsack relaxation
//! handles the candidate-set sizes the tuners produce (hundreds of items)
//! in microseconds; a dynamic-programming solver cross-checks it in tests.

use smdb_common::float::exactly_zero;
use smdb_common::{Error, Result};

/// Solution of a knapsack instance.
#[derive(Debug, Clone, PartialEq)]
pub struct KnapsackSolution {
    /// Indices of chosen items, ascending.
    pub chosen: Vec<usize>,
    /// Total value of the chosen items.
    pub value: f64,
    /// Total weight of the chosen items.
    pub weight: f64,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// Whether optimality was proven (false when the node cap was hit on
    /// a pathological instance; the incumbent is still feasible).
    pub proven_optimal: bool,
}

/// Default node cap: generous for real tuning instances, finite for
/// pathological (e.g. strongly correlated) ones.
pub const DEFAULT_NODE_CAP: usize = 2_000_000;

/// Solves `max Σ value_i x_i  s.t. Σ weight_i x_i ≤ capacity, x ∈ {0,1}`
/// exactly. Items with non-positive value are never chosen; items with
/// zero weight and positive value are always chosen.
///
/// ```
/// use smdb_lp::knapsack::solve_knapsack;
/// let solution = solve_knapsack(&[8.0, 11.0, 6.0], &[5.0, 7.0, 4.0], 11.0).unwrap();
/// assert_eq!(solution.chosen, vec![1, 2]); // 17 beats 8+6 at weight 11
/// assert!(solution.proven_optimal);
/// ```
pub fn solve_knapsack(values: &[f64], weights: &[f64], capacity: f64) -> Result<KnapsackSolution> {
    solve_knapsack_capped(values, weights, capacity, DEFAULT_NODE_CAP)
}

/// Like [`solve_knapsack`] with an explicit branch-and-bound node cap.
pub fn solve_knapsack_capped(
    values: &[f64],
    weights: &[f64],
    capacity: f64,
    max_nodes: usize,
) -> Result<KnapsackSolution> {
    if values.len() != weights.len() {
        return Err(Error::invalid("values/weights length mismatch"));
    }
    if weights.iter().any(|&w| w < 0.0) {
        return Err(Error::invalid("negative weights unsupported"));
    }
    if capacity < 0.0 {
        return Err(Error::invalid("negative capacity"));
    }
    let n = values.len();

    // Pre-pass: force zero-weight positives, drop non-positive values.
    let mut forced: Vec<usize> = Vec::new();
    let mut candidates: Vec<usize> = Vec::new();
    for i in 0..n {
        if values[i] <= 0.0 {
            continue;
        }
        if exactly_zero(weights[i]) {
            forced.push(i);
        } else {
            candidates.push(i);
        }
    }
    // Sort candidates by value density, descending (relaxation order).
    candidates.sort_by(|&a, &b| {
        let da = values[a] / weights[a];
        let db = values[b] / weights[b];
        db.partial_cmp(&da)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    // Depth-first branch-and-bound over the density-sorted candidates.
    struct Ctx<'a> {
        values: &'a [f64],
        weights: &'a [f64],
        order: &'a [usize],
        capacity: f64,
        best_value: f64,
        best_set: Vec<usize>,
        nodes: usize,
        max_nodes: usize,
    }

    fn upper_bound(ctx: &Ctx<'_>, depth: usize, weight: f64, value: f64) -> f64 {
        let mut bound = value;
        let mut room = ctx.capacity - weight;
        for &i in &ctx.order[depth..] {
            if ctx.weights[i] <= room {
                room -= ctx.weights[i];
                bound += ctx.values[i];
            } else {
                bound += ctx.values[i] * (room / ctx.weights[i]);
                break;
            }
        }
        bound
    }

    fn dfs(ctx: &mut Ctx<'_>, depth: usize, weight: f64, value: f64, current: &mut Vec<usize>) {
        if ctx.nodes >= ctx.max_nodes {
            return;
        }
        ctx.nodes += 1;
        if value > ctx.best_value {
            ctx.best_value = value;
            ctx.best_set = current.clone();
        }
        if depth == ctx.order.len() {
            return;
        }
        if upper_bound(ctx, depth, weight, value) <= ctx.best_value + 1e-12 {
            return;
        }
        let item = ctx.order[depth];
        // Take (if it fits) — explored first: density order makes taking
        // promising.
        if weight + ctx.weights[item] <= ctx.capacity + 1e-12 {
            current.push(item);
            dfs(
                ctx,
                depth + 1,
                weight + ctx.weights[item],
                value + ctx.values[item],
                current,
            );
            current.pop();
        }
        // Skip.
        dfs(ctx, depth + 1, weight, value, current);
    }

    let mut ctx = Ctx {
        values,
        weights,
        order: &candidates,
        capacity,
        best_value: 0.0,
        best_set: Vec::new(),
        nodes: 0,
        max_nodes,
    };
    let mut current = Vec::new();
    dfs(&mut ctx, 0, 0.0, 0.0, &mut current);
    let proven_optimal = ctx.nodes < max_nodes;

    let mut chosen: Vec<usize> = forced.into_iter().chain(ctx.best_set).collect();
    chosen.sort_unstable();
    let value = chosen.iter().map(|&i| values[i]).sum();
    let weight = chosen.iter().map(|&i| weights[i]).sum();
    Ok(KnapsackSolution {
        chosen,
        value,
        weight,
        nodes: ctx.nodes,
        proven_optimal,
    })
}

/// Exact DP solver over integer-scaled weights; used to cross-check the
/// branch-and-bound in tests. `scale` converts float weights to integer
/// grid cells (weights are rounded *up*, keeping the result feasible).
pub fn solve_knapsack_dp(
    values: &[f64],
    weights: &[f64],
    capacity: f64,
    scale: f64,
) -> Result<KnapsackSolution> {
    if values.len() != weights.len() {
        return Err(Error::invalid("values/weights length mismatch"));
    }
    if scale <= 0.0 {
        return Err(Error::invalid("scale must be positive"));
    }
    let cap = (capacity * scale).floor() as usize;
    let w_int: Vec<usize> = weights
        .iter()
        .map(|&w| (w * scale).ceil() as usize)
        .collect();
    let n = values.len();
    // dp[c] = best value with capacity c; keep choice bits per item.
    let mut dp = vec![0.0f64; cap + 1];
    let mut take = vec![vec![false; cap + 1]; n];
    for i in 0..n {
        if values[i] <= 0.0 {
            continue;
        }
        let wi = w_int[i];
        if wi > cap {
            continue;
        }
        for c in (wi..=cap).rev() {
            let candidate = dp[c - wi] + values[i];
            if candidate > dp[c] {
                dp[c] = candidate;
                take[i][c] = true;
            }
        }
    }
    // Backtrack.
    let mut c = cap;
    let mut chosen = Vec::new();
    for i in (0..n).rev() {
        if take[i][c] {
            chosen.push(i);
            c -= w_int[i];
        }
    }
    chosen.sort_unstable();
    let value = chosen.iter().map(|&i| values[i]).sum();
    let weight = chosen.iter().map(|&i| weights[i]).sum();
    Ok(KnapsackSolution {
        chosen,
        value,
        weight,
        nodes: 0,
        proven_optimal: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_instance_exact() {
        let values = [8.0, 11.0, 6.0, 4.0];
        let weights = [5.0, 7.0, 4.0, 3.0];
        let s = solve_knapsack(&values, &weights, 14.0).unwrap();
        assert_eq!(s.chosen, vec![1, 2, 3]);
        assert!((s.value - 21.0).abs() < 1e-9);
        assert!(s.weight <= 14.0);
    }

    #[test]
    fn zero_weight_items_forced() {
        let s = solve_knapsack(&[5.0, 1.0], &[0.0, 2.0], 1.0).unwrap();
        assert_eq!(s.chosen, vec![0]);
        assert_eq!(s.value, 5.0);
    }

    #[test]
    fn negative_value_items_skipped() {
        let s = solve_knapsack(&[-1.0, 3.0], &[1.0, 1.0], 10.0).unwrap();
        assert_eq!(s.chosen, vec![1]);
    }

    #[test]
    fn zero_capacity() {
        let s = solve_knapsack(&[3.0], &[1.0], 0.0).unwrap();
        assert!(s.chosen.is_empty());
        assert_eq!(s.value, 0.0);
    }

    #[test]
    fn matches_dp_on_deterministic_instances() {
        for seed in 0..10u64 {
            let n = 20;
            let mut values = Vec::with_capacity(n);
            let mut weights = Vec::with_capacity(n);
            for i in 0..n {
                let h = seed
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(i as u64)
                    .wrapping_mul(0xBF58476D1CE4E5B9);
                values.push(1.0 + (h % 50) as f64);
                weights.push(1.0 + ((h >> 16) % 20) as f64);
            }
            let cap = weights.iter().sum::<f64>() * 0.4;
            let bb = solve_knapsack(&values, &weights, cap).unwrap();
            // Integer weights: scale 1 is exact.
            let dp = solve_knapsack_dp(&values, &weights, cap, 1.0).unwrap();
            assert!(
                (bb.value - dp.value).abs() < 1e-9,
                "seed {seed}: bb {} vs dp {}",
                bb.value,
                dp.value
            );
            assert!(bb.weight <= cap + 1e-9);
        }
    }

    #[test]
    fn input_validation() {
        assert!(solve_knapsack(&[1.0], &[], 1.0).is_err());
        assert!(solve_knapsack(&[1.0], &[-1.0], 1.0).is_err());
        assert!(solve_knapsack(&[1.0], &[1.0], -1.0).is_err());
        assert!(solve_knapsack_dp(&[1.0], &[1.0], 1.0, 0.0).is_err());
    }

    #[test]
    fn handles_hundreds_of_items() {
        let n = 400;
        let values: Vec<f64> = (0..n).map(|i| 1.0 + (i % 37) as f64).collect();
        let weights: Vec<f64> = (0..n).map(|i| 1.0 + (i % 23) as f64).collect();
        let cap = weights.iter().sum::<f64>() * 0.3;
        let s = solve_knapsack(&values, &weights, cap).unwrap();
        assert!(s.weight <= cap + 1e-9);
        assert!(s.value > 0.0);
    }
}
