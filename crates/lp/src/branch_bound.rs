//! Branch-and-bound integer programming over simplex relaxations.

use smdb_common::{Error, Result};

use crate::model::LpModel;
use crate::simplex::{solve_lp_with_bounds, LpStatus};

/// A known feasible point used to warm-start branch-and-bound.
#[derive(Debug, Clone)]
pub struct IlpIncumbent {
    pub x: Vec<f64>,
    pub objective: f64,
}

/// Solver options.
#[derive(Debug, Clone)]
pub struct IlpOptions {
    /// Integrality tolerance: a value within this distance of an integer
    /// counts as integral.
    pub int_tol: f64,
    /// Maximum number of branch-and-bound nodes before giving up.
    pub max_nodes: usize,
    /// Optional warm-start incumbent (e.g. from a problem-specific
    /// heuristic); must be feasible for the model or it is ignored.
    pub incumbent: Option<IlpIncumbent>,
}

impl Default for IlpOptions {
    fn default() -> Self {
        IlpOptions {
            int_tol: 1e-6,
            max_nodes: 200_000,
            incumbent: None,
        }
    }
}

/// Result of an ILP solve.
#[derive(Debug, Clone)]
pub struct IlpSolution {
    pub x: Vec<f64>,
    pub objective: f64,
    /// Nodes explored (reported by experiment E4).
    pub nodes: usize,
}

/// Solves `model` to proven integer optimality (maximization) by
/// best-first branch-and-bound on the integer variables.
///
/// Returns `Err(Optimization)` when the model is infeasible and
/// `Err(Numeric)` if the node limit is hit before optimality is proven.
pub fn solve_ilp(model: &LpModel, options: &IlpOptions) -> Result<IlpSolution> {
    let _n = model.num_vars();
    let int_vars = model.integer_vars();
    let root_lower: Vec<f64> = model.variables().iter().map(|v| v.lower).collect();
    let root_upper: Vec<f64> = model.variables().iter().map(|v| v.upper).collect();

    // Best-first: process nodes in order of their parent relaxation bound.
    let mut heap: Vec<Node> = vec![Node {
        lower: root_lower,
        upper: root_upper,
        bound: f64::INFINITY,
    }];
    let mut best: Option<IlpSolution> = None;
    if let Some(seed) = &options.incumbent {
        if model.is_feasible(&seed.x, 1e-6) {
            best = Some(IlpSolution {
                x: seed.x.clone(),
                objective: seed.objective,
                nodes: 0,
            });
        }
    }
    let mut nodes = 0usize;

    while let Some(node) = pop_best(&mut heap) {
        // Bound-based pruning against the incumbent.
        if let Some(b) = &best {
            if node.bound <= b.objective + 1e-9 {
                continue;
            }
        }
        nodes += 1;
        if nodes > options.max_nodes {
            return Err(Error::Numeric(format!(
                "branch-and-bound node limit ({}) reached",
                options.max_nodes
            )));
        }

        let relax = solve_lp_with_bounds(model, &node.lower, &node.upper)?;
        match relax.status {
            LpStatus::Infeasible => continue,
            LpStatus::Unbounded => {
                return Err(Error::Optimization(
                    "ILP relaxation unbounded; add finite bounds".into(),
                ))
            }
            LpStatus::Optimal => {}
        }
        if let Some(b) = &best {
            if relax.objective <= b.objective + 1e-9 {
                continue;
            }
        }

        // Most fractional integer variable.
        let mut branch_var = None;
        let mut best_frac = options.int_tol;
        for &v in &int_vars {
            let xv = relax.x[v.0];
            let frac = (xv - xv.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch_var = Some(v);
            }
        }

        match branch_var {
            None => {
                // Integral: round integer components exactly and accept.
                let mut x = relax.x.clone();
                for &v in &int_vars {
                    x[v.0] = x[v.0].round();
                }
                let objective = model.objective_value(&x);
                let better = best
                    .as_ref()
                    .is_none_or(|b| objective > b.objective + 1e-12);
                if better {
                    best = Some(IlpSolution {
                        x,
                        objective,
                        nodes,
                    });
                }
            }
            Some(v) => {
                let xv = relax.x[v.0];
                // Down branch: x_v <= floor.
                let mut down_upper = node.upper.clone();
                down_upper[v.0] = xv.floor();
                heap.push(Node {
                    lower: node.lower.clone(),
                    upper: down_upper,
                    bound: relax.objective,
                });
                // Up branch: x_v >= ceil.
                let mut up_lower = node.lower.clone();
                up_lower[v.0] = xv.ceil();
                heap.push(Node {
                    lower: up_lower,
                    upper: node.upper,
                    bound: relax.objective,
                });
            }
        }
    }

    match best {
        Some(mut sol) => {
            sol.nodes = nodes;
            Ok(sol)
        }
        None => Err(Error::Optimization("ILP infeasible".into())),
    }
}

/// One open branch-and-bound node: a box of variable bounds plus the
/// parent relaxation's objective (an upper bound on anything inside).
#[derive(Debug)]
struct Node {
    lower: Vec<f64>,
    upper: Vec<f64>,
    bound: f64,
}

fn pop_best(heap: &mut Vec<Node>) -> Option<Node> {
    if heap.is_empty() {
        return None;
    }
    let mut best_i = 0;
    for i in 1..heap.len() {
        if heap[i].bound > heap[best_i].bound {
            best_i = i;
        }
    }
    Some(heap.swap_remove(best_i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp::*, VarKind::*};

    #[test]
    fn integer_knapsack_via_ilp() {
        // max 8a + 11b + 6c + 4d s.t. 5a + 7b + 4c + 3d <= 14, binaries.
        // Optimum: a + b + d? 8+11+4=23 weight 15 > 14. a+b=19 w12; b+c+d=21 w14 ✓
        let mut m = LpModel::new();
        let a = m.add_binary("a", 8.0);
        let b = m.add_binary("b", 11.0);
        let c = m.add_binary("c", 6.0);
        let d = m.add_binary("d", 4.0);
        m.add_constraint("w", vec![(a, 5.0), (b, 7.0), (c, 4.0), (d, 3.0)], Le, 14.0)
            .unwrap();
        let s = solve_ilp(&m, &IlpOptions::default()).unwrap();
        assert!((s.objective - 21.0).abs() < 1e-6);
        assert_eq!(s.x[0].round() as i64, 0);
        assert_eq!(s.x[1].round() as i64, 1);
        assert_eq!(s.x[2].round() as i64, 1);
        assert_eq!(s.x[3].round() as i64, 1);
    }

    #[test]
    fn mixed_integer() {
        // max x + y, x integer in [0,10], y continuous in [0, 10],
        // x + 2y <= 7.5, 2x + y <= 9 → try x=3: y <= 2.25, y <= 3 → 5.25.
        // x=4: y<=1.75, y<=1 → 5.0. x=2: y<=2.75 → 4.75. So 5.25 at x=3.
        let mut m = LpModel::new();
        let x = m.add_var("x", 0.0, 10.0, 1.0, Integer).unwrap();
        let y = m.add_var("y", 0.0, 10.0, 1.0, Continuous).unwrap();
        m.add_constraint("a", vec![(x, 1.0), (y, 2.0)], Le, 7.5)
            .unwrap();
        m.add_constraint("b", vec![(x, 2.0), (y, 1.0)], Le, 9.0)
            .unwrap();
        let s = solve_ilp(&m, &IlpOptions::default()).unwrap();
        assert!((s.objective - 5.25).abs() < 1e-6, "got {}", s.objective);
        assert!((s.x[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_ilp_errors() {
        let mut m = LpModel::new();
        let x = m.add_binary("x", 1.0);
        m.add_constraint("c", vec![(x, 1.0)], Ge, 2.0).unwrap();
        assert!(solve_ilp(&m, &IlpOptions::default()).is_err());
    }

    #[test]
    fn equality_constrained_assignment() {
        // 2x2 assignment: maximize 5x00 + 1x01 + 2x10 + 4x11 with row/col
        // sums = 1 → diagonal, objective 9.
        let mut m = LpModel::new();
        let x00 = m.add_binary("x00", 5.0);
        let x01 = m.add_binary("x01", 1.0);
        let x10 = m.add_binary("x10", 2.0);
        let x11 = m.add_binary("x11", 4.0);
        m.add_constraint("r0", vec![(x00, 1.0), (x01, 1.0)], Eq, 1.0)
            .unwrap();
        m.add_constraint("r1", vec![(x10, 1.0), (x11, 1.0)], Eq, 1.0)
            .unwrap();
        m.add_constraint("c0", vec![(x00, 1.0), (x10, 1.0)], Eq, 1.0)
            .unwrap();
        m.add_constraint("c1", vec![(x01, 1.0), (x11, 1.0)], Eq, 1.0)
            .unwrap();
        let s = solve_ilp(&m, &IlpOptions::default()).unwrap();
        assert!((s.objective - 9.0).abs() < 1e-6);
    }

    #[test]
    fn node_limit_respected() {
        let mut m = LpModel::new();
        // A problem that needs at least a couple of nodes.
        let vars: Vec<_> = (0..6)
            .map(|i| m.add_binary(format!("x{i}"), 1.0 + i as f64 * 0.3))
            .collect();
        let coeffs: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 2.0 + i as f64))
            .collect();
        m.add_constraint("w", coeffs, Le, 11.0).unwrap();
        let tight = IlpOptions {
            max_nodes: 1,
            ..IlpOptions::default()
        };
        // Either solves in one node or errors; must not loop forever.
        let _ = solve_ilp(&m, &tight);
        let s = solve_ilp(&m, &IlpOptions::default()).unwrap();
        assert!(m.is_feasible(&s.x, 1e-6));
    }
}
