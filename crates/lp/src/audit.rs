//! Structural audit of the ordering ILP against the paper's formulas.
//!
//! Section III-B gives exact model sizes — `2|S|² − |S|` variables and
//! `2|S|²` constraints — and four constraint families: per-feature and
//! per-step assignment rows, symmetry rows `y_{A,B} + y_{B,A} = 1`, and
//! precedence-coupling rows with the `|S|` big-M coefficient on `y`.
//! This module rebuilds the model for a given `|S|` and checks every one
//! of those properties, returning a structured report that `smdb-lint
//! --audit-lp` renders and a tier-1 test pins.

use smdb_common::{Error, Result};

use crate::model::{ConstraintOp, VarKind};
use crate::ordering::OrderingProblem;

/// One verified property of the model.
#[derive(Debug, Clone)]
pub struct AuditCheck {
    /// What was checked, e.g. `"variables = 2n^2 - n"`.
    pub name: String,
    /// The value the paper's formulation demands.
    pub expected: String,
    /// The value the built model actually has.
    pub actual: String,
    pub passed: bool,
}

impl AuditCheck {
    fn counts(name: impl Into<String>, expected: usize, actual: usize) -> Self {
        AuditCheck {
            name: name.into(),
            expected: expected.to_string(),
            actual: actual.to_string(),
            passed: expected == actual,
        }
    }

    fn flag(name: impl Into<String>, expected: impl Into<String>, ok: bool) -> Self {
        let expected = expected.into();
        AuditCheck {
            name: name.into(),
            actual: if ok {
                expected.clone()
            } else {
                "violated".to_owned()
            },
            expected,
            passed: ok,
        }
    }
}

/// The full audit of one model instance.
#[derive(Debug, Clone)]
pub struct ModelAudit {
    /// `|S|` — number of features.
    pub n: usize,
    pub checks: Vec<AuditCheck>,
}

impl ModelAudit {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// The failed checks, if any.
    pub fn failures(&self) -> Vec<&AuditCheck> {
        self.checks.iter().filter(|c| !c.passed).collect()
    }
}

/// A deterministic, asymmetric problem instance used for auditing —
/// varied pair weights make the objective-wiring check meaningful.
pub fn audit_instance(n: usize) -> Result<OrderingProblem> {
    if n == 0 {
        return Err(Error::invalid("audit requires at least one feature"));
    }
    let mut dependence = vec![vec![1.0; n]; n];
    let mut impact = vec![vec![1.0; n]; n];
    for (a, row) in dependence.iter_mut().enumerate() {
        for (b, d) in row.iter_mut().enumerate() {
            if a != b {
                *d = 0.5 + ((a * 7 + b * 3) % 5) as f64 / 4.0;
            }
        }
    }
    for (a, row) in impact.iter_mut().enumerate() {
        for (b, w) in row.iter_mut().enumerate() {
            if a != b {
                *w = 1.0 + ((a * 11 + b * 5) % 3) as f64 / 2.0;
            }
        }
    }
    OrderingProblem::new(dependence, impact)
}

/// Builds the ordering model for `n` features and audits its structure.
pub fn audit_ordering_model(n: usize) -> Result<ModelAudit> {
    let problem = audit_instance(n)?;
    let model = problem.build_model()?;
    let mut checks = Vec::new();

    // Paper size formulas.
    checks.push(AuditCheck::counts(
        "variables = 2n^2 - n",
        OrderingProblem::paper_variable_count(n),
        model.num_vars(),
    ));
    checks.push(AuditCheck::counts(
        "constraints = 2n^2",
        OrderingProblem::paper_constraint_count(n),
        model.num_constraints(),
    ));

    // Variable block structure: n² x-vars (objective 0) followed by
    // n² − n y-vars carrying the pair weights; everything binary.
    let all_binary = model
        .variables()
        .iter()
        .all(|v| v.kind == VarKind::Integer && exact(v.lower, 0.0) && exact(v.upper, 1.0));
    checks.push(AuditCheck::flag(
        "all variables binary in [0, 1]",
        "binary",
        all_binary,
    ));
    let x_vars = model
        .variables()
        .iter()
        .filter(|v| v.name.starts_with("x_"))
        .count();
    let y_vars = model
        .variables()
        .iter()
        .filter(|v| v.name.starts_with("y_"))
        .count();
    checks.push(AuditCheck::counts("x_{A,k} variables = n^2", n * n, x_vars));
    checks.push(AuditCheck::counts(
        "y_{A,B} variables = n^2 - n",
        n * n - n,
        y_vars,
    ));
    let x_objectives_zero = model
        .variables()
        .iter()
        .filter(|v| v.name.starts_with("x_"))
        .all(|v| exact(v.objective, 0.0));
    checks.push(AuditCheck::flag(
        "x variables carry no objective weight",
        "objective 0",
        x_objectives_zero,
    ));
    let y_objectives_wired = model
        .variables()
        .iter()
        .filter(|v| v.name.starts_with("y_"))
        .all(|v| match parse_pair(&v.name) {
            Some((a, b)) => exact(v.objective, problem.pair_weight(a, b)),
            None => false,
        });
    checks.push(AuditCheck::flag(
        "y_{A,B} objective = d_{A,B} * Winf/W_{A,B}",
        "pair weights",
        y_objectives_wired,
    ));

    // Constraint families.
    let feat: Vec<_> = family(&model, "feat_");
    let step: Vec<_> = family(&model, "step_");
    let sym: Vec<_> = family(&model, "sym_");
    let prec: Vec<_> = family(&model, "prec_");
    checks.push(AuditCheck::counts(
        "feature-assignment rows = n",
        n,
        feat.len(),
    ));
    checks.push(AuditCheck::counts(
        "step-assignment rows = n",
        n,
        step.len(),
    ));
    checks.push(AuditCheck::counts(
        "symmetry rows y_{A,B}+y_{B,A}=1 = n^2 - n",
        n * n - n,
        sym.len(),
    ));
    checks.push(AuditCheck::counts(
        "precedence-coupling rows = n^2 - n",
        n * n - n,
        prec.len(),
    ));
    checks.push(AuditCheck::flag(
        "assignment rows are Eq with rhs 1 and n unit coefficients",
        "sum = 1",
        feat.iter().chain(step.iter()).all(|c| {
            c.op == ConstraintOp::Eq
                && exact(c.rhs, 1.0)
                && c.coeffs.len() == n
                && c.coeffs.iter().all(|&(_, a)| exact(a, 1.0))
        }),
    ));
    checks.push(AuditCheck::flag(
        "symmetry rows pair two unit coefficients, Eq 1",
        "y + y' = 1",
        sym.iter().all(|c| {
            c.op == ConstraintOp::Eq
                && exact(c.rhs, 1.0)
                && c.coeffs.len() == 2
                && c.coeffs.iter().all(|&(_, a)| exact(a, 1.0))
        }),
    ));
    checks.push(AuditCheck::flag(
        "coupling rows are Ge 0 with |S| coefficient on y",
        "n*y >= step gap",
        prec.iter().all(|c| {
            c.op == ConstraintOp::Ge
                && exact(c.rhs, 0.0)
                && c.coeffs.len() == 1 + 2 * n
                && c.coeffs
                    .first()
                    .is_some_and(|&(v, a)| exact(a, n as f64) && v.0 >= n * n)
        }),
    ));

    // End-to-end sanity: any permutation encodes to a feasible point.
    let order: Vec<usize> = (0..n).collect();
    let feasible = model.is_feasible(&problem.encode_order(&order), 1e-9);
    checks.push(AuditCheck::flag(
        "identity permutation encodes feasibly",
        "feasible",
        feasible,
    ));

    Ok(ModelAudit { n, checks })
}

/// Audits the model across a range of sizes; returns the per-size reports.
pub fn audit_range(lo: usize, hi: usize) -> Result<Vec<ModelAudit>> {
    (lo..=hi).map(audit_ordering_model).collect()
}

fn family<'m>(model: &'m crate::model::LpModel, prefix: &str) -> Vec<&'m crate::model::Constraint> {
    model
        .constraints()
        .iter()
        .filter(|c| c.name.starts_with(prefix))
        .collect()
}

/// Exact equality of *constructed* model constants. The builder writes
/// these values as literals, so bitwise agreement is the correct test —
/// and `total_cmp` keeps the toolkit's no-float-`==` rule intact.
fn exact(x: f64, y: f64) -> bool {
    x.total_cmp(&y).is_eq()
}

/// Parses `y_3_1` → `(3, 1)`.
fn parse_pair(name: &str) -> Option<(usize, usize)> {
    let mut parts = name.split('_');
    parts.next()?;
    let a = parts.next()?.parse().ok()?;
    let b = parts.next()?.parse().ok()?;
    Some((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_passes_for_paper_range() {
        for n in 2..=8 {
            let audit = audit_ordering_model(n).expect("audit builds");
            assert!(audit.passed(), "n={n} failures: {:?}", audit.failures());
        }
    }

    #[test]
    fn audit_pins_size_three() {
        let audit = audit_ordering_model(3).expect("audit builds");
        let vars: usize = audit.checks[0].actual.parse().expect("count");
        let cons: usize = audit.checks[1].actual.parse().expect("count");
        assert_eq!(vars, 15);
        assert_eq!(cons, 18);
    }

    #[test]
    fn audit_rejects_zero_features() {
        assert!(audit_ordering_model(0).is_err());
    }

    #[test]
    fn range_covers_each_size() {
        let all = audit_range(2, 5).expect("audits build");
        let sizes: Vec<usize> = all.iter().map(|a| a.n).collect();
        assert_eq!(sizes, vec![2, 3, 4, 5]);
    }

    #[test]
    fn parse_pair_roundtrip() {
        assert_eq!(parse_pair("y_3_1"), Some((3, 1)));
        assert_eq!(parse_pair("x_2_2"), Some((2, 2)));
        assert_eq!(parse_pair("nope"), None);
    }
}
