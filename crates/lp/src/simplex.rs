//! Dense two-phase primal simplex.
//!
//! Handles general variable bounds by shifting to the non-negative
//! orthant and materialising finite upper bounds as rows. Bland's rule
//! guarantees termination on the degenerate (and partly redundant —
//! the paper's ordering model duplicates its `y + y' = 1` coupling rows)
//! systems the framework produces.

#![allow(clippy::needless_range_loop)] // dense matrix index arithmetic reads clearest with explicit indices

use smdb_common::float::exactly_zero;
use smdb_common::{Error, Result};

use crate::model::{ConstraintOp, LpModel};

const TOL: f64 = 1e-9;

/// Outcome of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    Optimal,
    Infeasible,
    Unbounded,
}

/// An LP solution (meaningful `x`/`objective` only when `Optimal`).
#[derive(Debug, Clone)]
pub struct LpSolution {
    pub status: LpStatus,
    pub x: Vec<f64>,
    pub objective: f64,
}

/// Solves the LP relaxation of `model` (integrality ignored).
pub fn solve_lp(model: &LpModel) -> Result<LpSolution> {
    let lower: Vec<f64> = model.variables().iter().map(|v| v.lower).collect();
    let upper: Vec<f64> = model.variables().iter().map(|v| v.upper).collect();
    solve_lp_with_bounds(model, &lower, &upper)
}

/// Solves the LP relaxation with overridden variable bounds (used by
/// branch-and-bound).
pub fn solve_lp_with_bounds(model: &LpModel, lower: &[f64], upper: &[f64]) -> Result<LpSolution> {
    let n = model.num_vars();
    if lower.len() != n || upper.len() != n {
        return Err(Error::invalid("bound arrays must match variable count"));
    }
    for i in 0..n {
        if lower[i] > upper[i] + TOL {
            // Empty box: trivially infeasible (normal during branching).
            return Ok(LpSolution {
                status: LpStatus::Infeasible,
                x: Vec::new(),
                objective: f64::NEG_INFINITY,
            });
        }
        if !lower[i].is_finite() {
            return Err(Error::invalid("lower bounds must be finite"));
        }
    }

    // Shift x = y + lower, y >= 0.
    let c: Vec<f64> = model.variables().iter().map(|v| v.objective).collect();

    // Rows: model constraints (rhs shifted) + upper-bound rows.
    struct Row {
        coeffs: Vec<f64>, // dense over structural vars
        op: ConstraintOp,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(model.num_constraints() + n);
    for cons in model.constraints() {
        let mut coeffs = vec![0.0; n];
        let mut shift = 0.0;
        for &(v, a) in &cons.coeffs {
            coeffs[v.0] += a;
            shift += a * lower[v.0];
        }
        rows.push(Row {
            coeffs,
            op: cons.op,
            rhs: cons.rhs - shift,
        });
    }
    for i in 0..n {
        if upper[i].is_finite() {
            let mut coeffs = vec![0.0; n];
            coeffs[i] = 1.0;
            rows.push(Row {
                coeffs,
                op: ConstraintOp::Le,
                rhs: upper[i] - lower[i],
            });
        }
    }

    // Normalize to rhs >= 0.
    for r in &mut rows {
        if r.rhs < 0.0 {
            for a in &mut r.coeffs {
                *a = -*a;
            }
            r.rhs = -r.rhs;
            r.op = match r.op {
                ConstraintOp::Le => ConstraintOp::Ge,
                ConstraintOp::Ge => ConstraintOp::Le,
                ConstraintOp::Eq => ConstraintOp::Eq,
            };
        }
    }

    let m = rows.len();
    // Column layout: [0, n) structural, then one slack/surplus per row
    // where applicable, then one artificial per row where needed.
    let mut ncols = n;
    let mut slack_col = vec![usize::MAX; m];
    for (i, r) in rows.iter().enumerate() {
        if matches!(r.op, ConstraintOp::Le | ConstraintOp::Ge) {
            slack_col[i] = ncols;
            ncols += 1;
        }
    }
    let mut art_col = vec![usize::MAX; m];
    for (i, r) in rows.iter().enumerate() {
        if matches!(r.op, ConstraintOp::Ge | ConstraintOp::Eq) {
            art_col[i] = ncols;
            ncols += 1;
        }
    }
    let n_art_start = ncols
        - rows
            .iter()
            .filter(|r| !matches!(r.op, ConstraintOp::Le))
            .count();

    // Build tableau.
    let mut a = vec![vec![0.0f64; ncols]; m];
    let mut b = vec![0.0f64; m];
    let mut basis = vec![0usize; m];
    for (i, r) in rows.iter().enumerate() {
        a[i][..n].copy_from_slice(&r.coeffs);
        b[i] = r.rhs;
        match r.op {
            ConstraintOp::Le => {
                a[i][slack_col[i]] = 1.0;
                basis[i] = slack_col[i];
            }
            ConstraintOp::Ge => {
                a[i][slack_col[i]] = -1.0;
                a[i][art_col[i]] = 1.0;
                basis[i] = art_col[i];
            }
            ConstraintOp::Eq => {
                a[i][art_col[i]] = 1.0;
                basis[i] = art_col[i];
            }
        }
    }

    let max_iters = 2000 + 200 * (m + ncols);

    // Phase 1: maximize -(sum of artificials).
    let any_artificial = art_col.iter().any(|&c| c != usize::MAX);
    if any_artificial {
        let mut c1 = vec![0.0f64; ncols];
        for &col in &art_col {
            if col != usize::MAX {
                c1[col] = -1.0;
            }
        }
        let status = iterate(&mut a, &mut b, &mut basis, &c1, ncols, max_iters, None)?;
        if status == LpStatus::Unbounded {
            return Err(Error::Numeric("phase-1 LP unbounded".into()));
        }
        let phase1_obj: f64 = basis
            .iter()
            .zip(&b)
            .map(|(&bi, &v)| {
                if exactly_zero(c1[bi]) {
                    0.0
                } else {
                    c1[bi] * v
                }
            })
            .sum();
        if phase1_obj < -1e-6 {
            return Ok(LpSolution {
                status: LpStatus::Infeasible,
                x: Vec::new(),
                objective: f64::NEG_INFINITY,
            });
        }
        // Drive basic artificials out (rows may be redundant duplicates).
        for i in 0..m {
            if basis[i] >= n_art_start && art_col.contains(&basis[i]) {
                // Find a non-artificial pivot column in this row.
                let mut pivoted = false;
                for j in 0..n_art_start {
                    if a[i][j].abs() > 1e-7 {
                        pivot(&mut a, &mut b, &mut basis, i, j);
                        pivoted = true;
                        break;
                    }
                }
                if !pivoted {
                    // Redundant row: zero it so it never constrains again.
                    for j in 0..ncols {
                        a[i][j] = 0.0;
                    }
                    b[i] = 0.0;
                    // Keep the artificial basic at level zero; forbid it
                    // from mattering by leaving its column as the only
                    // non-zero entry.
                    a[i][basis[i]] = 1.0;
                }
            }
        }
    }

    // Phase 2: original objective; artificials must not re-enter.
    let mut c2 = vec![0.0f64; ncols];
    c2[..n].copy_from_slice(&c);
    let forbidden_from = if any_artificial {
        Some(n_art_start)
    } else {
        None
    };
    let status = iterate(
        &mut a,
        &mut b,
        &mut basis,
        &c2,
        ncols,
        max_iters,
        forbidden_from,
    )?;
    if status == LpStatus::Unbounded {
        return Ok(LpSolution {
            status: LpStatus::Unbounded,
            x: Vec::new(),
            objective: f64::INFINITY,
        });
    }

    // Extract solution.
    let mut y = vec![0.0f64; ncols];
    for (i, &bi) in basis.iter().enumerate() {
        y[bi] = b[i];
    }
    let x: Vec<f64> = (0..n).map(|i| y[i] + lower[i]).collect();
    let objective = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum::<f64>();
    Ok(LpSolution {
        status: LpStatus::Optimal,
        x,
        objective,
    })
}

/// Runs primal simplex iterations (maximization) until optimal,
/// unbounded, or the iteration cap (error). `forbidden_from`: columns at
/// or beyond this index may not enter the basis (phase-2 artificials).
fn iterate(
    a: &mut [Vec<f64>],
    b: &mut [f64],
    basis: &mut [usize],
    c: &[f64],
    ncols: usize,
    max_iters: usize,
    forbidden_from: Option<usize>,
) -> Result<LpStatus> {
    let m = a.len();
    let limit = forbidden_from.unwrap_or(ncols);
    // Dantzig rule (steepest reduced cost) for speed; on a degeneracy
    // stall switch to Bland's rule, which guarantees termination.
    let mut use_bland = false;
    let mut last_z = f64::NEG_INFINITY;
    let mut stall = 0usize;
    let mut in_basis = vec![false; ncols];
    for &bi in basis.iter() {
        in_basis[bi] = true;
    }
    let mut rc = vec![0.0f64; limit];
    for _ in 0..max_iters {
        // Reduced costs: rc_j = c_j - c_B · B^-1 A_j (tableau already in
        // B^-1 A form, so rc_j = c_j - Σ_i c[basis[i]] a[i][j]).
        rc.copy_from_slice(&c[..limit]);
        for i in 0..m {
            let cb = c[basis[i]];
            if !exactly_zero(cb) {
                let row = &a[i][..limit];
                for (rcj, &aij) in rc.iter_mut().zip(row) {
                    *rcj -= cb * aij;
                }
            }
        }
        let mut entering = None;
        if use_bland {
            for (j, &rcj) in rc.iter().enumerate() {
                if !in_basis[j] && rcj > 1e-7 {
                    entering = Some(j);
                    break;
                }
            }
        } else {
            let mut best = 1e-7;
            for (j, &rcj) in rc.iter().enumerate() {
                if !in_basis[j] && rcj > best {
                    best = rcj;
                    entering = Some(j);
                }
            }
        }
        let Some(j) = entering else {
            return Ok(LpStatus::Optimal);
        };
        // Ratio test (Bland tie-break on smallest basis index).
        let mut leave: Option<(usize, f64)> = None;
        for i in 0..m {
            if a[i][j] > TOL {
                let ratio = b[i] / a[i][j];
                match leave {
                    None => leave = Some((i, ratio)),
                    Some((bi, br)) => {
                        if ratio < br - TOL || ((ratio - br).abs() <= TOL && basis[i] < basis[bi]) {
                            leave = Some((i, ratio));
                        }
                    }
                }
            }
        }
        let Some((r, _)) = leave else {
            return Ok(LpStatus::Unbounded);
        };
        in_basis[basis[r]] = false;
        in_basis[j] = true;
        pivot(a, b, basis, r, j);
        // Objective progress check for the anti-cycling switch.
        let z: f64 = basis.iter().zip(b.iter()).map(|(&bi, &v)| c[bi] * v).sum();
        if z <= last_z + 1e-12 {
            stall += 1;
            if stall > 2 * m + 16 {
                use_bland = true;
            }
        } else {
            stall = 0;
            last_z = z;
        }
    }
    Err(Error::Numeric("simplex iteration limit reached".into()))
}

fn pivot(a: &mut [Vec<f64>], b: &mut [f64], basis: &mut [usize], r: usize, j: usize) {
    let m = a.len();
    let piv = a[r][j];
    debug_assert!(piv.abs() > 0.0);
    let inv = 1.0 / piv;
    for v in a[r].iter_mut() {
        *v *= inv;
    }
    b[r] *= inv;
    for i in 0..m {
        if i != r {
            let factor = a[i][j];
            if !exactly_zero(factor) {
                // Row_i -= factor * Row_r (split borrows via indices).
                let row_r: Vec<f64> = a[r].clone();
                for (vi, vr) in a[i].iter_mut().zip(&row_r) {
                    *vi -= factor * vr;
                }
                b[i] -= factor * b[r];
            }
        }
    }
    basis[r] = j;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp::*, LpModel, VarKind::*};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_max() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → (2, 6), 36.
        let mut m = LpModel::new();
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0, Continuous).unwrap();
        let y = m.add_var("y", 0.0, f64::INFINITY, 5.0, Continuous).unwrap();
        m.add_constraint("c1", vec![(x, 1.0)], Le, 4.0).unwrap();
        m.add_constraint("c2", vec![(y, 2.0)], Le, 12.0).unwrap();
        m.add_constraint("c3", vec![(x, 3.0), (y, 2.0)], Le, 18.0)
            .unwrap();
        let s = solve_lp(&m).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // max x + y s.t. x + y = 10, x >= 3, y >= 2 → 10.
        let mut m = LpModel::new();
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0, Continuous).unwrap();
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0, Continuous).unwrap();
        m.add_constraint("sum", vec![(x, 1.0), (y, 1.0)], Eq, 10.0)
            .unwrap();
        m.add_constraint("xmin", vec![(x, 1.0)], Ge, 3.0).unwrap();
        m.add_constraint("ymin", vec![(y, 1.0)], Ge, 2.0).unwrap();
        let s = solve_lp(&m).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 10.0);
        assert!(s.x[0] >= 3.0 - 1e-7 && s.x[1] >= 2.0 - 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = LpModel::new();
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0, Continuous).unwrap();
        m.add_constraint("lo", vec![(x, 1.0)], Ge, 5.0).unwrap();
        m.add_constraint("hi", vec![(x, 1.0)], Le, 3.0).unwrap();
        let s = solve_lp(&m).unwrap();
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = LpModel::new();
        m.add_var("x", 0.0, f64::INFINITY, 1.0, Continuous).unwrap();
        let s = solve_lp(&m).unwrap();
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn variable_bounds_respected() {
        // max x + 2y with x in [1, 3], y in [0, 2], x + y <= 4 → x=2? No:
        // objective prefers y: y=2, then x=2 (x+y<=4, x<=3) → 2 + 4 = 6.
        let mut m = LpModel::new();
        let x = m.add_var("x", 1.0, 3.0, 1.0, Continuous).unwrap();
        let y = m.add_var("y", 0.0, 2.0, 2.0, Continuous).unwrap();
        m.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Le, 4.0)
            .unwrap();
        let s = solve_lp(&m).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 6.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 2.0);
    }

    #[test]
    fn negative_lower_bounds() {
        // max x with x in [-5, -2] → -2.
        let mut m = LpModel::new();
        m.add_var("x", -5.0, -2.0, 1.0, Continuous).unwrap();
        let s = solve_lp(&m).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, -2.0);
    }

    #[test]
    fn redundant_duplicate_equalities_tolerated() {
        // The paper's ordering model duplicates coupling rows; the solver
        // must survive exact duplicates.
        let mut m = LpModel::new();
        let x = m.add_var("x", 0.0, 1.0, 1.0, Continuous).unwrap();
        let y = m.add_var("y", 0.0, 1.0, 1.0, Continuous).unwrap();
        m.add_constraint("c1", vec![(x, 1.0), (y, 1.0)], Eq, 1.0)
            .unwrap();
        m.add_constraint("c1dup", vec![(x, 1.0), (y, 1.0)], Eq, 1.0)
            .unwrap();
        let s = solve_lp(&m).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 1.0);
    }

    #[test]
    fn empty_branch_box_is_infeasible() {
        let mut m = LpModel::new();
        m.add_var("x", 0.0, 1.0, 1.0, Continuous).unwrap();
        let s = solve_lp_with_bounds(&m, &[1.0], &[0.0]).unwrap();
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let mut m = LpModel::new();
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0, Continuous).unwrap();
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0, Continuous).unwrap();
        m.add_constraint("a", vec![(x, 1.0), (y, 1.0)], Le, 1.0)
            .unwrap();
        m.add_constraint("b", vec![(x, 1.0)], Le, 1.0).unwrap();
        m.add_constraint("c", vec![(y, 1.0)], Le, 1.0).unwrap();
        m.add_constraint("d", vec![(x, 2.0), (y, 1.0)], Le, 2.0)
            .unwrap();
        let s = solve_lp(&m).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 1.0);
    }
}
