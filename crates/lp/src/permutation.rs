//! Exhaustive-permutation baseline for the ordering problem.
//!
//! Section III-B motivates the LP because "the number of permutations can
//! be large"; this module is the `O(n!)` comparator that experiment E4
//! (and the property tests) use to certify LP optimality for small `n`.

use smdb_common::{Error, Result};

use crate::ordering::OrderingProblem;

/// Result of the exhaustive search.
#[derive(Debug, Clone, PartialEq)]
pub struct BruteForceResult {
    pub order: Vec<usize>,
    pub objective: f64,
    /// Permutations evaluated (`n!`).
    pub evaluated: usize,
}

/// Finds the objective-maximal permutation by enumerating all `n!`
/// orders (refuses `n > 10`).
pub fn brute_force_order(problem: &OrderingProblem) -> Result<BruteForceResult> {
    let n = problem.num_features();
    if n > 10 {
        return Err(Error::invalid(format!(
            "exhaustive search over {n}! permutations refused (n > 10)"
        )));
    }
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best_order = perm.clone();
    let mut best_obj = problem.order_objective(&perm);
    let mut evaluated = 1usize;
    // Heap's algorithm, iterative form.
    let mut c = vec![0usize; n];
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            let obj = problem.order_objective(&perm);
            evaluated += 1;
            if obj > best_obj {
                best_obj = obj;
                best_order = perm.clone();
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    Ok(BruteForceResult {
        order: best_order,
        objective: best_obj,
        evaluated,
    })
}

/// Enumerates all permutations of `0..n` (test helper; refuses `n > 8`).
pub fn all_permutations(n: usize) -> Result<Vec<Vec<usize>>> {
    if n > 8 {
        return Err(Error::invalid("permutation enumeration refused for n > 8"));
    }
    let mut out = Vec::new();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut c = vec![0usize; n];
    out.push(perm.clone());
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            out.push(perm.clone());
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_bound::IlpOptions;

    #[test]
    fn enumerates_factorial_many() {
        assert_eq!(all_permutations(1).unwrap().len(), 1);
        assert_eq!(all_permutations(3).unwrap().len(), 6);
        assert_eq!(all_permutations(5).unwrap().len(), 120);
        assert!(all_permutations(9).is_err());
    }

    #[test]
    fn brute_force_counts_evaluations() {
        let p = OrderingProblem::new(vec![vec![1.0; 4]; 4], vec![vec![1.0; 4]; 4]).unwrap();
        let r = brute_force_order(&p).unwrap();
        assert_eq!(r.evaluated, 24);
    }

    #[test]
    fn brute_force_matches_ilp_on_random_instances() {
        for seed in 0..5u64 {
            let n = 4;
            let mut d = vec![vec![1.0; n]; n];
            let mut w = vec![vec![1.0; n]; n];
            for a in 0..n {
                for b in 0..n {
                    if a != b {
                        // Cheap deterministic pseudo-randomness.
                        let h = seed
                            .wrapping_mul(0x9E3779B97F4A7C15)
                            .wrapping_add((a * n + b) as u64)
                            .wrapping_mul(0xBF58476D1CE4E5B9);
                        d[a][b] = 0.25 + (h % 100) as f64 / 50.0;
                        w[a][b] = 0.5 + ((h >> 8) % 100) as f64 / 40.0;
                    }
                }
            }
            let p = OrderingProblem::new(d, w).unwrap();
            let bf = brute_force_order(&p).unwrap();
            let lp = p.solve(&IlpOptions::default()).unwrap();
            assert!(
                (bf.objective - lp.objective).abs() < 1e-6,
                "seed {seed}: brute {} vs lp {}",
                bf.objective,
                lp.objective
            );
        }
    }

    #[test]
    fn refuses_oversized_instances() {
        let n = 11;
        let p = OrderingProblem::new(vec![vec![1.0; n]; n], vec![vec![1.0; n]; n]).unwrap();
        assert!(brute_force_order(&p).is_err());
    }
}
