//! # smdb-lp — linear and integer programming toolkit
//!
//! Section III-B of the paper formulates feature ordering as an integer
//! linear program and notes it "can be solved using off-the-shelf
//! solvers". No solver is available offline, so this crate *is* the
//! solver (see DESIGN.md §4):
//!
//! * [`model`] — an LP/ILP model builder (variables with bounds and
//!   integrality, linear constraints, max/min objective),
//! * [`simplex`] — a dense two-phase primal simplex with Bland's rule,
//! * [`branch_bound`] — exact branch-and-bound over simplex relaxations,
//! * [`ordering`] — the paper's feature-ordering ILP (`x_{A,k}`,
//!   `y_{A,B}`, permutation + coupling constraints) built verbatim,
//!   including the paper's exact variable/constraint counts,
//! * [`permutation`] — exhaustive-permutation baseline used to verify LP
//!   optimality in tests and experiment E4,
//! * [`knapsack`] — the 0/1 knapsack solved by the optimal selector, with
//!   a specialised branch-and-bound and a DP cross-check,
//! * [`audit`] — structural verification of the ordering model against
//!   the paper's size formulas and constraint families, consumed by
//!   `smdb-lint --audit-lp`.

pub mod audit;
pub mod branch_bound;
pub mod knapsack;
pub mod model;
pub mod ordering;
pub mod permutation;
pub mod simplex;

pub use audit::{audit_ordering_model, audit_range, AuditCheck, ModelAudit};
pub use branch_bound::{solve_ilp, IlpOptions, IlpSolution};
pub use model::{ConstraintOp, LpModel, VarId, VarKind};
pub use ordering::{OrderingProblem, OrderingSolution};
pub use simplex::{solve_lp, LpSolution, LpStatus};
