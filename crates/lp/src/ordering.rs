//! The paper's LP-based feature-order optimization (Section III-B).
//!
//! Given the set of features `S`, dependence ratios
//! `d_{A,B} = W_{B,A} / W_{A,B}` and impact weights `W∅ / W_{A,B}`, the
//! integer LP below chooses the tuning order:
//!
//! ```text
//! maximize   Σ_{A,B∈S, A≠B}  y_{A,B} · d_{A,B} · W∅/W_{A,B}
//! subject to Σ_k x_{A,k} = 1                      (A ∈ S)
//!            Σ_A x_{A,k} = 1                      (k = 1..|S|)
//!            y_{A,B} + y_{B,A} = 1                (A ∈ S, B ∈ S\{A})
//!            |S|·y_{A,B} ≥ Σ_k k·x_{B,k} − Σ_k k·x_{A,k}
//! ```
//!
//! `x_{A,k} = 1` iff feature `A` is tuned in step `k`; `y_{A,B} = 1` iff
//! `A` is tuned before `B`. The builder reproduces the paper's model
//! *verbatim*, including the duplicated coupling rows over ordered pairs,
//! so the model has exactly `2|S|² − |S|` variables and `2|S|²`
//! constraints — experiment E4 checks these counts against the formulas.

#![allow(clippy::needless_range_loop)] // dense matrix index arithmetic reads clearest with explicit indices

use smdb_common::{Error, Result};

use crate::branch_bound::{solve_ilp, IlpIncumbent, IlpOptions};
use crate::model::{ConstraintOp, LpModel, VarId};

/// Inputs of the ordering problem for `n` features.
///
/// ```
/// use smdb_lp::ordering::OrderingProblem;
/// use smdb_lp::branch_bound::IlpOptions;
/// // Feature 0 strongly prefers running before feature 1.
/// let d = vec![vec![1.0, 4.0], vec![0.25, 1.0]];
/// let w = vec![vec![1.0; 2]; 2];
/// let problem = OrderingProblem::new(d, w).unwrap();
/// let solution = problem.solve(&IlpOptions::default()).unwrap();
/// assert_eq!(solution.order, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct OrderingProblem {
    /// `d[a][b]` = dependence ratio `d_{A,B}` (diagonal ignored).
    pub dependence: Vec<Vec<f64>>,
    /// `impact[a][b]` = `W∅ / W_{A,B}` (diagonal ignored).
    pub impact: Vec<Vec<f64>>,
}

/// A solved ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderingSolution {
    /// `order[k]` = feature tuned in step `k`.
    pub order: Vec<usize>,
    /// Objective value achieved.
    pub objective: f64,
    /// Branch-and-bound nodes used.
    pub nodes: usize,
}

impl OrderingProblem {
    /// Creates a problem after validating matrix shapes.
    pub fn new(dependence: Vec<Vec<f64>>, impact: Vec<Vec<f64>>) -> Result<Self> {
        let n = dependence.len();
        if n == 0 {
            return Err(Error::invalid("at least one feature required"));
        }
        if dependence.iter().any(|r| r.len() != n)
            || impact.len() != n
            || impact.iter().any(|r| r.len() != n)
        {
            return Err(Error::invalid("dependence/impact must be square n×n"));
        }
        Ok(OrderingProblem { dependence, impact })
    }

    /// Number of features `|S|`.
    pub fn num_features(&self) -> usize {
        self.dependence.len()
    }

    /// The pair weight `c_{A,B} = d_{A,B} · W∅/W_{A,B}` of the objective.
    pub fn pair_weight(&self, a: usize, b: usize) -> f64 {
        self.dependence[a][b] * self.impact[a][b]
    }

    /// Objective value of a concrete order (sum of `c_{A,B}` over pairs
    /// where `A` precedes `B`) — shared by the exhaustive baseline.
    pub fn order_objective(&self, order: &[usize]) -> f64 {
        let mut total = 0.0;
        for i in 0..order.len() {
            for j in (i + 1)..order.len() {
                total += self.pair_weight(order[i], order[j]);
            }
        }
        total
    }

    /// Builds the paper's integer LP. Errors only on internal
    /// inconsistency (a constraint referencing a variable that was never
    /// created), which would mean the builder itself drifted from the
    /// formulation.
    pub fn build_model(&self) -> Result<LpModel> {
        let n = self.num_features();
        let mut m = LpModel::new();

        // x_{A,k}: n² binaries, objective 0.
        let mut x = vec![vec![VarId(0); n]; n];
        for (a, row) in x.iter_mut().enumerate() {
            for (k, slot) in row.iter_mut().enumerate() {
                *slot = m.add_binary(format!("x_{a}_{k}"), 0.0);
            }
        }
        // y_{A,B}: n² − n binaries with objective c_{A,B}.
        let mut y = vec![vec![None::<VarId>; n]; n];
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    y[a][b] = Some(m.add_binary(format!("y_{a}_{b}"), self.pair_weight(a, b)));
                }
            }
        }

        // Each feature in exactly one step.
        for (a, row) in x.iter().enumerate() {
            let coeffs = row.iter().map(|&v| (v, 1.0)).collect();
            m.add_constraint(format!("feat_{a}"), coeffs, ConstraintOp::Eq, 1.0)?;
        }
        // Each step hosts exactly one feature.
        for k in 0..n {
            let coeffs = (0..n).map(|a| (x[a][k], 1.0)).collect();
            m.add_constraint(format!("step_{k}"), coeffs, ConstraintOp::Eq, 1.0)?;
        }
        // Coupling, built over *ordered* pairs exactly as the paper
        // counts them (each unordered pair appears twice).
        let yvar = |a: usize, b: usize| -> Result<VarId> {
            y[a][b].ok_or_else(|| Error::invalid("ordering model lost an off-diagonal y"))
        };
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let yab = yvar(a, b)?;
                let yba = yvar(b, a)?;
                m.add_constraint(
                    format!("sym_{a}_{b}"),
                    vec![(yab, 1.0), (yba, 1.0)],
                    ConstraintOp::Eq,
                    1.0,
                )?;
                // n·y_{A,B} − Σ_k k·x_{B,k} + Σ_k k·x_{A,k} ≥ 0, k = 1..n.
                let mut coeffs = vec![(yab, n as f64)];
                for k in 0..n {
                    coeffs.push((x[b][k], -((k + 1) as f64)));
                    coeffs.push((x[a][k], (k + 1) as f64));
                }
                m.add_constraint(format!("prec_{a}_{b}"), coeffs, ConstraintOp::Ge, 0.0)?;
            }
        }
        Ok(m)
    }

    /// A fast heuristic order: repeatedly pick the feature with the
    /// largest total pair weight towards the remaining features. Used to
    /// warm-start branch-and-bound (and usable standalone as a fallback).
    pub fn heuristic_order(&self) -> Vec<usize> {
        let n = self.num_features();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut order = Vec::with_capacity(n);
        while !remaining.is_empty() {
            // Last-of-equals tie-break, matching `Iterator::max_by`.
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for (pos, &a) in remaining.iter().enumerate() {
                let score: f64 = remaining
                    .iter()
                    .filter(|&&b| b != a)
                    .map(|&b| self.pair_weight(a, b) - self.pair_weight(b, a))
                    .sum();
                if score.total_cmp(&best_score).is_ge() {
                    best = pos;
                    best_score = score;
                }
            }
            order.push(remaining.remove(best));
        }
        order
    }

    /// Encodes a permutation as a feasible assignment of the model's
    /// variables (x block row-major, then y block in (a, b) order).
    pub fn encode_order(&self, order: &[usize]) -> Vec<f64> {
        let n = self.num_features();
        let mut pos = vec![0usize; n];
        for (k, &a) in order.iter().enumerate() {
            pos[a] = k;
        }
        let mut x = vec![0.0; n * n];
        for a in 0..n {
            x[a * n + pos[a]] = 1.0;
        }
        let mut full = x;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    full.push(if pos[a] < pos[b] { 1.0 } else { 0.0 });
                }
            }
        }
        full
    }

    /// Solves the ordering ILP to optimality, warm-started with the
    /// greedy heuristic incumbent.
    pub fn solve(&self, options: &IlpOptions) -> Result<OrderingSolution> {
        let _span = smdb_obs::span!("lp", "ordering_solve", { features: self.num_features() });
        smdb_obs::metrics::counter("lp.ordering_solves").inc();
        let n = self.num_features();
        if n == 1 {
            return Ok(OrderingSolution {
                order: vec![0],
                objective: 0.0,
                nodes: 0,
            });
        }
        let model = self.build_model()?;
        let mut options = options.clone();
        if options.incumbent.is_none() {
            let h = self.heuristic_order();
            options.incumbent = Some(IlpIncumbent {
                x: self.encode_order(&h),
                objective: self.order_objective(&h),
            });
        }
        let sol = solve_ilp(&model, &options)?;
        // Decode the permutation from x_{A,k} (variables 0..n² in
        // row-major order).
        let mut order = vec![usize::MAX; n];
        for a in 0..n {
            for k in 0..n {
                if sol.x[a * n + k].round() as i64 == 1 {
                    order[k] = a;
                }
            }
        }
        if order.contains(&usize::MAX) {
            return Err(Error::Optimization(
                "ordering ILP produced no valid permutation".into(),
            ));
        }
        smdb_obs::metrics::gauge("lp.ordering_objective").set(sol.objective);
        smdb_obs::metrics::observe("lp.ordering_nodes", sol.nodes as f64);
        Ok(OrderingSolution {
            order,
            objective: sol.objective,
            nodes: sol.nodes,
        })
    }

    /// The paper's variable-count formula `2|S|² − |S|`.
    pub fn paper_variable_count(n: usize) -> usize {
        2 * n * n - n
    }

    /// The paper's constraint-count formula `2|S|²`.
    pub fn paper_constraint_count(n: usize) -> usize {
        2 * n * n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_impact(n: usize) -> Vec<Vec<f64>> {
        vec![vec![1.0; n]; n]
    }

    #[test]
    fn model_sizes_match_paper_formulas() {
        for n in 2..=6 {
            let p = OrderingProblem::new(vec![vec![1.0; n]; n], uniform_impact(n)).unwrap();
            let m = p.build_model().expect("model builds");
            assert_eq!(
                m.num_vars(),
                OrderingProblem::paper_variable_count(n),
                "vars at n={n}"
            );
            assert_eq!(
                m.num_constraints(),
                OrderingProblem::paper_constraint_count(n),
                "constraints at n={n}"
            );
        }
    }

    #[test]
    fn strong_pairwise_preference_is_respected() {
        // d_{0,1} >> 1 means tuning 0 before 1 is much better.
        let mut d = vec![vec![1.0; 2]; 2];
        d[0][1] = 3.0;
        d[1][0] = 1.0 / 3.0;
        let p = OrderingProblem::new(d, uniform_impact(2)).unwrap();
        let s = p.solve(&IlpOptions::default()).unwrap();
        assert_eq!(s.order, vec![0, 1]);
        assert!((s.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn three_feature_chain() {
        // Prefer 2 before 0 before 1.
        let n = 3;
        let mut d = vec![vec![1.0; n]; n];
        d[2][0] = 2.0;
        d[0][2] = 0.5;
        d[0][1] = 2.0;
        d[1][0] = 0.5;
        d[2][1] = 2.0;
        d[1][2] = 0.5;
        let p = OrderingProblem::new(d, uniform_impact(n)).unwrap();
        let s = p.solve(&IlpOptions::default()).unwrap();
        assert_eq!(s.order, vec![2, 0, 1]);
    }

    #[test]
    fn solution_is_a_permutation_and_matches_order_objective() {
        let n = 4;
        // Deterministic pseudo-random-ish asymmetric matrix.
        let mut d = vec![vec![1.0; n]; n];
        let mut w = vec![vec![1.0; n]; n];
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    d[a][b] = 0.5 + ((a * 7 + b * 13) % 10) as f64 / 5.0;
                    w[a][b] = 1.0 + ((a * 3 + b * 5) % 7) as f64 / 3.0;
                }
            }
        }
        let p = OrderingProblem::new(d, w).unwrap();
        let s = p.solve(&IlpOptions::default()).unwrap();
        let mut seen = s.order.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert!((p.order_objective(&s.order) - s.objective).abs() < 1e-6);
    }

    /// The warm-start incumbent handed to branch-and-bound must satisfy
    /// every model constraint and carry the objective the encoded
    /// permutation actually achieves — an infeasible or mis-scored
    /// incumbent would silently prune the true optimum.
    #[test]
    fn heuristic_incumbent_is_feasible_and_scores_right() {
        for n in 2..=6 {
            let mut d = vec![vec![1.0; n]; n];
            let mut w = vec![vec![1.0; n]; n];
            for a in 0..n {
                for b in 0..n {
                    if a != b {
                        d[a][b] = 0.5 + ((a * 11 + b * 3) % 9) as f64 / 4.0;
                        w[a][b] = 1.0 + ((a * 5 + b * 7) % 6) as f64 / 2.0;
                    }
                }
            }
            let p = OrderingProblem::new(d, w).unwrap();
            let m = p.build_model().unwrap();
            let h = p.heuristic_order();
            let x = p.encode_order(&h);
            assert!(m.is_feasible(&x, 1e-9), "n={n} incumbent infeasible");
            assert!(
                (m.objective_value(&x) - p.order_objective(&h)).abs() < 1e-9,
                "n={n} incumbent objective mismatch"
            );
        }
    }

    /// Warm-started search must reach the same optimum as a cold start
    /// without ever exploring more nodes.
    #[test]
    fn warm_start_never_explores_more_nodes() {
        for n in [3usize, 5] {
            let mut d = vec![vec![1.0; n]; n];
            for a in 0..n {
                for b in 0..n {
                    if a != b {
                        d[a][b] = 0.5 + ((a * 7 + b * 13) % 10) as f64 / 5.0;
                    }
                }
            }
            let p = OrderingProblem::new(d, uniform_impact(n)).unwrap();
            let warm = p.solve(&IlpOptions::default()).unwrap();
            let cold = solve_ilp(&p.build_model().unwrap(), &IlpOptions::default()).unwrap();
            assert!((warm.objective - cold.objective).abs() < 1e-6, "n={n}");
            assert!(
                warm.nodes <= cold.nodes,
                "n={n}: warm {} > cold {}",
                warm.nodes,
                cold.nodes
            );
        }
    }

    #[test]
    fn single_feature_trivial() {
        let p = OrderingProblem::new(vec![vec![1.0]], vec![vec![1.0]]).unwrap();
        let s = p.solve(&IlpOptions::default()).unwrap();
        assert_eq!(s.order, vec![0]);
    }

    #[test]
    fn shape_validation() {
        assert!(OrderingProblem::new(vec![], vec![]).is_err());
        assert!(OrderingProblem::new(vec![vec![1.0, 2.0]], vec![vec![1.0]]).is_err());
    }
}

#[cfg(test)]
mod cyclic_tests {
    use super::*;
    use crate::permutation::brute_force_order;

    /// Section III-B: "a consistent order satisfying all preferred
    /// pairwise relations cannot be assumed to exist." Cyclic preferences
    /// (A before B, B before C, C before A) admit no order satisfying all
    /// three; the LP must still return the best compromise permutation.
    #[test]
    fn cyclic_preferences_still_solve_to_best_compromise() {
        let n = 3;
        let mut d = vec![vec![1.0; n]; n];
        // A<B, B<C, C<A preferences with differing strengths.
        d[0][1] = 3.0;
        d[1][0] = 1.0 / 3.0;
        d[1][2] = 2.0;
        d[2][1] = 0.5;
        d[2][0] = 1.5;
        d[0][2] = 1.0 / 1.5;
        let p = OrderingProblem::new(d, vec![vec![1.0; n]; n]).unwrap();
        let lp = p.solve(&IlpOptions::default()).unwrap();
        let brute = brute_force_order(&p).unwrap();
        assert!((lp.objective - brute.objective).abs() < 1e-6);
        // The strongest relation (A before B, weight 3) must be honoured;
        // the weakest (C before A, 1.5) is the one sacrificed.
        let pos = |f: usize| lp.order.iter().position(|&x| x == f).unwrap();
        assert!(pos(0) < pos(1), "A before B honoured: {:?}", lp.order);
        assert!(pos(1) < pos(2), "B before C honoured: {:?}", lp.order);
    }

    /// With perfectly uniform preferences every permutation is optimal;
    /// the solver must still return a valid permutation and the paper's
    /// objective value `Σ c = n(n-1)/2 · c`.
    #[test]
    fn indifferent_preferences_yield_any_valid_permutation() {
        let n = 4;
        let p = OrderingProblem::new(vec![vec![1.0; n]; n], vec![vec![2.0; n]; n]).unwrap();
        let lp = p.solve(&IlpOptions::default()).unwrap();
        let mut sorted = lp.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        assert!((lp.objective - (6.0 * 2.0)).abs() < 1e-6);
    }
}
