//! Forecast accuracy scoring: SMAPE/MAE helpers and analyzer backtesting,
//! used by the organizer to pick among analyzer instances and by the
//! experiment harness.

use crate::analyzer::WorkloadAnalyzer;

/// Symmetric mean absolute percentage error, in `[0, 2]`. Pairs where
/// both values are zero contribute zero error.
pub fn smape(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "length mismatch");
    if actual.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (&a, &p) in actual.iter().zip(predicted) {
        let denom = a.abs() + p.abs();
        if denom > 0.0 {
            total += 2.0 * (a - p).abs() / denom;
        }
    }
    total / actual.len() as f64
}

/// Mean absolute error.
pub fn mae(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "length mismatch");
    if actual.is_empty() {
        return 0.0;
    }
    actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p).abs())
        .sum::<f64>()
        / actual.len() as f64
}

/// Rolling one-step backtest of an analyzer over a series: returns
/// `(smape, mae)` of the one-step-ahead forecasts after `min_train`
/// warm-up points.
pub fn backtest(analyzer: &dyn WorkloadAnalyzer, series: &[f64], min_train: usize) -> (f64, f64) {
    let mut actual = Vec::new();
    let mut predicted = Vec::new();
    for t in min_train..series.len() {
        let f = analyzer.forecast(&series[..t], 1);
        if let Some(&p) = f.first() {
            actual.push(series[t]);
            predicted.push(p);
        }
    }
    (smape(&actual, &predicted), mae(&actual, &predicted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzers::{LastValue, LinearTrend, Seasonal};

    #[test]
    fn smape_bounds() {
        assert_eq!(smape(&[], &[]), 0.0);
        assert_eq!(smape(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        // Completely disjoint: max 2.
        assert!((smape(&[1.0], &[0.0]) - 2.0).abs() < 1e-12);
        assert_eq!(smape(&[0.0], &[0.0]), 0.0);
    }

    #[test]
    fn mae_basics() {
        assert_eq!(mae(&[1.0, 3.0], &[2.0, 1.0]), 1.5);
        assert_eq!(mae(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = mae(&[1.0], &[]);
    }

    #[test]
    fn backtest_ranks_analyzers_sensibly() {
        // Strong linear trend: LinearTrend should beat LastValue.
        let series: Vec<f64> = (0..30).map(|t| 3.0 * t as f64).collect();
        let (_, mae_trend) = backtest(&LinearTrend, &series, 5);
        let (_, mae_naive) = backtest(&LastValue, &series, 5);
        assert!(mae_trend < mae_naive);

        // Strong seasonality: Seasonal should beat LastValue.
        let seasonal_series: Vec<f64> = [50.0, 5.0, 5.0, 5.0].repeat(8);
        let (_, mae_seasonal) = backtest(&Seasonal::new(4), &seasonal_series, 8);
        let (_, mae_naive2) = backtest(&LastValue, &seasonal_series, 8);
        assert!(mae_seasonal < mae_naive2);
    }
}
