//! Concrete workload analyzers: last-value, moving average, linear
//! trend, seasonal, and autoregressive AR(p) via Yule-Walker — the
//! methods the paper lists for the workload predictor ("simple linear
//! regressions, time series analysis (cf. ARIMA), or more expensive
//! recurrent neural networks"; we stop before the neural network, which
//! the paper itself marks as the expensive option).

use crate::analyzer::WorkloadAnalyzer;

/// Forecasts the last observed value forever (naive baseline).
#[derive(Debug, Clone, Default)]
pub struct LastValue;

impl WorkloadAnalyzer for LastValue {
    fn name(&self) -> &str {
        "last_value"
    }

    fn forecast(&self, series: &[f64], horizon: usize) -> Vec<f64> {
        let last = series.last().copied().unwrap_or(0.0).max(0.0);
        vec![last; horizon]
    }
}

/// Mean of the trailing `window` observations.
#[derive(Debug, Clone)]
pub struct MovingAverage {
    pub window: usize,
}

impl MovingAverage {
    /// Creates a moving average with a window of at least 1.
    pub fn new(window: usize) -> Self {
        MovingAverage {
            window: window.max(1),
        }
    }
}

impl WorkloadAnalyzer for MovingAverage {
    fn name(&self) -> &str {
        "moving_average"
    }

    fn forecast(&self, series: &[f64], horizon: usize) -> Vec<f64> {
        if series.is_empty() {
            return vec![0.0; horizon];
        }
        let tail = &series[series.len().saturating_sub(self.window)..];
        let mean = (tail.iter().sum::<f64>() / tail.len() as f64).max(0.0);
        vec![mean; horizon]
    }
}

/// Ordinary-least-squares linear trend extrapolation.
#[derive(Debug, Clone, Default)]
pub struct LinearTrend;

impl WorkloadAnalyzer for LinearTrend {
    fn name(&self) -> &str {
        "linear_trend"
    }

    fn forecast(&self, series: &[f64], horizon: usize) -> Vec<f64> {
        let n = series.len();
        if n == 0 {
            return vec![0.0; horizon];
        }
        if n == 1 {
            return vec![series[0].max(0.0); horizon];
        }
        // OLS of y on t = 0..n.
        let nf = n as f64;
        let t_mean = (nf - 1.0) / 2.0;
        let y_mean = series.iter().sum::<f64>() / nf;
        let mut num = 0.0;
        let mut den = 0.0;
        for (t, &y) in series.iter().enumerate() {
            let dt = t as f64 - t_mean;
            num += dt * (y - y_mean);
            den += dt * dt;
        }
        let slope = if den > 0.0 { num / den } else { 0.0 };
        let intercept = y_mean - slope * t_mean;
        (0..horizon)
            .map(|h| (intercept + slope * (n + h) as f64).max(0.0))
            .collect()
    }
}

/// Seasonal forecaster: the value of the same phase one period ago,
/// averaged over all observed periods (with a last-value fallback for
/// short series).
#[derive(Debug, Clone)]
pub struct Seasonal {
    pub period: usize,
}

impl Seasonal {
    /// Creates a seasonal analyzer with a period of at least 2.
    pub fn new(period: usize) -> Self {
        Seasonal {
            period: period.max(2),
        }
    }
}

impl WorkloadAnalyzer for Seasonal {
    fn name(&self) -> &str {
        "seasonal"
    }

    fn forecast(&self, series: &[f64], horizon: usize) -> Vec<f64> {
        let n = series.len();
        if n < self.period {
            return LastValue.forecast(series, horizon);
        }
        (0..horizon)
            .map(|h| {
                let phase = (n + h) % self.period;
                // Mean over all observations at this phase.
                let mut sum = 0.0;
                let mut count = 0.0;
                let mut t = phase;
                while t < n {
                    sum += series[t];
                    count += 1.0;
                    t += self.period;
                }
                if count > 0.0 {
                    (sum / count).max(0.0)
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// AR(p) autoregression fitted by Yule-Walker on the demeaned series.
#[derive(Debug, Clone)]
pub struct AutoRegressive {
    pub order: usize,
}

impl AutoRegressive {
    /// Creates an AR analyzer with order at least 1.
    pub fn new(order: usize) -> Self {
        AutoRegressive {
            order: order.max(1),
        }
    }

    /// Autocovariance at lag `k` of a demeaned series.
    fn autocov(series: &[f64], mean: f64, k: usize) -> f64 {
        let n = series.len();
        let mut acc = 0.0;
        for t in k..n {
            acc += (series[t] - mean) * (series[t - k] - mean);
        }
        acc / n as f64
    }

    /// Solves the Yule-Walker equations by Levinson-Durbin recursion.
    fn fit(&self, series: &[f64]) -> Option<(f64, Vec<f64>)> {
        let p = self.order;
        if series.len() < p + 2 {
            return None;
        }
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        let r: Vec<f64> = (0..=p).map(|k| Self::autocov(series, mean, k)).collect();
        if r[0] <= 1e-12 {
            return None; // constant series
        }
        // Levinson-Durbin.
        let mut phi = vec![0.0f64; p + 1];
        let mut prev = vec![0.0f64; p + 1];
        let mut e = r[0];
        for k in 1..=p {
            let mut acc = r[k];
            for j in 1..k {
                acc -= prev[j] * r[k - j];
            }
            let kappa = acc / e;
            phi[k] = kappa;
            for j in 1..k {
                phi[j] = prev[j] - kappa * prev[k - j];
            }
            e *= 1.0 - kappa * kappa;
            if e <= 1e-12 {
                break;
            }
            prev[..=k].copy_from_slice(&phi[..=k]);
        }
        Some((mean, phi[1..].to_vec()))
    }
}

impl WorkloadAnalyzer for AutoRegressive {
    fn name(&self) -> &str {
        "ar"
    }

    fn forecast(&self, series: &[f64], horizon: usize) -> Vec<f64> {
        let Some((mean, coeffs)) = self.fit(series) else {
            return LastValue.forecast(series, horizon);
        };
        // Iterated one-step forecasts on the demeaned series.
        let mut extended: Vec<f64> = series.iter().map(|&y| y - mean).collect();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let n = extended.len();
            let mut next = 0.0;
            for (j, &c) in coeffs.iter().enumerate() {
                if n > j {
                    next += c * extended[n - 1 - j];
                }
            }
            extended.push(next);
            out.push((next + mean).max(0.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::residual_std;

    #[test]
    fn last_value_repeats() {
        assert_eq!(LastValue.forecast(&[1.0, 7.0], 3), vec![7.0; 3]);
        assert_eq!(LastValue.forecast(&[], 2), vec![0.0; 2]);
    }

    #[test]
    fn moving_average_smooths() {
        let ma = MovingAverage::new(3);
        assert_eq!(ma.forecast(&[1.0, 2.0, 3.0, 4.0], 1), vec![3.0]);
        assert_eq!(ma.forecast(&[5.0], 2), vec![5.0, 5.0]);
        assert_eq!(ma.forecast(&[], 1), vec![0.0]);
    }

    #[test]
    fn linear_trend_extrapolates() {
        let lt = LinearTrend;
        // y = 2t + 1.
        let series: Vec<f64> = (0..10).map(|t| 2.0 * t as f64 + 1.0).collect();
        let f = lt.forecast(&series, 2);
        assert!((f[0] - 21.0).abs() < 1e-9);
        assert!((f[1] - 23.0).abs() < 1e-9);
    }

    #[test]
    fn linear_trend_clamps_negative() {
        let lt = LinearTrend;
        let series: Vec<f64> = (0..10).map(|t| 10.0 - 2.0 * t as f64).collect();
        let f = lt.forecast(&series, 3);
        assert!(f.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn seasonal_tracks_period() {
        let s = Seasonal::new(4);
        // Period-4 pattern repeated 3 times.
        let series: Vec<f64> = [10.0, 1.0, 1.0, 1.0].repeat(3);
        let f = s.forecast(&series, 4);
        assert!((f[0] - 10.0).abs() < 1e-9, "{f:?}");
        assert!((f[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn seasonal_beats_naive_on_periodic_series() {
        let series: Vec<f64> = [20.0, 2.0, 2.0, 2.0].repeat(6);
        let seasonal = Seasonal::new(4);
        let naive = LastValue;
        let rs = residual_std(&seasonal.backtest_residuals(&series, 8));
        let rn = residual_std(&naive.backtest_residuals(&series, 8));
        assert!(rs < rn, "seasonal {rs} vs naive {rn}");
    }

    #[test]
    fn ar_learns_oscillation() {
        // AR(1) with coefficient -1: sustained alternation around 10,
        // where the naive forecaster is maximally wrong.
        let series: Vec<f64> = (0..40)
            .map(|t| if t % 2 == 0 { 15.0 } else { 5.0 })
            .collect();
        let ar = AutoRegressive::new(2);
        let f = ar.forecast(&series, 1);
        let naive = LastValue.forecast(&series, 1);
        let actual = 15.0; // t = 40 is even
        assert!(
            (f[0] - actual).abs() < (naive[0] - actual).abs(),
            "ar {f:?} vs naive {naive:?} vs actual {actual}"
        );
    }

    #[test]
    fn ar_falls_back_on_short_or_constant_series() {
        let ar = AutoRegressive::new(3);
        assert_eq!(ar.forecast(&[5.0, 5.0], 2), vec![5.0, 5.0]);
        assert_eq!(ar.forecast(&[7.0; 20], 1), vec![7.0]);
    }

    #[test]
    fn forecasts_have_requested_horizon() {
        let analyzers: Vec<Box<dyn WorkloadAnalyzer>> = vec![
            Box::new(LastValue),
            Box::new(MovingAverage::new(4)),
            Box::new(LinearTrend),
            Box::new(Seasonal::new(3)),
            Box::new(AutoRegressive::new(2)),
        ];
        let series: Vec<f64> = (0..20).map(|t| (t % 5) as f64).collect();
        for a in &analyzers {
            for horizon in [0usize, 1, 5] {
                let f = a.forecast(&series, horizon);
                assert_eq!(f.len(), horizon, "{} horizon {horizon}", a.name());
                assert!(f.iter().all(|&v| v >= 0.0), "{} negative", a.name());
            }
        }
    }
}
