//! Per-template workload history.
//!
//! Built by diffing successive plan-cache snapshots: each call to
//! [`WorkloadHistory::observe`] attributes the executions since the last
//! snapshot to the current time bucket. This keeps the query path free of
//! forecasting hooks (Section II-C: "by relying on the query plan cache,
//! no further overhead is added during query execution time").

use std::collections::{BTreeMap, HashMap};

use smdb_common::{Cost, LogicalTime};
use smdb_query::{PlanCacheEntry, Query};

/// History of one template.
#[derive(Debug, Clone)]
pub struct TemplateHistory {
    /// A recent concrete instance, used to materialise forecast workloads.
    pub example: Query,
    /// Executions attributed to each observed bucket.
    pub buckets: BTreeMap<u64, f64>,
    /// Mean observed cost per execution (running).
    pub mean_cost: Cost,
    /// Total executions ever observed.
    pub total: f64,
}

impl TemplateHistory {
    /// Dense count series covering buckets `[from, to)` (zeros filled).
    pub fn series(&self, from: u64, to: u64) -> Vec<f64> {
        (from..to)
            .map(|b| self.buckets.get(&b).copied().unwrap_or(0.0))
            .collect()
    }
}

/// Histories for all observed templates.
#[derive(Debug, Default)]
pub struct WorkloadHistory {
    templates: HashMap<u64, TemplateHistory>,
    /// Cumulative (executions, cost) at the previous snapshot.
    last_totals: HashMap<u64, (u64, Cost)>,
    /// First and last observed bucket.
    span: Option<(u64, u64)>,
}

impl WorkloadHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        WorkloadHistory::default()
    }

    /// Absorbs a plan-cache snapshot taken at `now`, attributing all
    /// executions since the previous snapshot to bucket `now`.
    pub fn observe(&mut self, now: LogicalTime, snapshot: &[PlanCacheEntry]) {
        let bucket = now.raw();
        for entry in snapshot {
            let fp = entry.template.fingerprint();
            let (prev_exec, prev_cost) = self
                .last_totals
                .get(&fp)
                .copied()
                .unwrap_or((0, Cost::ZERO));
            let delta_exec = entry.executions.saturating_sub(prev_exec);
            let delta_cost = entry.total_cost - prev_cost;
            self.last_totals
                .insert(fp, (entry.executions, entry.total_cost));

            let hist = self.templates.entry(fp).or_insert_with(|| TemplateHistory {
                example: entry.example.clone(),
                buckets: BTreeMap::new(),
                mean_cost: Cost::ZERO,
                total: 0.0,
            });
            if delta_exec > 0 {
                *hist.buckets.entry(bucket).or_insert(0.0) += delta_exec as f64;
                let new_total = hist.total + delta_exec as f64;
                // Running mean of per-execution cost.
                hist.mean_cost = (hist.mean_cost * hist.total + delta_cost) / new_total;
                hist.total = new_total;
            }
        }
        self.span = Some(match self.span {
            None => (bucket, bucket + 1),
            Some((lo, hi)) => (lo.min(bucket), hi.max(bucket + 1)),
        });
    }

    /// Number of observed templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether no template has been observed.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// The observed bucket span `[first, last+1)`, if any.
    pub fn span(&self) -> Option<(u64, u64)> {
        self.span
    }

    /// The history of one template.
    pub fn template(&self, fingerprint: u64) -> Option<&TemplateHistory> {
        self.templates.get(&fingerprint)
    }

    /// Iterates over `(fingerprint, history)` in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &TemplateHistory)> {
        let mut keys: Vec<u64> = self.templates.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter().map(move |k| (k, &self.templates[&k]))
    }

    /// The full history as a deterministic, serializable value (sorted by
    /// fingerprint — the hash-map iteration order never leaks out).
    pub fn export_state(&self) -> WorkloadHistoryState {
        let mut templates: Vec<(u64, TemplateHistory)> = self
            .templates
            .iter()
            .map(|(&fp, th)| (fp, th.clone()))
            .collect();
        templates.sort_by_key(|(fp, _)| *fp);
        let mut last_totals: Vec<(u64, u64, Cost)> = self
            .last_totals
            .iter()
            .map(|(&fp, &(exec, cost))| (fp, exec, cost))
            .collect();
        last_totals.sort_by_key(|(fp, _, _)| *fp);
        WorkloadHistoryState {
            templates,
            last_totals,
            span: self.span,
        }
    }

    /// Rebuilds a history from exported state.
    pub fn restore_state(state: WorkloadHistoryState) -> Self {
        WorkloadHistory {
            templates: state.templates.into_iter().collect(),
            last_totals: state
                .last_totals
                .into_iter()
                .map(|(fp, exec, cost)| (fp, (exec, cost)))
                .collect(),
            span: state.span,
        }
    }
}

/// A [`WorkloadHistory`] flattened for serialization: plain sorted
/// vectors instead of hash maps, so encoding is deterministic.
#[derive(Debug, Clone)]
pub struct WorkloadHistoryState {
    /// `(template fingerprint, history)`, sorted by fingerprint.
    pub templates: Vec<(u64, TemplateHistory)>,
    /// `(template fingerprint, cumulative executions, cumulative cost)`
    /// at the previous snapshot, sorted by fingerprint.
    pub last_totals: Vec<(u64, u64, Cost)>,
    /// First and last observed bucket.
    pub span: Option<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::{ColumnId, TableId};
    use smdb_query::PlanCache;
    use smdb_storage::ScanPredicate;

    fn q(v: i64) -> Query {
        Query::new(
            TableId(0),
            "t",
            vec![ScanPredicate::eq(ColumnId(0), v)],
            None,
            "q",
        )
    }

    #[test]
    fn diffs_snapshots_into_buckets() {
        let mut cache = PlanCache::default();
        let mut hist = WorkloadHistory::new();

        cache.record(&q(1), Cost(2.0), LogicalTime(0));
        cache.record(&q(2), Cost(2.0), LogicalTime(0));
        hist.observe(LogicalTime(0), &cache.snapshot());

        cache.record(&q(3), Cost(4.0), LogicalTime(1));
        hist.observe(LogicalTime(1), &cache.snapshot());
        // Bucket without activity.
        hist.observe(LogicalTime(2), &cache.snapshot());

        assert_eq!(hist.len(), 1);
        let (_, th) = hist.iter().next().unwrap();
        assert_eq!(th.series(0, 3), vec![2.0, 1.0, 0.0]);
        assert_eq!(th.total, 3.0);
        // Mean cost: (2+2+4)/3.
        assert!((th.mean_cost.ms() - 8.0 / 3.0).abs() < 1e-9);
        assert_eq!(hist.span(), Some((0, 3)));
    }

    #[test]
    fn multiple_templates_tracked_independently() {
        let mut cache = PlanCache::default();
        let mut hist = WorkloadHistory::new();
        let other = Query::new(
            TableId(1),
            "u",
            vec![ScanPredicate::eq(ColumnId(0), 1i64)],
            None,
            "other",
        );
        cache.record(&q(1), Cost(1.0), LogicalTime(0));
        cache.record(&other, Cost(1.0), LogicalTime(0));
        hist.observe(LogicalTime(0), &cache.snapshot());
        assert_eq!(hist.len(), 2);
        assert!(hist.template(q(0).fingerprint()).is_some());
        assert!(hist.template(other.fingerprint()).is_some());
    }

    #[test]
    fn example_query_is_a_concrete_instance() {
        let mut cache = PlanCache::default();
        let mut hist = WorkloadHistory::new();
        cache.record(&q(1), Cost(1.0), LogicalTime(0));
        hist.observe(LogicalTime(0), &cache.snapshot());
        cache.record(&q(42), Cost(1.0), LogicalTime(1));
        hist.observe(LogicalTime(1), &cache.snapshot());
        let th = hist.template(q(0).fingerprint()).unwrap();
        assert_eq!(
            th.example.predicates()[0].value,
            smdb_storage::Value::Int(1)
        );
    }

    #[test]
    fn empty_history() {
        let hist = WorkloadHistory::new();
        assert!(hist.is_empty());
        assert_eq!(hist.span(), None);
    }
}
