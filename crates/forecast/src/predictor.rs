//! The workload predictor: history → (clustering) → analyzer →
//! scenarios.

use rand::RngExt;
use smdb_common::seeded_rng;
use smdb_query::Workload;

use crate::analyzer::{residual_std, WorkloadAnalyzer};
use crate::cluster::cluster_templates;
use crate::history::WorkloadHistory;
use crate::scenario::{ForecastSet, ScenarioKind, WorkloadScenario};

/// Predictor configuration.
pub struct PredictorConfig {
    /// Forecast horizon in buckets; per-template weights are the summed
    /// forecast counts over the horizon.
    pub horizon: usize,
    /// Cluster count for workload compression; `None` disables clustering.
    pub clusters: Option<usize>,
    /// Sampled scenarios to generate besides expected and worst case.
    pub samples: usize,
    /// Worst-case inflation in residual standard deviations.
    pub worst_case_sigmas: f64,
    /// Probability mass of the expected scenario; the rest is split
    /// between worst case and samples.
    pub expected_probability: f64,
    /// Seed for sampling noise and clustering.
    pub seed: u64,
    /// Minimum training prefix for backtest residuals.
    pub min_train: usize,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            horizon: 1,
            clusters: None,
            samples: 3,
            worst_case_sigmas: 2.0,
            expected_probability: 0.6,
            seed: 0xC0FFEE,
            min_train: 3,
        }
    }
}

/// The workload predictor component.
pub struct WorkloadPredictor {
    analyzer: Box<dyn WorkloadAnalyzer>,
    config: PredictorConfig,
}

impl WorkloadPredictor {
    /// Creates a predictor around an exchangeable analyzer.
    pub fn new(analyzer: Box<dyn WorkloadAnalyzer>, config: PredictorConfig) -> Self {
        WorkloadPredictor { analyzer, config }
    }

    /// The analyzer's name (for experiment tables).
    pub fn analyzer_name(&self) -> &str {
        self.analyzer.name()
    }

    /// The configuration.
    pub fn config(&self) -> &PredictorConfig {
        &self.config
    }

    /// Produces the forecast scenario set from the observed history.
    ///
    /// Per template (or per cluster representative when compression is
    /// on): forecast the next `horizon` buckets, sum to an expected
    /// weight, and estimate uncertainty from one-step backtest residuals.
    pub fn predict(&self, history: &WorkloadHistory) -> ForecastSet {
        let Some((lo, hi)) = history.span() else {
            return ForecastSet::default();
        };

        // Unit of prediction: template or cluster.
        struct Unit {
            example: smdb_query::Query,
            series: Vec<f64>,
        }
        let units: Vec<Unit> = match self.config.clusters {
            None => history
                .iter()
                .map(|(_, th)| Unit {
                    example: th.example.clone(),
                    series: th.series(lo, hi),
                })
                .collect(),
            Some(k) => cluster_templates(history, k, self.config.seed)
                .into_iter()
                .map(|cluster| {
                    // Cluster series = sum of member series; represented
                    // by the heaviest member's example query.
                    let mut series = vec![0.0; (hi - lo) as usize];
                    for fp in &cluster.members {
                        let th = history.template(*fp).expect("member exists");
                        for (s, v) in series.iter_mut().zip(th.series(lo, hi)) {
                            *s += v;
                        }
                    }
                    let example = history
                        .template(cluster.representative)
                        .expect("representative exists")
                        .example
                        .clone();
                    Unit { example, series }
                })
                .collect(),
        };

        // Forecast each unit.
        let mut expected = Workload::default();
        let mut worst = Workload::default();
        let mut sigmas: Vec<f64> = Vec::with_capacity(units.len());
        for unit in &units {
            let forecast = self.analyzer.forecast(&unit.series, self.config.horizon);
            let weight: f64 = forecast.iter().sum();
            let sigma = residual_std(
                &self
                    .analyzer
                    .backtest_residuals(&unit.series, self.config.min_train),
            ) * (self.config.horizon as f64).sqrt();
            sigmas.push(sigma);
            if weight > 0.0 || sigma > 0.0 {
                expected.push(unit.example.clone(), weight);
                worst.push(
                    unit.example.clone(),
                    weight + self.config.worst_case_sigmas * sigma,
                );
            }
        }

        if expected.is_empty() && worst.is_empty() {
            // Nothing observed (or nothing forecast to recur): an empty
            // scenario set, not a set of empty scenarios.
            return ForecastSet::default();
        }
        let mut scenarios = vec![WorkloadScenario {
            kind: ScenarioKind::Expected,
            name: format!("expected/{}", self.analyzer.name()),
            probability: self.config.expected_probability,
            workload: expected.clone(),
        }];
        let rest = (1.0 - self.config.expected_probability).max(0.0);
        let worst_p = rest * 0.5;
        scenarios.push(WorkloadScenario {
            kind: ScenarioKind::WorstCase,
            name: format!("worst_case/{:.1}sigma", self.config.worst_case_sigmas),
            probability: worst_p,
            workload: worst,
        });

        // Sampled scenarios: expected weights + Gaussian-ish noise
        // (sum of 4 uniforms, deterministic).
        if self.config.samples > 0 {
            let sample_p = (rest - worst_p) / self.config.samples as f64;
            let mut rng = seeded_rng(self.config.seed ^ 0x5EED);
            for s in 0..self.config.samples {
                let mut w = Workload::default();
                for (i, unit) in units.iter().enumerate() {
                    let base = expected
                        .queries()
                        .iter()
                        .find(|wq| wq.query.fingerprint() == unit.example.fingerprint())
                        .map_or(0.0, |wq| wq.weight);
                    let noise: f64 =
                        (0..4).map(|_| rng.random::<f64>() - 0.5).sum::<f64>() * sigmas[i] * 1.732; // var(sum of 4 U(-.5,.5)) = 1/3 → scale to σ²
                    let sampled = (base + noise).max(0.0);
                    if sampled > 0.0 {
                        w.push(unit.example.clone(), sampled);
                    }
                }
                scenarios.push(WorkloadScenario {
                    kind: ScenarioKind::Sampled,
                    name: format!("sample_{s}"),
                    probability: sample_p,
                    workload: w,
                });
            }
        }

        let mut set = ForecastSet { scenarios };
        set.normalize();
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzers::{LastValue, LinearTrend};
    use smdb_common::{ColumnId, Cost, LogicalTime, TableId};
    use smdb_query::{PlanCache, Query};
    use smdb_storage::ScanPredicate;

    fn q(col: u16, v: i64) -> Query {
        Query::new(
            TableId(0),
            "t",
            vec![ScanPredicate::eq(ColumnId(col), v)],
            None,
            format!("q{col}"),
        )
    }

    fn build_history(buckets: &[&[(u16, usize)]]) -> WorkloadHistory {
        let mut cache = PlanCache::default();
        let mut hist = WorkloadHistory::new();
        for (t, bucket) in buckets.iter().enumerate() {
            for &(col, count) in *bucket {
                for i in 0..count {
                    cache.record(&q(col, i as i64), Cost(1.0), LogicalTime(t as u64));
                }
            }
            hist.observe(LogicalTime(t as u64), &cache.snapshot());
        }
        hist
    }

    #[test]
    fn expected_scenario_reflects_stable_workload() {
        let hist = build_history(&[&[(0, 10), (1, 5)], &[(0, 10), (1, 5)], &[(0, 10), (1, 5)]]);
        let p = WorkloadPredictor::new(Box::new(LastValue), PredictorConfig::default());
        let set = p.predict(&hist);
        let expected = set.expected().unwrap();
        assert_eq!(expected.workload.len(), 2);
        let weights: Vec<f64> = expected
            .workload
            .queries()
            .iter()
            .map(|w| w.weight)
            .collect();
        assert!(
            weights.contains(&10.0) && weights.contains(&5.0),
            "{weights:?}"
        );
        assert!((set.total_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trend_analyzer_extrapolates_growth() {
        let hist = build_history(&[&[(0, 2)], &[(0, 4)], &[(0, 6)], &[(0, 8)]]);
        let p = WorkloadPredictor::new(Box::new(LinearTrend), PredictorConfig::default());
        let set = p.predict(&hist);
        let w = set.expected().unwrap().workload.queries()[0].weight;
        assert!((w - 10.0).abs() < 1e-6, "expected 10, got {w}");
    }

    #[test]
    fn worst_case_at_least_expected() {
        let hist = build_history(&[&[(0, 10)], &[(0, 2)], &[(0, 12)], &[(0, 3)], &[(0, 9)]]);
        let p = WorkloadPredictor::new(Box::new(LastValue), PredictorConfig::default());
        let set = p.predict(&hist);
        let e = set.expected().unwrap().workload.total_weight();
        let w = set.worst_case().unwrap().workload.total_weight();
        assert!(w >= e, "worst {w} < expected {e}");
    }

    #[test]
    fn clustering_compresses_workload() {
        // 8 templates, clustering to 2.
        let mut bucket: Vec<(u16, usize)> = (0..8).map(|c| (c as u16, 4)).collect();
        bucket[0].1 = 20; // make one clearly heaviest
        let hist = build_history(&[&bucket, &bucket]);
        let config = PredictorConfig {
            clusters: Some(2),
            ..PredictorConfig::default()
        };
        let p = WorkloadPredictor::new(Box::new(LastValue), config);
        let set = p.predict(&hist);
        let expected = set.expected().unwrap();
        assert!(expected.workload.len() <= 2);
        // Compressed workload preserves total weight.
        let total = expected.workload.total_weight();
        assert!((total - 48.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn empty_history_empty_forecast() {
        let hist = WorkloadHistory::new();
        let p = WorkloadPredictor::new(Box::new(LastValue), PredictorConfig::default());
        assert!(p.predict(&hist).is_empty());
    }

    #[test]
    fn deterministic_sampling() {
        let hist = build_history(&[&[(0, 5)], &[(0, 7)], &[(0, 6)]]);
        let p1 = WorkloadPredictor::new(Box::new(LastValue), PredictorConfig::default());
        let p2 = WorkloadPredictor::new(Box::new(LastValue), PredictorConfig::default());
        let a = p1.predict(&hist);
        let b = p2.predict(&hist);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.workload.total_weight(), y.workload.total_weight());
        }
    }
}
