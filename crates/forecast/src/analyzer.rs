//! The workload-analyzer interface.
//!
//! "The system can consist of multiple workload analyzer instances that
//! each employ different methods to create forecasts" (Section II-C).
//! Analyzers are pure functions over count series, so they compose and
//! exchange freely.

/// Forecasts future per-bucket execution counts from an observed series.
pub trait WorkloadAnalyzer: Send + Sync {
    /// Human-readable name, used in experiment tables.
    fn name(&self) -> &str;

    /// Forecasts the next `horizon` buckets of a series. Implementations
    /// must return exactly `horizon` non-negative values and tolerate
    /// short (even empty) series.
    fn forecast(&self, series: &[f64], horizon: usize) -> Vec<f64>;

    /// One-step-ahead backtest residuals: for each prefix of at least
    /// `min_train` points, forecast the next point and record the error.
    /// Used to estimate forecast uncertainty for worst-case scenarios.
    fn backtest_residuals(&self, series: &[f64], min_train: usize) -> Vec<f64> {
        let mut residuals = Vec::new();
        for t in min_train..series.len() {
            let pred = self.forecast(&series[..t], 1);
            if let Some(&p) = pred.first() {
                residuals.push(series[t] - p);
            }
        }
        residuals
    }
}

/// Sample standard deviation of residuals (0 for < 2 samples).
pub fn residual_std(residuals: &[f64]) -> f64 {
    if residuals.len() < 2 {
        return 0.0;
    }
    let n = residuals.len() as f64;
    let mean = residuals.iter().sum::<f64>() / n;
    let var = residuals.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / (n - 1.0);
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant(f64);

    impl WorkloadAnalyzer for Constant {
        fn name(&self) -> &str {
            "constant"
        }
        fn forecast(&self, _series: &[f64], horizon: usize) -> Vec<f64> {
            vec![self.0; horizon]
        }
    }

    #[test]
    fn backtest_produces_residuals() {
        let a = Constant(5.0);
        let series = [5.0, 6.0, 4.0, 5.0];
        let r = a.backtest_residuals(&series, 1);
        assert_eq!(r, vec![1.0, -1.0, 0.0]);
    }

    #[test]
    fn residual_std_basics() {
        assert_eq!(residual_std(&[]), 0.0);
        assert_eq!(residual_std(&[1.0]), 0.0);
        let s = residual_std(&[1.0, -1.0, 1.0, -1.0]);
        assert!((s - (16.0f64 / 12.0).sqrt()).abs() < 1e-9);
    }
}
