//! Query clustering (workload compression).
//!
//! "Similar queries can be combined to reduce the number of queries that
//! have to be processed … and, in the end, reduce the time necessary for
//! predictions and tunings" (Section II-C). Templates are embedded into a
//! small feature space and clustered with seeded k-means; each cluster is
//! represented by its heaviest member carrying the cluster's combined
//! weight.

use rand::RngExt;
use smdb_common::seeded_rng;

use crate::history::{TemplateHistory, WorkloadHistory};

/// Feature embedding of one template for clustering purposes.
pub fn template_features(fp: u64, hist: &TemplateHistory) -> [f64; 6] {
    let template = hist.example.template();
    let arity = template.predicates.len() as f64;
    let range_frac = if template.predicates.is_empty() {
        0.0
    } else {
        template
            .predicates
            .iter()
            .filter(|(_, op)| op.is_range())
            .count() as f64
            / arity
    };
    [
        template.table.0 as f64,
        // First predicate column (queries on the same column cluster
        // together — they benefit from the same physical design).
        template
            .predicates
            .first()
            .map_or(-1.0, |(c, _)| c.0 as f64),
        arity,
        range_frac,
        if template.aggregate.is_some() {
            1.0
        } else {
            0.0
        },
        // Cost magnitude; log-compressed. The fingerprint itself is NOT a
        // feature (it is hash noise), only used for tie-breaking upstream.
        (hist.mean_cost.ms().max(1e-9)).ln() + (fp as f64 * 0.0),
    ]
}

/// One cluster of templates.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Fingerprints of member templates.
    pub members: Vec<u64>,
    /// Fingerprint of the representative (heaviest member).
    pub representative: u64,
    /// Total executions over all members.
    pub total_weight: f64,
}

/// K-means over template embeddings. Deterministic under `seed`. Returns
/// at most `k` non-empty clusters.
pub fn cluster_templates(history: &WorkloadHistory, k: usize, seed: u64) -> Vec<Cluster> {
    let items: Vec<(u64, [f64; 6], f64)> = history
        .iter()
        .map(|(fp, th)| (fp, template_features(fp, th), th.total))
        .collect();
    if items.is_empty() {
        return Vec::new();
    }
    let k = k.max(1).min(items.len());

    // Normalise features to zero mean / unit variance per dimension so
    // table ids do not dominate.
    let dim = 6;
    let n = items.len() as f64;
    let mut mean = [0.0f64; 6];
    let mut std = [0.0f64; 6];
    for (_, f, _) in &items {
        for d in 0..dim {
            mean[d] += f[d];
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    for (_, f, _) in &items {
        for d in 0..dim {
            std[d] += (f[d] - mean[d]).powi(2);
        }
    }
    for s in &mut std {
        *s = (*s / n).sqrt().max(1e-9);
    }
    // Post-normalisation dimension weights: the target table dominates
    // (queries on different tables never share physical design), then the
    // driving column, then shape features.
    const DIM_WEIGHTS: [f64; 6] = [4.0, 2.0, 1.0, 1.0, 1.0, 1.0];
    let points: Vec<[f64; 6]> = items
        .iter()
        .map(|(_, f, _)| {
            let mut p = [0.0f64; 6];
            for d in 0..dim {
                p[d] = (f[d] - mean[d]) / std[d] * DIM_WEIGHTS[d];
            }
            p
        })
        .collect();

    // k-means++-style seeding (greedy farthest point, deterministic RNG
    // for the first pick).
    let mut rng = seeded_rng(seed);
    let first = rng.random_range(0..points.len());
    let mut centroids: Vec<[f64; 6]> = vec![points[first]];
    while centroids.len() < k {
        let (best_i, _) = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let d = centroids
                    .iter()
                    .map(|c| dist2(p, c))
                    .fold(f64::INFINITY, f64::min);
                (i, d)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty points");
        centroids.push(points[best_i]);
    }

    // Lloyd iterations.
    let mut assignment = vec![0usize; points.len()];
    for _ in 0..32 {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..centroids.len())
                .min_by(|&a, &b| dist2(p, &centroids[a]).total_cmp(&dist2(p, &centroids[b])))
                .expect("at least one centroid");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Recompute centroids.
        let mut sums = vec![[0.0f64; 6]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, p) in points.iter().enumerate() {
            let a = assignment[i];
            counts[a] += 1;
            for d in 0..dim {
                sums[a][d] += p[d];
            }
        }
        for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *count > 0 {
                for d in 0..dim {
                    c[d] = sum[d] / *count as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Materialise non-empty clusters.
    let mut clusters: Vec<Cluster> = Vec::new();
    for c in 0..centroids.len() {
        let members: Vec<usize> = (0..items.len()).filter(|&i| assignment[i] == c).collect();
        if members.is_empty() {
            continue;
        }
        let representative = members
            .iter()
            .max_by(|&&a, &&b| {
                items[a]
                    .2
                    .total_cmp(&items[b].2)
                    .then(items[b].0.cmp(&items[a].0))
            })
            .map(|&i| items[i].0)
            .expect("non-empty members");
        clusters.push(Cluster {
            members: members.iter().map(|&i| items[i].0).collect(),
            representative,
            total_weight: members.iter().map(|&i| items[i].2).sum(),
        });
    }
    clusters.sort_by_key(|c| c.representative);
    clusters
}

fn dist2(a: &[f64; 6], b: &[f64; 6]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::{ColumnId, Cost, LogicalTime, TableId};
    use smdb_query::{PlanCache, Query};
    use smdb_storage::ScanPredicate;

    fn history_with_tables(tables: &[u32], queries_each: usize) -> WorkloadHistory {
        let mut cache = PlanCache::default();
        for &t in tables {
            for col in 0..queries_each {
                let q = Query::new(
                    TableId(t),
                    format!("t{t}"),
                    vec![ScanPredicate::eq(ColumnId(col as u16), 1i64)],
                    None,
                    format!("q{t}_{col}"),
                );
                for _ in 0..=(t as usize) {
                    cache.record(&q, Cost(1.0), LogicalTime(0));
                }
            }
        }
        let mut hist = WorkloadHistory::new();
        hist.observe(LogicalTime(0), &cache.snapshot());
        hist
    }

    #[test]
    fn clusters_partition_all_templates() {
        let hist = history_with_tables(&[0, 1, 2], 4);
        let clusters = cluster_templates(&hist, 3, 42);
        let total: usize = clusters.iter().map(|c| c.members.len()).sum();
        assert_eq!(total, 12);
        assert!(clusters.len() <= 3);
        for c in &clusters {
            assert!(c.members.contains(&c.representative));
            assert!(c.total_weight > 0.0);
        }
    }

    #[test]
    fn k_capped_by_item_count() {
        let hist = history_with_tables(&[0], 2);
        let clusters = cluster_templates(&hist, 10, 1);
        assert!(clusters.len() <= 2);
    }

    #[test]
    fn deterministic_under_seed() {
        let hist = history_with_tables(&[0, 1, 2, 3], 3);
        let a = cluster_templates(&hist, 4, 7);
        let b = cluster_templates(&hist, 4, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.members, y.members);
            assert_eq!(x.representative, y.representative);
        }
    }

    #[test]
    fn same_table_queries_tend_to_cluster() {
        // Two tables, well separated in feature space; k = 2 should
        // split by table.
        let hist = history_with_tables(&[0, 9], 3);
        let clusters = cluster_templates(&hist, 2, 3);
        assert_eq!(clusters.len(), 2);
        for c in &clusters {
            let tables: std::collections::HashSet<_> = c
                .members
                .iter()
                .map(|fp| hist.template(*fp).unwrap().example.table())
                .collect();
            assert_eq!(tables.len(), 1, "cluster mixes tables: {clusters:?}");
        }
    }

    #[test]
    fn empty_history_empty_clusters() {
        let hist = WorkloadHistory::new();
        assert!(cluster_templates(&hist, 3, 0).is_empty());
    }
}
