//! Forecast scenarios.
//!
//! The predictor outputs a *distribution* over future workloads —
//! expected case, worst case, and sampled scenarios with probabilities —
//! so that selectors can make robust, risk-aware choices (Sections II-C
//! and II-D(c)).

use smdb_query::Workload;

/// What kind of scenario this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// The expected-case forecast.
    Expected,
    /// A pessimistic inflation of the expected case by forecast
    /// uncertainty.
    WorstCase,
    /// One sample from the forecast distribution.
    Sampled,
}

/// One forecast scenario: a workload with an occurrence probability.
#[derive(Debug, Clone)]
pub struct WorkloadScenario {
    pub kind: ScenarioKind,
    pub name: String,
    /// Probability mass assigned to this scenario (scenario set sums to 1).
    pub probability: f64,
    pub workload: Workload,
}

/// The predictor's full output: a set of scenarios.
#[derive(Debug, Clone, Default)]
pub struct ForecastSet {
    pub scenarios: Vec<WorkloadScenario>,
}

impl ForecastSet {
    /// The expected-case scenario, if present.
    pub fn expected(&self) -> Option<&WorkloadScenario> {
        self.scenarios
            .iter()
            .find(|s| s.kind == ScenarioKind::Expected)
    }

    /// The worst-case scenario, if present.
    pub fn worst_case(&self) -> Option<&WorkloadScenario> {
        self.scenarios
            .iter()
            .find(|s| s.kind == ScenarioKind::WorstCase)
    }

    /// All scenarios.
    pub fn iter(&self) -> impl Iterator<Item = &WorkloadScenario> {
        self.scenarios.iter()
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Total probability mass (should be ≈ 1 for a well-formed set).
    pub fn total_probability(&self) -> f64 {
        self.scenarios.iter().map(|s| s.probability).sum()
    }

    /// Renormalises probabilities to sum to 1 (no-op on empty sets).
    pub fn normalize(&mut self) {
        let total = self.total_probability();
        if total > 0.0 {
            for s in &mut self.scenarios {
                s.probability /= total;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(kind: ScenarioKind, p: f64) -> WorkloadScenario {
        WorkloadScenario {
            kind,
            name: format!("{kind:?}"),
            probability: p,
            workload: Workload::default(),
        }
    }

    #[test]
    fn accessors_find_kinds() {
        let set = ForecastSet {
            scenarios: vec![
                scenario(ScenarioKind::Expected, 0.6),
                scenario(ScenarioKind::WorstCase, 0.1),
                scenario(ScenarioKind::Sampled, 0.3),
            ],
        };
        assert!(set.expected().is_some());
        assert!(set.worst_case().is_some());
        assert_eq!(set.len(), 3);
        assert!((set.total_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_rescales() {
        let mut set = ForecastSet {
            scenarios: vec![
                scenario(ScenarioKind::Expected, 2.0),
                scenario(ScenarioKind::Sampled, 2.0),
            ],
        };
        set.normalize();
        assert!((set.total_probability() - 1.0).abs() < 1e-12);
        assert!((set.scenarios[0].probability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_set_behaviour() {
        let mut set = ForecastSet::default();
        assert!(set.is_empty());
        assert!(set.expected().is_none());
        set.normalize(); // must not panic
    }
}
