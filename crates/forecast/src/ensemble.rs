//! Analyzer ensembles.
//!
//! "The system can consist of multiple workload analyzer instances that
//! each employ different methods to create forecasts" (Section II-C).
//! The ensemble holds several analyzers and, per series, uses the one
//! with the best one-step backtest error — so stable templates get the
//! cheap naive forecaster while periodic ones get the seasonal model,
//! automatically.

use crate::accuracy::backtest;
use crate::analyzer::WorkloadAnalyzer;
use crate::analyzers::{AutoRegressive, LastValue, LinearTrend, MovingAverage, Seasonal};

/// Per-series best-of-N analyzer selection via rolling backtests.
pub struct EnsembleAnalyzer {
    members: Vec<Box<dyn WorkloadAnalyzer>>,
    /// Warm-up points before backtesting starts.
    pub min_train: usize,
}

impl EnsembleAnalyzer {
    /// Creates an ensemble from member analyzers (at least one).
    pub fn new(members: Vec<Box<dyn WorkloadAnalyzer>>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        EnsembleAnalyzer {
            members,
            min_train: 4,
        }
    }

    /// The default ensemble covering the paper's analyzer families:
    /// naive, smoothing, trend, seasonal and autoregressive.
    pub fn standard(season_period: usize) -> Self {
        EnsembleAnalyzer::new(vec![
            Box::new(LastValue),
            Box::new(MovingAverage::new(4)),
            Box::new(LinearTrend),
            Box::new(Seasonal::new(season_period)),
            Box::new(AutoRegressive::new(2)),
        ])
    }

    /// Index of the member with the lowest backtest MAE on `series`
    /// (first member when the series is too short to score).
    pub fn best_member(&self, series: &[f64]) -> usize {
        if series.len() <= self.min_train + 1 {
            return 0;
        }
        let mut best = 0;
        let mut best_mae = f64::INFINITY;
        for (i, member) in self.members.iter().enumerate() {
            let (_, mae) = backtest(member.as_ref(), series, self.min_train);
            if mae < best_mae {
                best_mae = mae;
                best = i;
            }
        }
        best
    }

    /// The name of the member chosen for `series` (for reports).
    pub fn chosen_name(&self, series: &[f64]) -> &str {
        self.members[self.best_member(series)].name()
    }
}

impl WorkloadAnalyzer for EnsembleAnalyzer {
    fn name(&self) -> &str {
        "ensemble"
    }

    fn forecast(&self, series: &[f64], horizon: usize) -> Vec<f64> {
        self.members[self.best_member(series)].forecast(series, horizon)
    }
}

/// Holt's linear exponential smoothing: level + trend with smoothing
/// factors `alpha` / `beta`; an incremental alternative to the
/// batch-fitted linear trend.
#[derive(Debug, Clone)]
pub struct HoltSmoothing {
    pub alpha: f64,
    pub beta: f64,
}

impl HoltSmoothing {
    /// Creates a Holt smoother with factors clamped into `(0, 1]`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        HoltSmoothing {
            alpha: alpha.clamp(1e-6, 1.0),
            beta: beta.clamp(1e-6, 1.0),
        }
    }
}

impl Default for HoltSmoothing {
    fn default() -> Self {
        HoltSmoothing::new(0.5, 0.3)
    }
}

impl WorkloadAnalyzer for HoltSmoothing {
    fn name(&self) -> &str {
        "holt"
    }

    fn forecast(&self, series: &[f64], horizon: usize) -> Vec<f64> {
        if series.is_empty() {
            return vec![0.0; horizon];
        }
        if series.len() == 1 {
            return vec![series[0].max(0.0); horizon];
        }
        let mut level = series[0];
        let mut trend = series[1] - series[0];
        for &y in &series[1..] {
            let prev_level = level;
            level = self.alpha * y + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
        }
        (1..=horizon)
            .map(|h| (level + trend * h as f64).max(0.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensemble_picks_seasonal_for_periodic_series() {
        let e = EnsembleAnalyzer::standard(4);
        let series: Vec<f64> = [40.0, 4.0, 4.0, 4.0].repeat(8);
        assert_eq!(e.chosen_name(&series), "seasonal");
        let f = e.forecast(&series, 4);
        assert!((f[0] - 40.0).abs() < 1e-6, "{f:?}");
    }

    #[test]
    fn ensemble_picks_trend_for_linear_series() {
        let e = EnsembleAnalyzer::standard(4);
        let series: Vec<f64> = (0..24).map(|t| 2.0 * t as f64 + 3.0).collect();
        assert_eq!(e.chosen_name(&series), "linear_trend");
        let f = e.forecast(&series, 1);
        assert!((f[0] - 51.0).abs() < 1e-6, "{f:?}");
    }

    #[test]
    fn ensemble_short_series_falls_back_to_first_member() {
        let e = EnsembleAnalyzer::standard(4);
        assert_eq!(e.chosen_name(&[5.0, 5.0]), "last_value");
        assert_eq!(e.forecast(&[5.0, 5.0], 2), vec![5.0, 5.0]);
    }

    #[test]
    fn ensemble_beats_every_single_member_on_mixed_workload() {
        use crate::accuracy::backtest;
        // One trending, one seasonal series — no single member wins both,
        // the ensemble matches the best member on each.
        let trend: Vec<f64> = (0..24).map(|t| 3.0 * t as f64).collect();
        let seasonal: Vec<f64> = [30.0, 2.0, 2.0, 2.0].repeat(6);
        let ensemble = EnsembleAnalyzer::standard(4);
        for series in [&trend, &seasonal] {
            let (_, ens_mae) = backtest(&ensemble, series, 8);
            let members = EnsembleAnalyzer::standard(4);
            for m in &members.members {
                let (_, m_mae) = backtest(m.as_ref(), series, 8);
                assert!(
                    ens_mae <= m_mae + 1e-9,
                    "ensemble {ens_mae} worse than {} {m_mae}",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn holt_tracks_trend() {
        let h = HoltSmoothing::default();
        let series: Vec<f64> = (0..30).map(|t| 5.0 * t as f64 + 10.0).collect();
        let f = h.forecast(&series, 2);
        assert!((f[0] - 160.0).abs() < 2.0, "{f:?}");
        assert!((f[1] - 165.0).abs() < 3.0, "{f:?}");
    }

    #[test]
    fn holt_contracts() {
        let h = HoltSmoothing::default();
        assert_eq!(h.forecast(&[], 3), vec![0.0; 3]);
        assert_eq!(h.forecast(&[7.0], 2), vec![7.0, 7.0]);
        let f = h.forecast(&[10.0, 0.0, 10.0, 0.0], 4);
        assert_eq!(f.len(), 4);
        assert!(f.iter().all(|&v| v >= 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_rejected() {
        EnsembleAnalyzer::new(vec![]);
    }
}
