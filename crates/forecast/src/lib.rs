//! # smdb-forecast — the workload predictor
//!
//! Implements the paper's workload predictor (Section II-C) as a
//! multi-step pipeline:
//!
//! 1. **History building** ([`history`]): periodic plan-cache snapshots
//!    are diffed into per-template execution-count time series — no
//!    per-query hooks, so observation adds no query-path overhead.
//! 2. **Query clustering** ([`cluster`]): optional k-means over template
//!    feature vectors ("similar queries can be combined to reduce the
//!    number of queries that have to be processed"), the workload
//!    compression evaluated in experiment E8.
//! 3. **Workload analysis** ([`analyzer`], [`analyzers`]): exchangeable
//!    forecasting methods — last-value, moving average, linear-regression
//!    trend, seasonal decomposition, autoregressive AR(p) via
//!    Yule-Walker — matching the paper's list ("simple linear
//!    regressions, time series analysis (cf. ARIMA)").
//! 4. **Scenario generation** ([`scenario`], [`predictor`]): the
//!    predictor emits not just the expected workload but a distribution
//!    of scenarios (expected / worst-case / sampled) "to allow the
//!    computation of robust configurations".

pub mod accuracy;
pub mod analyzer;
pub mod analyzers;
pub mod cluster;
pub mod ensemble;
pub mod history;
pub mod predictor;
pub mod scenario;

pub use analyzer::WorkloadAnalyzer;
pub use ensemble::{EnsembleAnalyzer, HoltSmoothing};
pub use history::{TemplateHistory, WorkloadHistory, WorkloadHistoryState};
pub use predictor::{PredictorConfig, WorkloadPredictor};
pub use scenario::{ForecastSet, ScenarioKind, WorkloadScenario};
