#!/usr/bin/env bash
# CI gate: formatting, release build, full test suite, static analysis.
# Any failing step aborts with a non-zero exit code.
#
#   ./ci.sh          # full gate (includes the soak step)
#   ./ci.sh quick    # release build + tuning experiments -> BENCH_tuning.json
#                    # + serving soak -> BENCH_runtime.json
#   ./ci.sh soak     # online serving soak only -> BENCH_runtime.json
set -euo pipefail
cd "$(dirname "$0")"

run_soak() {
    echo "==> online serving soak (seeded, deterministic) -> BENCH_runtime.json + TRAIL_soak.json"
    cargo run --release -q -p smdb-bench --bin soak -- \
        --json BENCH_runtime.json --trail TRAIL_soak.json
}

check_trail() {
    echo "==> smdb-lint --check-trail TRAIL_soak.json"
    cargo run -q -p smdb-lint -- --check-trail TRAIL_soak.json
}

if [[ "${1:-}" == "quick" ]]; then
    echo "==> cargo build --release (quick mode)"
    cargo build --release -p smdb-bench
    echo "==> tuning experiments (e3 e4 e5) -> BENCH_tuning.json"
    cargo run --release -q -p smdb-bench --bin experiments -- e3 e4 e5 --json BENCH_tuning.json
    run_soak
    check_trail
    echo "Quick CI green."
    exit 0
fi

if [[ "${1:-}" == "soak" ]]; then
    echo "==> cargo build --release (soak mode)"
    cargo build --release -p smdb-bench --bin soak
    run_soak
    echo "Soak CI green."
    exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test -q --workspace

run_soak
check_trail

echo "==> smdb-lint"
cargo run -q -p smdb-lint

echo "==> smdb-lint --audit-lp"
cargo run -q -p smdb-lint -- --audit-lp

echo "CI green."
