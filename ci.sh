#!/usr/bin/env bash
# CI gate: formatting, release build, full test suite, static analysis.
# Any failing step aborts with a non-zero exit code.
#
#   ./ci.sh          # full gate
#   ./ci.sh quick    # release build + tuning experiments -> BENCH_tuning.json
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" == "quick" ]]; then
    echo "==> cargo build --release (quick mode)"
    cargo build --release -p smdb-bench
    echo "==> tuning experiments (e3 e4 e5) -> BENCH_tuning.json"
    cargo run --release -q -p smdb-bench --bin experiments -- e3 e4 e5 --json BENCH_tuning.json
    echo "Quick CI green."
    exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test -q --workspace

echo "==> smdb-lint"
cargo run -q -p smdb-lint

echo "==> smdb-lint --audit-lp"
cargo run -q -p smdb-lint -- --audit-lp

echo "CI green."
