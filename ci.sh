#!/usr/bin/env bash
# CI gate: formatting, release build, full test suite, static analysis.
# Any failing step aborts with a non-zero exit code.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test -q --workspace

echo "==> smdb-lint"
cargo run -q -p smdb-lint

echo "==> smdb-lint --audit-lp"
cargo run -q -p smdb-lint -- --audit-lp

echo "CI green."
