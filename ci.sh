#!/usr/bin/env bash
# CI gate: formatting, release build, full test suite, static analysis,
# benchmarks and the bench-regression gate. Any failing step aborts with
# a non-zero exit code. Every run writes CI_SUMMARY.json with per-step
# timings and pass/fail, even when a step fails.
#
#   ./ci.sh               # full gate (build, tests, lint, bench + gate)
#   ./ci.sh quick         # release build + tuning experiments + soak
#                         # + concurrency audit -> target/ci/BENCH_*.json
#                         # and AUDIT_concurrency.json, gated vs committed
#   ./ci.sh soak          # online serving soak only -> BENCH_runtime.json
#   ./ci.sh soak-mt       # sharded multi-tenant soak only
#                         # -> BENCH_multitenant.json + TRAIL_mt.json
#   ./ci.sh recover       # kill-and-recover soak against a hermetic
#                         # target/ci store -> BENCH_recovery.json,
#                         # gated vs the committed baseline
#   ./ci.sh bench-gate    # regenerate benches into target/ci and compare
#                         # against the committed BENCH_*.json baselines
#   ./ci.sh bench-gate --update-baselines
#                         # regenerate and bless the committed baselines
#   ./ci.sh calibrate     # measured kernel timings + cost-model
#                         # calibration -> target/ci/BENCH_kernels.json
set -euo pipefail
cd "$(dirname "$0")"

MODE="${1:-full}"
CI_DIR="target/ci"
SUMMARY="CI_SUMMARY.json"

# --- per-step timing + machine-readable summary -----------------------------
STEP_NAMES=()
STEP_SECS=()
STEP_STATUS=()

write_summary() {
    local overall="pass"
    {
        echo '{'
        echo "  \"mode\": \"${MODE}\","
        echo '  "steps": ['
        local i last=$((${#STEP_NAMES[@]} - 1))
        for i in "${!STEP_NAMES[@]}"; do
            local comma=','
            [[ "$i" == "$last" ]] && comma=''
            [[ "${STEP_STATUS[$i]}" == "fail" ]] && overall="fail"
            printf '    {"step": "%s", "seconds": %s, "status": "%s"}%s\n' \
                "${STEP_NAMES[$i]}" "${STEP_SECS[$i]}" "${STEP_STATUS[$i]}" "$comma"
        done
        echo '  ],'
        echo "  \"status\": \"${overall}\""
        echo '}'
    } > "$SUMMARY"
    echo "--- step summary ($SUMMARY) ---"
    local i
    for i in "${!STEP_NAMES[@]}"; do
        printf '  %-28s %8ss  %s\n' "${STEP_NAMES[$i]}" "${STEP_SECS[$i]}" "${STEP_STATUS[$i]}"
    done
}
trap write_summary EXIT

step() {
    local name="$1"
    shift
    echo "==> ${name}"
    local t0 t1 rc=0
    t0=$SECONDS
    "$@" || rc=$?
    t1=$SECONDS
    STEP_NAMES+=("$name")
    STEP_SECS+=("$((t1 - t0))")
    if [[ $rc -ne 0 ]]; then
        STEP_STATUS+=("fail")
        echo "step '${name}' FAILED (exit $rc)" >&2
        exit "$rc"
    fi
    STEP_STATUS+=("pass")
}

# --- benchmark helpers -------------------------------------------------------
run_experiments() { # outdir
    cargo run --release -q -p smdb-bench --bin experiments -- \
        e3 e4 e5 calibration --json "$1/BENCH_tuning.json"
}

run_calibrate() { # outdir -> BENCH_kernels.json
    cargo run --release -q -p smdb-bench --bin calibrate -- \
        --json "$1/BENCH_kernels.json"
}

run_soak() { # outdir
    cargo run --release -q -p smdb-bench --bin soak -- \
        --scan-threads 4 \
        --json "$1/BENCH_runtime.json" --trail "$1/TRAIL_soak.json"
}

run_soak_mt() { # outdir
    cargo run --release -q -p smdb-bench --bin soak_mt -- \
        --shards 4 --tenants 1200 --zipf 1.1 \
        --json "$1/BENCH_multitenant.json" --trail "$1/TRAIL_mt.json"
}

run_recover() { # outdir -> BENCH_recovery.json (hermetic store in outdir)
    cargo run --release -q -p smdb-bench --bin recover -- \
        --dir "$1/recover_store" --json "$1/BENCH_recovery.json"
}

check_trail() { # trail path
    cargo run -q -p smdb-lint -- --check-trail "$1"
}

run_concurrency_audit() { # outdir -> AUDIT_concurrency.json
    cargo run -q -p smdb-lint -- --audit-concurrency --json \
        > "$1/AUDIT_concurrency.json"
}

check_audit() { # audit path
    cargo run -q -p smdb-lint -- --check-audit "$1"
}

run_gate() { # candidate dir
    cargo run --release -q -p smdb-bench --bin bench_gate -- \
        --runtime BENCH_runtime.json "$1/BENCH_runtime.json" \
        --tuning BENCH_tuning.json "$1/BENCH_tuning.json" \
        --multitenant BENCH_multitenant.json "$1/BENCH_multitenant.json" \
        --recovery BENCH_recovery.json "$1/BENCH_recovery.json"
}

fresh_bench_and_gate() { # build fresh candidates into target/ci, gate them
    mkdir -p "$CI_DIR"
    step "experiments (e3-e5, calibration)" run_experiments "$CI_DIR"
    step "soak" run_soak "$CI_DIR"
    step "check-trail" check_trail "$CI_DIR/TRAIL_soak.json"
    step "soak-mt" run_soak_mt "$CI_DIR"
    step "check-trail-mt" check_trail "$CI_DIR/TRAIL_mt.json"
    step "recover" run_recover "$CI_DIR"
    step "bench-gate" run_gate "$CI_DIR"
}

concurrency_audit_and_check() { # emit + schema-validate the audit artifact
    mkdir -p "$CI_DIR"
    step "audit-concurrency" run_concurrency_audit "$CI_DIR"
    step "check-audit" check_audit "$CI_DIR/AUDIT_concurrency.json"
}

case "$MODE" in
quick)
    step "build (release, bench)" cargo build --release -p smdb-bench
    fresh_bench_and_gate
    concurrency_audit_and_check
    echo "Quick CI green."
    ;;
soak)
    step "build (release, soak)" cargo build --release -p smdb-bench --bin soak
    step "soak" run_soak .
    echo "Soak CI green."
    ;;
soak-mt)
    step "build (release, soak_mt)" cargo build --release -p smdb-bench --bin soak_mt
    step "soak-mt" run_soak_mt .
    echo "Multi-tenant soak CI green."
    ;;
recover)
    step "build (release, recover)" cargo build --release -p smdb-bench --bin recover --bin bench_gate
    mkdir -p "$CI_DIR"
    step "recover" run_recover "$CI_DIR"
    step "recover-gate" cargo run --release -q -p smdb-bench --bin bench_gate -- \
        --recovery BENCH_recovery.json "$CI_DIR/BENCH_recovery.json"
    echo "Recovery CI green."
    ;;
calibrate)
    step "build (release, calibrate)" cargo build --release -p smdb-bench --bin calibrate
    mkdir -p "$CI_DIR"
    step "calibrate" run_calibrate "$CI_DIR"
    echo "Calibration artifacts in $CI_DIR/BENCH_kernels.json."
    ;;
bench-gate)
    step "build (release, bench)" cargo build --release -p smdb-bench
    mkdir -p "$CI_DIR"
    step "experiments (e3-e5, calibration)" run_experiments "$CI_DIR"
    step "soak" run_soak "$CI_DIR"
    step "soak-mt" run_soak_mt "$CI_DIR"
    step "recover" run_recover "$CI_DIR"
    if [[ "${2:-}" == "--update-baselines" ]]; then
        step "update-baselines" cp "$CI_DIR/BENCH_runtime.json" \
            "$CI_DIR/BENCH_tuning.json" "$CI_DIR/BENCH_multitenant.json" \
            "$CI_DIR/BENCH_recovery.json" \
            "$CI_DIR/TRAIL_soak.json" "$CI_DIR/TRAIL_mt.json" .
        echo "Baselines updated from $CI_DIR — commit BENCH_*.json + TRAIL_*.json."
    else
        step "bench-gate" run_gate "$CI_DIR"
        echo "Bench gate green."
    fi
    ;;
full)
    step "cargo fmt --check" cargo fmt --all --check
    step "cargo build --release" cargo build --workspace --release
    step "cargo test" cargo test -q --workspace
    fresh_bench_and_gate
    step "smdb-lint" cargo run -q -p smdb-lint
    step "smdb-lint --audit-lp" cargo run -q -p smdb-lint -- --audit-lp
    concurrency_audit_and_check
    echo "CI green."
    ;;
*)
    echo "unknown mode '${MODE}' (valid: full quick soak soak-mt recover bench-gate calibrate)" >&2
    exit 2
    ;;
esac
